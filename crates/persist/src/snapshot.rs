//! Full-store snapshots (the paper's "periodic data flushing").
//!
//! Layout: `MAGIC "SEDNASNP" | row_count: u64 | rows… | crc32(all rows)`.
//! Each row: `key | row_clock | version_count | (ts, value)…` via the
//! shared codec — the row clock carries the dots the row has witnessed
//! *and pruned*, so a recovered replica cannot resurrect dead siblings.
//! Written to a temp file and atomically renamed, so a crash mid-flush
//! leaves the previous snapshot intact.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use sedna_common::{Key, SednaError, SednaResult, Value};
use sedna_memstore::{MemStore, VersionedValue};

use crate::codec::{crc32, Decoder, Encoder};

const MAGIC: &[u8; 8] = b"SEDNASNP";

/// Writes a snapshot of `store` to `path` (atomic replace).
///
/// Returns the number of rows written.
pub fn write_snapshot(path: impl AsRef<Path>, store: &MemStore) -> SednaResult<u64> {
    let path = path.as_ref();
    let mut body = Encoder::new();
    let mut rows = 0u64;
    store.for_each_row(|key, snap| {
        body.bytes(key.as_bytes());
        body.context(&snap.clock());
        let versions = snap.as_slice();
        body.u32(versions.len() as u32);
        for v in versions {
            body.timestamp(v.ts);
            body.bytes(v.value.as_bytes());
        }
        rows += 1;
    });
    let body = body.finish();

    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(MAGIC)?;
        f.write_all(&rows.to_le_bytes())?;
        f.write_all(&body)?;
        f.write_all(&crc32(&body).to_le_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(rows)
}

/// Loads a snapshot into `store` by merging (so it composes with WAL replay
/// and with data already present). Returns rows loaded; a missing file
/// loads zero rows.
pub fn load_snapshot(path: impl AsRef<Path>, store: &MemStore) -> SednaResult<u64> {
    let mut bytes = Vec::new();
    match File::open(path.as_ref()) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(SednaError::Io(e)),
    }
    if bytes.len() < MAGIC.len() + 8 + 4 || &bytes[..8] != MAGIC {
        return Err(SednaError::Persistence("bad snapshot header".into()));
    }
    let rows = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let body = &bytes[16..bytes.len() - 4];
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != stored_crc {
        return Err(SednaError::Persistence("snapshot checksum mismatch".into()));
    }
    let mut d = Decoder::new(body);
    for _ in 0..rows {
        let key = Key::from_bytes(
            d.bytes()
                .map_err(|_| SednaError::Persistence("truncated snapshot row".into()))?
                .to_vec(),
        );
        let clock = d
            .context()
            .map_err(|_| SednaError::Persistence("truncated snapshot row".into()))?;
        let count = d
            .u32()
            .map_err(|_| SednaError::Persistence("truncated snapshot row".into()))?;
        let mut versions = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let ts = d
                .timestamp()
                .map_err(|_| SednaError::Persistence("truncated snapshot row".into()))?;
            let value = Value::from_bytes(
                d.bytes()
                    .map_err(|_| SednaError::Persistence("truncated snapshot row".into()))?
                    .to_vec(),
            );
            versions.push(VersionedValue { ts, value });
        }
        store.merge_row(&key, &versions, &clock);
    }
    if !d.is_done() {
        return Err(SednaError::Persistence("snapshot trailing garbage".into()));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_common::{NodeId, Timestamp};
    use sedna_memstore::StoreConfig;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sedna-snap-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn ts(micros: u64, origin: u32) -> Timestamp {
        Timestamp::new(micros, 0, NodeId(origin))
    }

    fn populated_store() -> MemStore {
        let s = MemStore::new(StoreConfig::default());
        for i in 0..50 {
            s.write_latest(
                &Key::from(format!("k{i}")),
                ts(i + 1, 0),
                Value::from(format!("v{i}")),
            );
        }
        s.write_all(&Key::from("multi"), ts(100, 1), Value::from("a"));
        s.write_all(&Key::from("multi"), ts(101, 2), Value::from("b"));
        s
    }

    #[test]
    fn snapshot_roundtrip_restores_everything() {
        let path = tmp("roundtrip");
        let s = populated_store();
        let written = write_snapshot(&path, &s).unwrap();
        assert_eq!(written, 51);
        let restored = MemStore::new(StoreConfig::default());
        let loaded = load_snapshot(&path, &restored).unwrap();
        assert_eq!(loaded, 51);
        assert_eq!(restored.len(), 51);
        assert_eq!(
            restored.read_latest(&Key::from("k7")).unwrap().value,
            Value::from("v7")
        );
        assert_eq!(restored.read_all(&Key::from("multi")).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_merges_with_existing_newer_data() {
        let path = tmp("merge");
        let s = populated_store();
        write_snapshot(&path, &s).unwrap();
        let target = MemStore::new(StoreConfig::default());
        // Newer local value must survive the snapshot load.
        target.write_latest(&Key::from("k0"), ts(1_000, 0), Value::from("newer"));
        load_snapshot(&path, &target).unwrap();
        assert_eq!(
            target.read_latest(&Key::from("k0")).unwrap().value,
            Value::from("newer")
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_snapshot_is_zero_rows() {
        let s = MemStore::new(StoreConfig::default());
        assert_eq!(load_snapshot("/nonexistent/snap", &s).unwrap(), 0);
    }

    #[test]
    fn corrupted_snapshot_is_rejected() {
        let path = tmp("corrupt");
        let s = populated_store();
        write_snapshot(&path, &s).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let target = MemStore::new(StoreConfig::default());
        assert!(matches!(
            load_snapshot(&path, &target),
            Err(SednaError::Persistence(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_header_is_rejected() {
        let path = tmp("header");
        std::fs::write(&path, b"NOTASNAP").unwrap();
        let target = MemStore::new(StoreConfig::default());
        assert!(load_snapshot(&path, &target).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn overwrite_is_atomic_previous_snapshot_survives_failed_store() {
        let path = tmp("atomic");
        let s = populated_store();
        write_snapshot(&path, &s).unwrap();
        // Second snapshot with more data overwrites in place.
        s.write_latest(&Key::from("extra"), ts(999, 0), Value::from("x"));
        let rows = write_snapshot(&path, &s).unwrap();
        assert_eq!(rows, 52);
        let restored = MemStore::new(StoreConfig::default());
        assert_eq!(load_snapshot(&path, &restored).unwrap(), 52);
        std::fs::remove_file(&path).unwrap();
    }
}
