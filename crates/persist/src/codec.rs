//! Length-prefixed binary encoding with CRC-32 framing.
//!
//! Deliberately hand-rolled (no serde): the WAL and snapshot formats are
//! part of the system's crash-safety story, so every byte is explicit and
//! pinned by tests.

use sedna_common::{CausalContext, NodeId, Timestamp};

/// CRC-32 (IEEE 802.3, reflected), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Incremental encoder over a byte buffer.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Finishes and returns the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a timestamp (16 bytes).
    pub fn timestamp(&mut self, ts: Timestamp) {
        self.u64(ts.micros);
        self.u32(ts.counter);
        self.u32(ts.origin.0);
    }

    /// Appends a causal context: entry count then `(origin, micros,
    /// counter)` per entry (4 + 16n bytes). An empty context is just the
    /// zero count.
    pub fn context(&mut self, ctx: &CausalContext) {
        self.u32(ctx.len() as u32);
        for (actor, (micros, counter)) in ctx.entries() {
            self.u32(actor.0);
            self.u64(micros);
            self.u32(counter);
        }
    }
}

/// Decoding failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError;

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed record")
    }
}

impl std::error::Error for DecodeError {}

/// Incremental decoder over a byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// True when fully consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a timestamp.
    pub fn timestamp(&mut self) -> Result<Timestamp, DecodeError> {
        let micros = self.u64()?;
        let counter = self.u32()?;
        let origin = NodeId(self.u32()?);
        Ok(Timestamp {
            micros,
            counter,
            origin,
        })
    }

    /// Reads a causal context written by [`Encoder::context`].
    pub fn context(&mut self) -> Result<CausalContext, DecodeError> {
        let count = self.u32()?;
        let mut ctx = CausalContext::new();
        for _ in 0..count {
            let actor = NodeId(self.u32()?);
            let micros = self.u64()?;
            let counter = self.u32()?;
            ctx.observe_seq(actor, (micros, counter));
        }
        Ok(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_all_primitives() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.bytes(b"payload");
        e.timestamp(Timestamp::new(123, 45, NodeId(6)));
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.bytes().unwrap(), b"payload");
        assert_eq!(d.timestamp().unwrap(), Timestamp::new(123, 45, NodeId(6)));
        assert!(d.is_done());
    }

    #[test]
    fn context_roundtrip_including_empty() {
        let mut ctx = CausalContext::new();
        ctx.observe(&Timestamp::new(10, 2, NodeId(1)));
        ctx.observe(&Timestamp::new(7, 0, NodeId(1_001)));
        let mut e = Encoder::new();
        e.context(&CausalContext::EMPTY);
        e.context(&ctx);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.context().unwrap(), CausalContext::EMPTY);
        assert_eq!(d.context().unwrap(), ctx);
        assert!(d.is_done());
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut e = Encoder::new();
        e.bytes(b"0123456789");
        let buf = e.finish();
        let mut d = Decoder::new(&buf[..buf.len() - 1]);
        assert_eq!(d.bytes(), Err(DecodeError));
        let mut d2 = Decoder::new(&buf[..2]);
        assert_eq!(d2.u32(), Err(DecodeError));
    }

    #[test]
    fn length_lies_are_caught() {
        let mut e = Encoder::new();
        e.u32(1_000_000); // claims a megabyte follows
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.bytes(), Err(DecodeError));
    }
}
