//! Persistency strategies (Table I: "Periodically flush or write-ahead
//! logs according users' needs").
//!
//! Sedna is a memory store; durability is a configurable trade-off:
//!
//! * [`PersistMode::None`] — pure cache semantics (replication alone
//!   protects data, as Sec. III-C argues is usually enough);
//! * [`PersistMode::Periodic`] — flush a full snapshot of the local store
//!   every interval ("we can still recover the data from lost by the
//!   periodic data flushing");
//! * [`PersistMode::WriteAhead`] — log every accepted write before
//!   acknowledging, plus periodic snapshots to bound replay.
//!
//! The on-disk formats are hand-rolled and CRC-framed ([`codec`]): a
//! corrupted or torn tail is detected and cleanly ignored on replay, which
//! the tests exercise by truncating and flipping bytes.

pub mod codec;
pub mod engine;
pub mod snapshot;
pub mod wal;

pub use codec::crc32;
pub use engine::{PersistEngine, PersistMode};
pub use snapshot::{load_snapshot, write_snapshot};
pub use wal::{Wal, WalRecord};
