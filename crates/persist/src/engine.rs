//! The per-node persistence engine: policy + WAL + snapshot + recovery.
//!
//! Table I row "Persistency Strategy: periodically flush or write-ahead
//! logs according users' needs — different speed and availability". The
//! engine is driven by the owning node: `note_write` on every accepted
//! write, `tick` from a periodic timer, `recover` at boot.

use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use sedna_common::time::Micros;
use sedna_common::{CausalContext, Key, SednaResult, Timestamp, Value};
use sedna_memstore::MemStore;

use crate::snapshot::{load_snapshot, write_snapshot};
use crate::wal::{Wal, WalRecord};

/// Durability policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersistMode {
    /// No durability; replication is the only protection.
    None,
    /// Snapshot the whole store every `interval_micros`.
    Periodic {
        /// Flush interval (µs).
        interval_micros: Micros,
    },
    /// Log each write before acknowledging; snapshot every
    /// `snapshot_interval_micros` to bound replay, truncating the log.
    WriteAhead {
        /// Snapshot interval (µs).
        snapshot_interval_micros: Micros,
    },
}

/// Engine state.
pub struct PersistEngine {
    mode: PersistMode,
    snapshot_path: PathBuf,
    wal: Option<Mutex<Wal>>,
    last_flush: Mutex<Micros>,
    /// Flush/snapshot count (metrics/tests).
    flushes: Mutex<u64>,
    /// Crash-point injection: `Some(n)` tears the WAL frame on the append
    /// after `n` more successful ones (see [`PersistEngine::arm_crash_after`]).
    crash_after: Mutex<Option<u64>>,
    /// Once a crash point fired (or [`PersistEngine::inject_torn_append`]
    /// ran), every further append fails — the simulated process is dead.
    crashed: Mutex<bool>,
}

impl PersistEngine {
    /// Creates the engine rooted at `dir` (created if absent) with the
    /// given policy.
    pub fn new(dir: impl AsRef<Path>, mode: PersistMode) -> SednaResult<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join("store.snapshot");
        let wal = match mode {
            PersistMode::WriteAhead { .. } => Some(Mutex::new(Wal::open(dir.join("store.wal"))?)),
            _ => None,
        };
        Ok(PersistEngine {
            mode,
            snapshot_path,
            wal,
            last_flush: Mutex::new(0),
            flushes: Mutex::new(0),
            crash_after: Mutex::new(None),
            crashed: Mutex::new(false),
        })
    }

    /// The configured policy.
    pub fn mode(&self) -> PersistMode {
        self.mode
    }

    /// Snapshots taken so far.
    pub fn flush_count(&self) -> u64 {
        *self.flushes.lock()
    }

    /// Called on every accepted local write. Under `WriteAhead` this logs
    /// and flushes before returning — the write is durable once this
    /// returns — otherwise it is a no-op.
    pub fn note_write(
        &self,
        key: &Key,
        ts: Timestamp,
        value: &Value,
        ctx: &CausalContext,
        latest: bool,
    ) -> SednaResult<()> {
        let record = if latest {
            WalRecord::WriteLatest {
                key: key.clone(),
                ts,
                value: value.clone(),
                ctx: ctx.clone(),
            }
        } else {
            WalRecord::WriteAll {
                key: key.clone(),
                ts,
                value: value.clone(),
                ctx: ctx.clone(),
            }
        };
        self.append_record(&record)
    }

    /// Called on key removal.
    pub fn note_remove(&self, key: &Key) -> SednaResult<()> {
        self.append_record(&WalRecord::Remove { key: key.clone() })
    }

    fn append_record(&self, record: &WalRecord) -> SednaResult<()> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        if *self.crashed.lock() {
            return Err(crash_error());
        }
        if let Some(n) = self.crash_after.lock().as_mut() {
            if *n == 0 {
                wal.lock().append_torn(record)?;
                *self.crashed.lock() = true;
                return Err(crash_error());
            }
            *n -= 1;
        }
        let mut wal = wal.lock();
        wal.append(record)?;
        wal.sync()?;
        Ok(())
    }

    /// Crash-point injection: writes a torn frame at the current log tail
    /// and marks the engine dead (every later append fails). A nemesis
    /// applies this in the same instant it crashes the owning node, so
    /// recovery replays a mid-append power cut. No-op outside `WriteAhead`.
    pub fn inject_torn_append(&self) -> SednaResult<()> {
        if let Some(wal) = &self.wal {
            wal.lock().append_torn(&WalRecord::Remove {
                key: Key::from("__torn__"),
            })?;
            *self.crashed.lock() = true;
        }
        Ok(())
    }

    /// Arms a deterministic crash point: after `appends` more successful
    /// appends, the next one writes a torn frame, fails, and kills the
    /// engine. Unit-test companion to [`PersistEngine::inject_torn_append`].
    pub fn arm_crash_after(&self, appends: u64) {
        *self.crash_after.lock() = Some(appends);
    }

    /// True once a crash point fired.
    pub fn crashed(&self) -> bool {
        *self.crashed.lock()
    }

    /// Periodic driver: takes a snapshot when the policy's interval has
    /// elapsed. Returns true when a snapshot was written.
    pub fn tick(&self, now: Micros, store: &MemStore) -> SednaResult<bool> {
        let interval = match self.mode {
            PersistMode::None => return Ok(false),
            PersistMode::Periodic { interval_micros } => interval_micros,
            PersistMode::WriteAhead {
                snapshot_interval_micros,
            } => snapshot_interval_micros,
        };
        let mut last = self.last_flush.lock();
        if now.saturating_sub(*last) < interval {
            return Ok(false);
        }
        *last = now;
        drop(last);
        self.flush(store)?;
        Ok(true)
    }

    /// Forces a snapshot now (and truncates the WAL, which the snapshot
    /// subsumes).
    pub fn flush(&self, store: &MemStore) -> SednaResult<()> {
        write_snapshot(&self.snapshot_path, store)?;
        if let Some(wal) = &self.wal {
            wal.lock().truncate()?;
        }
        *self.flushes.lock() += 1;
        Ok(())
    }

    /// Boot-time recovery: loads the snapshot, then replays the WAL on top.
    /// A torn tail (crash mid-append) is truncated away so the log is
    /// clean for post-recovery appends. Returns `(snapshot_rows,
    /// wal_records)`.
    pub fn recover(&self, store: &MemStore) -> SednaResult<(u64, u64)> {
        let rows = load_snapshot(&self.snapshot_path, store)?;
        let mut replayed = 0u64;
        if self.wal.is_some() {
            let wal_path = self.snapshot_path.with_file_name("store.wal");
            let records = Wal::replay(&wal_path)?;
            Wal::repair(&wal_path)?;
            replayed = records.len() as u64;
            for r in records {
                match r {
                    WalRecord::WriteLatest {
                        key,
                        ts,
                        value,
                        ctx,
                    } => {
                        store.write_latest_ctx(&key, ts, value, &ctx);
                    }
                    WalRecord::WriteAll {
                        key,
                        ts,
                        value,
                        ctx,
                    } => {
                        store.write_all_ctx(&key, ts, value, &ctx);
                    }
                    WalRecord::Remove { key } => {
                        store.remove(&key);
                    }
                }
            }
        }
        Ok((rows, replayed))
    }
}

/// The error a dead engine returns for every append: the process hosting
/// it has "crashed", so nothing more reaches the disk.
fn crash_error() -> sedna_common::SednaError {
    sedna_common::SednaError::Io(std::io::Error::other("injected WAL crash point"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_common::NodeId;
    use sedna_memstore::StoreConfig;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sedna-engine-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn ts(micros: u64) -> Timestamp {
        Timestamp::new(micros, 0, NodeId(0))
    }

    #[test]
    fn none_mode_never_flushes() {
        let dir = tmp_dir("none");
        let e = PersistEngine::new(&dir, PersistMode::None).unwrap();
        let s = MemStore::new(StoreConfig::default());
        s.write_latest(&Key::from("k"), ts(1), Value::from("v"));
        assert!(!e.tick(10_000_000, &s).unwrap());
        assert_eq!(e.flush_count(), 0);
        let fresh = MemStore::new(StoreConfig::default());
        assert_eq!(e.recover(&fresh).unwrap(), (0, 0));
        assert!(fresh.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn periodic_mode_flushes_on_interval_and_recovers() {
        let dir = tmp_dir("periodic");
        let e = PersistEngine::new(
            &dir,
            PersistMode::Periodic {
                interval_micros: 1_000,
            },
        )
        .unwrap();
        let s = MemStore::new(StoreConfig::default());
        s.write_latest(&Key::from("k"), ts(1), Value::from("v"));
        assert!(!e.tick(500, &s).unwrap(), "interval not elapsed");
        assert!(e.tick(1_500, &s).unwrap());
        assert!(!e.tick(1_600, &s).unwrap(), "just flushed");
        assert!(e.tick(3_000, &s).unwrap());
        assert_eq!(e.flush_count(), 2);
        let fresh = MemStore::new(StoreConfig::default());
        let (rows, wal) = e.recover(&fresh).unwrap();
        assert_eq!((rows, wal), (1, 0));
        assert_eq!(
            fresh.read_latest(&Key::from("k")).unwrap().value,
            Value::from("v")
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_ahead_recovers_unflushed_writes() {
        let dir = tmp_dir("wal");
        let mode = PersistMode::WriteAhead {
            snapshot_interval_micros: 1_000_000,
        };
        {
            let e = PersistEngine::new(&dir, mode).unwrap();
            let s = MemStore::new(StoreConfig::default());
            for i in 0..10u64 {
                let k = Key::from(format!("k{i}"));
                let v = Value::from(format!("v{i}"));
                s.write_latest(&k, ts(i + 1), v.clone());
                e.note_write(&k, ts(i + 1), &v, &CausalContext::EMPTY, true)
                    .unwrap();
            }
            e.note_remove(&Key::from("k3")).unwrap();
            // No snapshot taken — simulate a crash by dropping everything.
        }
        let e = PersistEngine::new(&dir, mode).unwrap();
        let fresh = MemStore::new(StoreConfig::default());
        let (rows, replayed) = e.recover(&fresh).unwrap();
        assert_eq!(rows, 0, "no snapshot existed");
        assert_eq!(replayed, 11);
        assert_eq!(fresh.len(), 9);
        assert!(!fresh.contains(&Key::from("k3")));
        assert_eq!(
            fresh.read_latest(&Key::from("k9")).unwrap().value,
            Value::from("v9")
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncates_wal_and_recovery_composes_both() {
        let dir = tmp_dir("compose");
        let mode = PersistMode::WriteAhead {
            snapshot_interval_micros: 1_000,
        };
        let e = PersistEngine::new(&dir, mode).unwrap();
        let s = MemStore::new(StoreConfig::default());
        // Phase 1: logged writes, then a snapshot (truncates the log).
        s.write_latest(&Key::from("a"), ts(1), Value::from("1"));
        e.note_write(
            &Key::from("a"),
            ts(1),
            &Value::from("1"),
            &CausalContext::EMPTY,
            true,
        )
        .unwrap();
        assert!(e.tick(2_000, &s).unwrap(), "snapshot taken");
        // Phase 2: more writes after the snapshot, only in the WAL.
        s.write_latest(&Key::from("b"), ts(2), Value::from("2"));
        e.note_write(
            &Key::from("b"),
            ts(2),
            &Value::from("2"),
            &CausalContext::EMPTY,
            true,
        )
        .unwrap();
        // Recover into a fresh store: snapshot row 'a' + wal record 'b'.
        let fresh = MemStore::new(StoreConfig::default());
        let (rows, replayed) = e.recover(&fresh).unwrap();
        assert_eq!((rows, replayed), (1, 1));
        assert!(fresh.contains(&Key::from("a")));
        assert!(fresh.contains(&Key::from("b")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn armed_crash_point_tears_wal_and_recovery_repairs_it() {
        let dir = tmp_dir("crashpoint");
        let mode = PersistMode::WriteAhead {
            snapshot_interval_micros: 1_000_000,
        };
        {
            let e = PersistEngine::new(&dir, mode).unwrap();
            e.arm_crash_after(2);
            for i in 0..2u64 {
                let k = Key::from(format!("k{i}"));
                e.note_write(
                    &k,
                    ts(i + 1),
                    &Value::from("v"),
                    &CausalContext::EMPTY,
                    true,
                )
                .unwrap();
            }
            // Third append hits the crash point: torn frame, engine dead.
            let torn = e.note_write(
                &Key::from("k2"),
                ts(3),
                &Value::from("v"),
                &CausalContext::EMPTY,
                true,
            );
            assert!(torn.is_err());
            assert!(e.crashed());
            assert!(
                e.note_write(
                    &Key::from("k3"),
                    ts(4),
                    &Value::from("v"),
                    &CausalContext::EMPTY,
                    true
                )
                .is_err(),
                "a crashed engine stays dead"
            );
        }
        // Recovery sees only the two intact records and repairs the tail.
        let e = PersistEngine::new(&dir, mode).unwrap();
        let fresh = MemStore::new(StoreConfig::default());
        let (rows, replayed) = e.recover(&fresh).unwrap();
        assert_eq!((rows, replayed), (0, 2));
        assert!(!fresh.contains(&Key::from("k2")), "torn write never lands");
        // Post-recovery appends must survive a *second* recovery — this is
        // what the tail repair buys.
        e.note_write(
            &Key::from("after"),
            ts(9),
            &Value::from("v"),
            &CausalContext::EMPTY,
            true,
        )
        .unwrap();
        let again = MemStore::new(StoreConfig::default());
        let (_, replayed2) = PersistEngine::new(&dir, mode)
            .unwrap()
            .recover(&again)
            .unwrap();
        assert_eq!(replayed2, 3);
        assert!(again.contains(&Key::from("after")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inject_torn_append_kills_engine_without_losing_prefix() {
        let dir = tmp_dir("inject");
        let mode = PersistMode::WriteAhead {
            snapshot_interval_micros: 1_000_000,
        };
        {
            let e = PersistEngine::new(&dir, mode).unwrap();
            e.note_write(
                &Key::from("a"),
                ts(1),
                &Value::from("1"),
                &CausalContext::EMPTY,
                true,
            )
            .unwrap();
            e.inject_torn_append().unwrap();
            assert!(e.crashed());
        }
        let fresh = MemStore::new(StoreConfig::default());
        let e = PersistEngine::new(&dir, mode).unwrap();
        let (_, replayed) = e.recover(&fresh).unwrap();
        assert_eq!(replayed, 1, "intact prefix survives the torn tail");
        assert!(fresh.contains(&Key::from("a")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_all_records_preserve_value_lists() {
        let dir = tmp_dir("writeall");
        let mode = PersistMode::WriteAhead {
            snapshot_interval_micros: 1_000_000,
        };
        let e = PersistEngine::new(&dir, mode).unwrap();
        let k = Key::from("list");
        e.note_write(
            &k,
            Timestamp::new(1, 0, NodeId(1)),
            &Value::from("s1"),
            &CausalContext::EMPTY,
            false,
        )
        .unwrap();
        e.note_write(
            &k,
            Timestamp::new(2, 0, NodeId(2)),
            &Value::from("s2"),
            &CausalContext::EMPTY,
            false,
        )
        .unwrap();
        let fresh = MemStore::new(StoreConfig::default());
        e.recover(&fresh).unwrap();
        assert_eq!(fresh.read_all(&k).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
