//! The per-node persistence engine: policy + WAL + snapshot + recovery.
//!
//! Table I row "Persistency Strategy: periodically flush or write-ahead
//! logs according users' needs — different speed and availability". The
//! engine is driven by the owning node: `note_write` on every accepted
//! write, `tick` from a periodic timer, `recover` at boot.

use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use sedna_common::time::Micros;
use sedna_common::{Key, SednaResult, Timestamp, Value};
use sedna_memstore::MemStore;

use crate::snapshot::{load_snapshot, write_snapshot};
use crate::wal::{Wal, WalRecord};

/// Durability policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersistMode {
    /// No durability; replication is the only protection.
    None,
    /// Snapshot the whole store every `interval_micros`.
    Periodic {
        /// Flush interval (µs).
        interval_micros: Micros,
    },
    /// Log each write before acknowledging; snapshot every
    /// `snapshot_interval_micros` to bound replay, truncating the log.
    WriteAhead {
        /// Snapshot interval (µs).
        snapshot_interval_micros: Micros,
    },
}

/// Engine state.
pub struct PersistEngine {
    mode: PersistMode,
    snapshot_path: PathBuf,
    wal: Option<Mutex<Wal>>,
    last_flush: Mutex<Micros>,
    /// Flush/snapshot count (metrics/tests).
    flushes: Mutex<u64>,
}

impl PersistEngine {
    /// Creates the engine rooted at `dir` (created if absent) with the
    /// given policy.
    pub fn new(dir: impl AsRef<Path>, mode: PersistMode) -> SednaResult<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join("store.snapshot");
        let wal = match mode {
            PersistMode::WriteAhead { .. } => Some(Mutex::new(Wal::open(dir.join("store.wal"))?)),
            _ => None,
        };
        Ok(PersistEngine {
            mode,
            snapshot_path,
            wal,
            last_flush: Mutex::new(0),
            flushes: Mutex::new(0),
        })
    }

    /// The configured policy.
    pub fn mode(&self) -> PersistMode {
        self.mode
    }

    /// Snapshots taken so far.
    pub fn flush_count(&self) -> u64 {
        *self.flushes.lock()
    }

    /// Called on every accepted local write. Under `WriteAhead` this logs
    /// and flushes before returning — the write is durable once this
    /// returns — otherwise it is a no-op.
    pub fn note_write(
        &self,
        key: &Key,
        ts: Timestamp,
        value: &Value,
        latest: bool,
    ) -> SednaResult<()> {
        if let Some(wal) = &self.wal {
            let record = if latest {
                WalRecord::WriteLatest {
                    key: key.clone(),
                    ts,
                    value: value.clone(),
                }
            } else {
                WalRecord::WriteAll {
                    key: key.clone(),
                    ts,
                    value: value.clone(),
                }
            };
            let mut wal = wal.lock();
            wal.append(&record)?;
            wal.sync()?;
        }
        Ok(())
    }

    /// Called on key removal.
    pub fn note_remove(&self, key: &Key) -> SednaResult<()> {
        if let Some(wal) = &self.wal {
            let mut wal = wal.lock();
            wal.append(&WalRecord::Remove { key: key.clone() })?;
            wal.sync()?;
        }
        Ok(())
    }

    /// Periodic driver: takes a snapshot when the policy's interval has
    /// elapsed. Returns true when a snapshot was written.
    pub fn tick(&self, now: Micros, store: &MemStore) -> SednaResult<bool> {
        let interval = match self.mode {
            PersistMode::None => return Ok(false),
            PersistMode::Periodic { interval_micros } => interval_micros,
            PersistMode::WriteAhead {
                snapshot_interval_micros,
            } => snapshot_interval_micros,
        };
        let mut last = self.last_flush.lock();
        if now.saturating_sub(*last) < interval {
            return Ok(false);
        }
        *last = now;
        drop(last);
        self.flush(store)?;
        Ok(true)
    }

    /// Forces a snapshot now (and truncates the WAL, which the snapshot
    /// subsumes).
    pub fn flush(&self, store: &MemStore) -> SednaResult<()> {
        write_snapshot(&self.snapshot_path, store)?;
        if let Some(wal) = &self.wal {
            wal.lock().truncate()?;
        }
        *self.flushes.lock() += 1;
        Ok(())
    }

    /// Boot-time recovery: loads the snapshot, then replays the WAL on top.
    /// Returns `(snapshot_rows, wal_records)`.
    pub fn recover(&self, store: &MemStore) -> SednaResult<(u64, u64)> {
        let rows = load_snapshot(&self.snapshot_path, store)?;
        let mut replayed = 0u64;
        if self.wal.is_some() {
            let records = Wal::replay(self.snapshot_path.with_file_name("store.wal"))?;
            replayed = records.len() as u64;
            for r in records {
                match r {
                    WalRecord::WriteLatest { key, ts, value } => {
                        store.write_latest(&key, ts, value);
                    }
                    WalRecord::WriteAll { key, ts, value } => {
                        store.write_all(&key, ts, value);
                    }
                    WalRecord::Remove { key } => {
                        store.remove(&key);
                    }
                }
            }
        }
        Ok((rows, replayed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_common::NodeId;
    use sedna_memstore::StoreConfig;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sedna-engine-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn ts(micros: u64) -> Timestamp {
        Timestamp::new(micros, 0, NodeId(0))
    }

    #[test]
    fn none_mode_never_flushes() {
        let dir = tmp_dir("none");
        let e = PersistEngine::new(&dir, PersistMode::None).unwrap();
        let s = MemStore::new(StoreConfig::default());
        s.write_latest(&Key::from("k"), ts(1), Value::from("v"));
        assert!(!e.tick(10_000_000, &s).unwrap());
        assert_eq!(e.flush_count(), 0);
        let fresh = MemStore::new(StoreConfig::default());
        assert_eq!(e.recover(&fresh).unwrap(), (0, 0));
        assert!(fresh.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn periodic_mode_flushes_on_interval_and_recovers() {
        let dir = tmp_dir("periodic");
        let e = PersistEngine::new(
            &dir,
            PersistMode::Periodic {
                interval_micros: 1_000,
            },
        )
        .unwrap();
        let s = MemStore::new(StoreConfig::default());
        s.write_latest(&Key::from("k"), ts(1), Value::from("v"));
        assert!(!e.tick(500, &s).unwrap(), "interval not elapsed");
        assert!(e.tick(1_500, &s).unwrap());
        assert!(!e.tick(1_600, &s).unwrap(), "just flushed");
        assert!(e.tick(3_000, &s).unwrap());
        assert_eq!(e.flush_count(), 2);
        let fresh = MemStore::new(StoreConfig::default());
        let (rows, wal) = e.recover(&fresh).unwrap();
        assert_eq!((rows, wal), (1, 0));
        assert_eq!(
            fresh.read_latest(&Key::from("k")).unwrap().value,
            Value::from("v")
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_ahead_recovers_unflushed_writes() {
        let dir = tmp_dir("wal");
        let mode = PersistMode::WriteAhead {
            snapshot_interval_micros: 1_000_000,
        };
        {
            let e = PersistEngine::new(&dir, mode).unwrap();
            let s = MemStore::new(StoreConfig::default());
            for i in 0..10u64 {
                let k = Key::from(format!("k{i}"));
                let v = Value::from(format!("v{i}"));
                s.write_latest(&k, ts(i + 1), v.clone());
                e.note_write(&k, ts(i + 1), &v, true).unwrap();
            }
            e.note_remove(&Key::from("k3")).unwrap();
            // No snapshot taken — simulate a crash by dropping everything.
        }
        let e = PersistEngine::new(&dir, mode).unwrap();
        let fresh = MemStore::new(StoreConfig::default());
        let (rows, replayed) = e.recover(&fresh).unwrap();
        assert_eq!(rows, 0, "no snapshot existed");
        assert_eq!(replayed, 11);
        assert_eq!(fresh.len(), 9);
        assert!(!fresh.contains(&Key::from("k3")));
        assert_eq!(
            fresh.read_latest(&Key::from("k9")).unwrap().value,
            Value::from("v9")
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncates_wal_and_recovery_composes_both() {
        let dir = tmp_dir("compose");
        let mode = PersistMode::WriteAhead {
            snapshot_interval_micros: 1_000,
        };
        let e = PersistEngine::new(&dir, mode).unwrap();
        let s = MemStore::new(StoreConfig::default());
        // Phase 1: logged writes, then a snapshot (truncates the log).
        s.write_latest(&Key::from("a"), ts(1), Value::from("1"));
        e.note_write(&Key::from("a"), ts(1), &Value::from("1"), true)
            .unwrap();
        assert!(e.tick(2_000, &s).unwrap(), "snapshot taken");
        // Phase 2: more writes after the snapshot, only in the WAL.
        s.write_latest(&Key::from("b"), ts(2), Value::from("2"));
        e.note_write(&Key::from("b"), ts(2), &Value::from("2"), true)
            .unwrap();
        // Recover into a fresh store: snapshot row 'a' + wal record 'b'.
        let fresh = MemStore::new(StoreConfig::default());
        let (rows, replayed) = e.recover(&fresh).unwrap();
        assert_eq!((rows, replayed), (1, 1));
        assert!(fresh.contains(&Key::from("a")));
        assert!(fresh.contains(&Key::from("b")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_all_records_preserve_value_lists() {
        let dir = tmp_dir("writeall");
        let mode = PersistMode::WriteAhead {
            snapshot_interval_micros: 1_000_000,
        };
        let e = PersistEngine::new(&dir, mode).unwrap();
        let k = Key::from("list");
        e.note_write(
            &k,
            Timestamp::new(1, 0, NodeId(1)),
            &Value::from("s1"),
            false,
        )
        .unwrap();
        e.note_write(
            &k,
            Timestamp::new(2, 0, NodeId(2)),
            &Value::from("s2"),
            false,
        )
        .unwrap();
        let fresh = MemStore::new(StoreConfig::default());
        e.recover(&fresh).unwrap();
        assert_eq!(fresh.read_all(&k).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
