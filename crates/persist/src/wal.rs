//! The write-ahead log.
//!
//! Frame layout: `[payload_len: u32][crc32(payload): u32][payload]`.
//! Replay stops at the first frame whose length or checksum is wrong — a
//! torn tail from a crash is expected and harmless; everything before it is
//! intact.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use sedna_common::{CausalContext, Key, SednaError, SednaResult, Timestamp, Value};

use crate::codec::{crc32, Decoder, Encoder};

/// One logged operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A `write_latest` accepted by the local store.
    WriteLatest {
        /// Key.
        key: Key,
        /// Write timestamp.
        ts: Timestamp,
        /// Value.
        value: Value,
        /// Causal context the write carried; replaying with it reproduces
        /// the pre-crash sibling/clock state bit for bit.
        ctx: CausalContext,
    },
    /// A `write_all` accepted by the local store.
    WriteAll {
        /// Key.
        key: Key,
        /// Write timestamp.
        ts: Timestamp,
        /// Value.
        value: Value,
        /// Causal context the write carried.
        ctx: CausalContext,
    },
    /// A key removal.
    Remove {
        /// Key.
        key: Key,
    },
}

const TAG_LATEST: u8 = 1;
const TAG_ALL: u8 = 2;
const TAG_REMOVE: u8 = 3;

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            WalRecord::WriteLatest {
                key,
                ts,
                value,
                ctx,
            } => {
                e.u8(TAG_LATEST);
                e.bytes(key.as_bytes());
                e.timestamp(*ts);
                e.bytes(value.as_bytes());
                e.context(ctx);
            }
            WalRecord::WriteAll {
                key,
                ts,
                value,
                ctx,
            } => {
                e.u8(TAG_ALL);
                e.bytes(key.as_bytes());
                e.timestamp(*ts);
                e.bytes(value.as_bytes());
                e.context(ctx);
            }
            WalRecord::Remove { key } => {
                e.u8(TAG_REMOVE);
                e.bytes(key.as_bytes());
            }
        }
        e.finish()
    }

    fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut d = Decoder::new(payload);
        let rec = match d.u8().ok()? {
            TAG_LATEST => WalRecord::WriteLatest {
                key: Key::from_bytes(d.bytes().ok()?.to_vec()),
                ts: d.timestamp().ok()?,
                value: Value::from_bytes(d.bytes().ok()?.to_vec()),
                ctx: d.context().ok()?,
            },
            TAG_ALL => WalRecord::WriteAll {
                key: Key::from_bytes(d.bytes().ok()?.to_vec()),
                ts: d.timestamp().ok()?,
                value: Value::from_bytes(d.bytes().ok()?.to_vec()),
                ctx: d.context().ok()?,
            },
            TAG_REMOVE => WalRecord::Remove {
                key: Key::from_bytes(d.bytes().ok()?.to_vec()),
            },
            _ => return None,
        };
        d.is_done().then_some(rec)
    }
}

/// An append-only write-ahead log.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    appended: u64,
}

impl Wal {
    /// Opens (creating if needed) the log at `path` for appending.
    pub fn open(path: impl Into<PathBuf>) -> SednaResult<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal {
            path,
            writer: BufWriter::new(file),
            appended: 0,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends one record (buffered; call [`Wal::sync`] to flush).
    pub fn append(&mut self, record: &WalRecord) -> SednaResult<()> {
        let payload = record.encode();
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32(&payload).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.appended += 1;
        Ok(())
    }

    /// Flushes buffered frames to the OS.
    pub fn sync(&mut self) -> SednaResult<()> {
        self.writer.flush()?;
        Ok(())
    }

    /// Crash-point injection: appends only a *prefix* of the record's frame
    /// and flushes it, leaving the same torn tail a power cut mid-`append`
    /// would. Replay must stop cleanly before it and [`Wal::repair`] must
    /// cut it off.
    pub fn append_torn(&mut self, record: &WalRecord) -> SednaResult<()> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        // Keep the length header but lose part of the payload — the torn
        // frame claims more bytes than the file holds.
        let keep = 8 + payload.len() / 2;
        self.writer.write_all(&frame[..keep])?;
        self.writer.flush()?;
        Ok(())
    }

    /// Truncates the log (after a snapshot made its contents redundant).
    pub fn truncate(&mut self) -> SednaResult<()> {
        self.writer.flush()?;
        let file = OpenOptions::new()
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        self.writer = BufWriter::new(OpenOptions::new().append(true).open(&self.path)?);
        drop(file);
        Ok(())
    }

    /// Replays every intact record from a log file. A torn or corrupt tail
    /// ends the replay without error; a missing file yields zero records.
    pub fn replay(path: impl AsRef<Path>) -> SednaResult<Vec<WalRecord>> {
        Ok(Wal::scan(path)?.0)
    }

    /// Like [`Wal::replay`], additionally reporting how many leading bytes
    /// of the file hold intact frames and the total file size.
    pub fn scan(path: impl AsRef<Path>) -> SednaResult<(Vec<WalRecord>, u64, u64)> {
        let mut bytes = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0, 0)),
            Err(e) => return Err(SednaError::Io(e)),
        }
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            let end = start + len;
            if end > bytes.len() {
                break; // torn tail
            }
            let payload = &bytes[start..end];
            if crc32(payload) != crc {
                break; // corrupt frame: stop trusting the rest
            }
            match WalRecord::decode(payload) {
                Some(r) => records.push(r),
                None => break,
            }
            pos = end;
        }
        Ok((records, pos as u64, bytes.len() as u64))
    }

    /// Truncates a log to its intact prefix, discarding a torn or corrupt
    /// tail. Without this, appends made *after* a crash-recovery land
    /// behind the junk bytes and a second replay would stop before ever
    /// reaching them. Returns the number of bytes cut. Missing file is a
    /// no-op.
    pub fn repair(path: impl AsRef<Path>) -> SednaResult<u64> {
        let (_, valid, total) = Wal::scan(path.as_ref())?;
        if total == valid {
            return Ok(0);
        }
        let f = OpenOptions::new().write(true).open(path.as_ref())?;
        f.set_len(valid)?;
        Ok(total - valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_common::NodeId;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sedna-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn rec(i: u64) -> WalRecord {
        // Alternate empty and populated contexts so both encodings are
        // exercised by every replay test.
        let ctx = if i.is_multiple_of(2) {
            CausalContext::EMPTY
        } else {
            CausalContext::from_dots([&Timestamp::new(i, 1, NodeId(1_000))])
        };
        WalRecord::WriteLatest {
            key: Key::from(format!("key-{i}")),
            ts: Timestamp::new(i, 0, NodeId(1)),
            value: Value::from(format!("value-{i}")),
            ctx,
        }
    }

    #[test]
    fn append_sync_replay_roundtrip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::open(&path).unwrap();
        for i in 0..100 {
            wal.append(&rec(i)).unwrap();
        }
        wal.append(&WalRecord::Remove {
            key: Key::from("key-5"),
        })
        .unwrap();
        wal.append(&WalRecord::WriteAll {
            key: Key::from("multi"),
            ts: Timestamp::new(7, 1, NodeId(2)),
            value: Value::from("m"),
            ctx: CausalContext::from_dots([&Timestamp::new(6, 0, NodeId(3))]),
        })
        .unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.appended(), 102);
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 102);
        assert_eq!(replayed[0], rec(0));
        assert_eq!(
            replayed[100],
            WalRecord::Remove {
                key: Key::from("key-5")
            }
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        assert!(Wal::replay("/nonexistent/sedna.wal").unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path).unwrap();
        for i in 0..10 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        // Tear the file mid-frame.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 9, "last record torn, rest intact");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_frame_stops_replay() {
        let path = tmp("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        for i in 0..10 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the 3rd frame's payload (frame sizes vary
        // with the record's context, so sum the first two).
        let offset = (0..2).map(|i| 8 + rec(i).encode().len()).sum::<usize>();
        bytes[offset + 12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 2, "replay stops at the corrupt frame");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_then_new_records() {
        let path = tmp("truncate");
        let mut wal = Wal::open(&path).unwrap();
        for i in 0..5 {
            wal.append(&rec(i)).unwrap();
        }
        wal.truncate().unwrap();
        wal.append(&rec(99)).unwrap();
        wal.sync().unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, vec![rec(99)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_append_then_repair_keeps_later_appends_replayable() {
        let path = tmp("torn-repair");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
            wal.append_torn(&rec(2)).unwrap();
        }
        // First recovery: only the intact prefix replays; repair cuts the
        // torn frame off.
        let (records, valid, total) = Wal::scan(&path).unwrap();
        assert_eq!(records, vec![rec(1)]);
        assert!(total > valid, "torn bytes present");
        assert_eq!(Wal::repair(&path).unwrap(), total - valid);
        assert_eq!(Wal::repair(&path).unwrap(), 0, "repair is idempotent");
        // Appends after the repair must be visible to a second replay.
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&rec(3)).unwrap();
            wal.sync().unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap(), vec![rec(1), rec(3)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = tmp("reopen");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&rec(2)).unwrap();
            wal.sync().unwrap();
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, vec![rec(1), rec(2)]);
        std::fs::remove_file(&path).unwrap();
    }
}
