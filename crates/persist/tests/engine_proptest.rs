//! Property test for the full durability loop the data node runs:
//! batched store writes (`MemStore::apply_batch`) and removes, each
//! noted to a `PersistEngine` exactly when the store accepted it (the
//! node's durable-before-ack rule), must recover into a fresh store
//! that equals the original — for arbitrary interleavings of
//! `write_latest` / `write_all` / `remove`, arbitrary batch sizes, and
//! with snapshot flushes injected mid-sequence (so recovery exercises
//! snapshot + WAL-suffix replay, not just raw replay).

use proptest::prelude::*;
use sedna_common::{Key, NodeId, Timestamp, Value};
use sedna_memstore::{BatchWrite, MemStore, StoreConfig, WriteOutcome};
use sedna_persist::{PersistEngine, PersistMode};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    p.push(format!("sedna-engprop-{}-{n}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

#[derive(Clone, Debug)]
enum Op {
    Write {
        key: u8,
        micros: u64,
        origin: u8,
        latest: bool,
        val: Vec<u8>,
    },
    Remove {
        key: u8,
    },
    /// Force a snapshot flush (truncates the WAL), so recovery must
    /// stitch snapshot state and the WAL suffix together.
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    fn write() -> impl Strategy<Value = Op> {
        (
            0u8..12,
            0u64..500,
            0u8..4,
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..24),
        )
            .prop_map(|(key, micros, origin, latest, val)| Op::Write {
                key,
                micros,
                origin,
                latest,
                val,
            })
    }
    // The offline proptest shim has no weighted arms; bias toward
    // writes by listing the write arm twice.
    prop_oneof![
        write(),
        write(),
        (0u8..12).prop_map(|key| Op::Remove { key }),
        Just(Op::Flush),
    ]
}

fn key_of(k: u8) -> Key {
    Key::from(format!("key-{k}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_writes_plus_recovery_equal_original_store(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        batch in 1usize..6,
    ) {
        let dir = tmp_dir("roundtrip");
        let mode = PersistMode::WriteAhead { snapshot_interval_micros: 1_000_000 };
        let engine = PersistEngine::new(&dir, mode).unwrap();
        let store = MemStore::new(StoreConfig::default());

        // Apply writes in batches of `batch`, noting each *accepted* op
        // to the engine in batch order — the node's batched datapath.
        let mut pending: Vec<BatchWrite> = Vec::new();
        let flush_writes = |pending: &mut Vec<BatchWrite>| {
            let results = store.apply_batch(pending);
            for (op, res) in pending.iter().zip(&results) {
                if res.outcome == WriteOutcome::Ok {
                    engine.note_write(&op.key, op.ts, &op.value, op.latest).unwrap();
                }
            }
            pending.clear();
        };
        for op in &ops {
            match op {
                Op::Write { key, micros, origin, latest, val } => {
                    pending.push(BatchWrite {
                        key: key_of(*key),
                        ts: Timestamp::new(*micros, 0, NodeId(u32::from(*origin))),
                        value: Value::from_bytes(val.clone()),
                        latest: *latest,
                    });
                    if pending.len() >= batch {
                        flush_writes(&mut pending);
                    }
                }
                Op::Remove { key } => {
                    flush_writes(&mut pending);
                    let key = key_of(*key);
                    if store.remove(&key).is_some() {
                        engine.note_remove(&key).unwrap();
                    }
                }
                Op::Flush => {
                    flush_writes(&mut pending);
                    engine.flush(&store).unwrap();
                }
            }
        }
        flush_writes(&mut pending);

        // Crash-free restart: a fresh engine over the same directory
        // must rebuild an identical store.
        drop(engine);
        let recovered = MemStore::new(StoreConfig::default());
        let engine2 = PersistEngine::new(&dir, mode).unwrap();
        engine2.recover(&recovered).unwrap();

        prop_assert_eq!(recovered.len(), store.len(), "row count differs");
        store.for_each(|key, versions| {
            let mut got = recovered.read_all(key).expect("row survived recovery").to_vec();
            let mut want = versions.to_vec();
            got.sort_by_key(|v| v.ts);
            want.sort_by_key(|v| v.ts);
            assert_eq!(got, want, "row {key:?} differs after recovery");
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}
