//! Property test for the full durability loop the data node runs:
//! batched store writes (`MemStore::apply_batch`) and removes, each
//! noted to a `PersistEngine` exactly when the store accepted it (the
//! node's durable-before-ack rule), must recover into a fresh store
//! that equals the original — for arbitrary interleavings of
//! `write_latest` / `write_all` / `remove`, arbitrary batch sizes, and
//! with snapshot flushes injected mid-sequence (so recovery exercises
//! snapshot + WAL-suffix replay, not just raw replay).
//!
//! Since PR-8 every write carries a causal context and every row a
//! clock; recovery must reproduce both *bit for bit* — a recovered
//! replica that forgot which dots it pruned would resurrect dead
//! siblings on its next anti-entropy exchange. The second property
//! additionally tears the WAL tail (the mid-append power-cut) before
//! recovering, exercising the repair path.

use proptest::prelude::*;
use sedna_common::{CausalContext, Key, NodeId, Timestamp, Value};
use sedna_memstore::{BatchWrite, MemStore, StoreConfig, WriteOutcome};
use sedna_persist::{PersistEngine, PersistMode};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    p.push(format!("sedna-engprop-{}-{n}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

#[derive(Clone, Debug)]
enum Op {
    Write {
        key: u8,
        micros: u64,
        origin: u8,
        latest: bool,
        val: Vec<u8>,
        /// Dots folded into the write's causal context — `(micros,
        /// origin)` pairs, so contexts sometimes cover stored dots
        /// (causal overwrite) and sometimes don't (concurrent write).
        ctx_dots: Vec<(u64, u8)>,
    },
    Remove {
        key: u8,
    },
    /// Force a snapshot flush (truncates the WAL), so recovery must
    /// stitch snapshot state and the WAL suffix together.
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    fn write() -> impl Strategy<Value = Op> {
        (
            0u8..12,
            0u64..500,
            0u8..4,
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..24),
            proptest::collection::vec((0u64..500, 0u8..4), 0..3),
        )
            .prop_map(|(key, micros, origin, latest, val, ctx_dots)| Op::Write {
                key,
                micros,
                origin,
                latest,
                val,
                ctx_dots,
            })
    }
    // The offline proptest shim has no weighted arms; bias toward
    // writes by listing the write arm twice.
    prop_oneof![
        write(),
        write(),
        (0u8..12).prop_map(|key| Op::Remove { key }),
        Just(Op::Flush),
    ]
}

fn key_of(k: u8) -> Key {
    Key::from(format!("key-{k}"))
}

fn ctx_of(dots: &[(u64, u8)]) -> CausalContext {
    let dots: Vec<Timestamp> = dots
        .iter()
        .map(|&(m, o)| Timestamp::new(m, 0, NodeId(u32::from(o))))
        .collect();
    CausalContext::from_dots(dots.iter())
}

/// Drives `ops` through a store + engine pair exactly like the node's
/// batched datapath, returning both.
fn run_ops(dir: &PathBuf, ops: &[Op], batch: usize) -> (MemStore, PersistEngine) {
    let mode = PersistMode::WriteAhead {
        snapshot_interval_micros: 1_000_000,
    };
    let engine = PersistEngine::new(dir, mode).unwrap();
    let store = MemStore::new(StoreConfig::default());
    let mut pending: Vec<BatchWrite> = Vec::new();
    let flush_writes = |pending: &mut Vec<BatchWrite>| {
        let results = store.apply_batch(pending);
        for (op, res) in pending.iter().zip(&results) {
            if res.outcome == WriteOutcome::Ok {
                engine
                    .note_write(&op.key, op.ts, &op.value, &op.ctx, op.latest)
                    .unwrap();
            }
        }
        pending.clear();
    };
    for op in ops {
        match op {
            Op::Write {
                key,
                micros,
                origin,
                latest,
                val,
                ctx_dots,
            } => {
                pending.push(BatchWrite {
                    key: key_of(*key),
                    ts: Timestamp::new(*micros, 0, NodeId(u32::from(*origin))),
                    value: Value::from_bytes(val.clone()),
                    ctx: ctx_of(ctx_dots),
                    latest: *latest,
                });
                if pending.len() >= batch {
                    flush_writes(&mut pending);
                }
            }
            Op::Remove { key } => {
                flush_writes(&mut pending);
                let key = key_of(*key);
                if store.remove(&key).is_some() {
                    engine.note_remove(&key).unwrap();
                }
            }
            Op::Flush => {
                flush_writes(&mut pending);
                engine.flush(&store).unwrap();
            }
        }
    }
    flush_writes(&mut pending);
    (store, engine)
}

/// Asserts `recovered` equals `original` bit for bit: same rows, same
/// version lists, and — the PR-8 burden — same row clocks.
fn assert_stores_equal(original: &MemStore, recovered: &MemStore) {
    assert_eq!(recovered.len(), original.len(), "row count differs");
    original.for_each_row(|key, snap| {
        let got = recovered.read_all(key).expect("row survived recovery");
        let mut got_vs = got.to_vec();
        let mut want_vs = snap.to_vec();
        got_vs.sort_by_key(|v| v.ts);
        want_vs.sort_by_key(|v| v.ts);
        assert_eq!(got_vs, want_vs, "row {key:?} differs after recovery");
        assert_eq!(
            got.clock(),
            snap.clock(),
            "row {key:?} clock differs after recovery"
        );
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_writes_plus_recovery_equal_original_store(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        batch in 1usize..6,
    ) {
        let dir = tmp_dir("roundtrip");
        let (store, engine) = run_ops(&dir, &ops, batch);

        // Crash-free restart: a fresh engine over the same directory
        // must rebuild an identical store.
        let mode = engine.mode();
        drop(engine);
        let recovered = MemStore::new(StoreConfig::default());
        let engine2 = PersistEngine::new(&dir, mode).unwrap();
        engine2.recover(&recovered).unwrap();
        assert_stores_equal(&store, &recovered);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_recovery_preserves_contexts_bit_for_bit(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        batch in 1usize..6,
    ) {
        let dir = tmp_dir("torn");
        let (store, engine) = run_ops(&dir, &ops, batch);
        let mode = engine.mode();

        // Power cut mid-append: a torn frame lands after every accepted
        // record, and the engine dies.
        engine.inject_torn_append().unwrap();
        drop(engine);

        // First recovery: the intact prefix — i.e. everything accepted —
        // replays; the torn tail is repaired away. Clocks must match the
        // pre-crash store exactly.
        let recovered = MemStore::new(StoreConfig::default());
        let engine2 = PersistEngine::new(&dir, mode).unwrap();
        engine2.recover(&recovered).unwrap();
        assert_stores_equal(&store, &recovered);

        // Post-repair appends must survive a second recovery, context
        // included (the tail repair's whole point).
        let post_ctx = ctx_of(&[(7, 1)]);
        engine2
            .note_write(&Key::from("post"), Timestamp::new(9_999, 0, NodeId(3)), &Value::from("p"), &post_ctx, true)
            .unwrap();
        recovered.write_latest_ctx(&Key::from("post"), Timestamp::new(9_999, 0, NodeId(3)), Value::from("p"), &post_ctx);
        drop(engine2);
        let again = MemStore::new(StoreConfig::default());
        PersistEngine::new(&dir, mode).unwrap().recover(&again).unwrap();
        assert_stores_equal(&recovered, &again);
        std::fs::remove_dir_all(&dir).ok();
    }
}
