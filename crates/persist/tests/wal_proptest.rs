//! Property tests for the durability formats: any record sequence must
//! replay exactly, any torn tail must truncate cleanly at a record
//! boundary, and snapshot+WAL recovery must equal the live store.

use proptest::prelude::*;
use sedna_common::{CausalContext, Key, NodeId, Timestamp, Value};
use sedna_memstore::{MemStore, StoreConfig};
use sedna_persist::wal::{Wal, WalRecord};
use sedna_persist::{load_snapshot, write_snapshot};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQ: AtomicU64 = AtomicU64::new(0);

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    p.push(format!("sedna-walprop-{}-{n}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[derive(Clone, Debug)]
enum Rec {
    Latest {
        key: u8,
        micros: u64,
        origin: u8,
        val: Vec<u8>,
        ctx_dots: Vec<(u64, u8)>,
    },
    All {
        key: u8,
        micros: u64,
        origin: u8,
        val: Vec<u8>,
        ctx_dots: Vec<(u64, u8)>,
    },
    Remove {
        key: u8,
    },
}

fn rec_strategy() -> impl Strategy<Value = Rec> {
    prop_oneof![
        (
            any::<u8>(),
            0u64..1000,
            0u8..4,
            proptest::collection::vec(any::<u8>(), 0..64),
            proptest::collection::vec((0u64..1000, 0u8..4), 0..3),
        )
            .prop_map(|(key, micros, origin, val, ctx_dots)| Rec::Latest {
                key,
                micros,
                origin,
                val,
                ctx_dots
            }),
        (
            any::<u8>(),
            0u64..1000,
            0u8..4,
            proptest::collection::vec(any::<u8>(), 0..64),
            proptest::collection::vec((0u64..1000, 0u8..4), 0..3),
        )
            .prop_map(|(key, micros, origin, val, ctx_dots)| Rec::All {
                key,
                micros,
                origin,
                val,
                ctx_dots
            }),
        any::<u8>().prop_map(|key| Rec::Remove { key }),
    ]
}

fn ctx_of(dots: &[(u64, u8)]) -> CausalContext {
    let dots: Vec<Timestamp> = dots
        .iter()
        .map(|&(m, o)| Timestamp::new(m, 0, NodeId(u32::from(o))))
        .collect();
    CausalContext::from_dots(dots.iter())
}

fn to_wal(r: &Rec) -> WalRecord {
    let key = |k: u8| Key::from(format!("key-{k}"));
    match r {
        Rec::Latest {
            key: k,
            micros,
            origin,
            val,
            ctx_dots,
        } => WalRecord::WriteLatest {
            key: key(*k),
            ts: Timestamp::new(*micros, 0, NodeId(*origin as u32)),
            value: Value::from_bytes(val.clone()),
            ctx: ctx_of(ctx_dots),
        },
        Rec::All {
            key: k,
            micros,
            origin,
            val,
            ctx_dots,
        } => WalRecord::WriteAll {
            key: key(*k),
            ts: Timestamp::new(*micros, 0, NodeId(*origin as u32)),
            value: Value::from_bytes(val.clone()),
            ctx: ctx_of(ctx_dots),
        },
        Rec::Remove { key: k } => WalRecord::Remove { key: key(*k) },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wal_replays_any_sequence_exactly(recs in proptest::collection::vec(rec_strategy(), 1..60)) {
        let path = tmp("replay");
        let mut wal = Wal::open(&path).unwrap();
        let records: Vec<WalRecord> = recs.iter().map(to_wal).collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        let replayed = Wal::replay(&path).unwrap();
        prop_assert_eq!(replayed, records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_always_truncates_at_record_boundary(
        recs in proptest::collection::vec(rec_strategy(), 2..20),
        cut in 1usize..200,
    ) {
        let path = tmp("torn");
        let mut wal = Wal::open(&path).unwrap();
        let records: Vec<WalRecord> = recs.iter().map(to_wal).collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len().saturating_sub(cut % bytes.len());
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        // Whatever replays must be an exact prefix of what was written.
        prop_assert!(replayed.len() <= records.len());
        prop_assert_eq!(&replayed[..], &records[..replayed.len()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_roundtrip_equals_live_store(recs in proptest::collection::vec(rec_strategy(), 1..80)) {
        let store = MemStore::new(StoreConfig::default());
        for r in recs.iter().map(to_wal) {
            match r {
                WalRecord::WriteLatest { key, ts, value, ctx } => {
                    store.write_latest_ctx(&key, ts, value, &ctx);
                }
                WalRecord::WriteAll { key, ts, value, ctx } => {
                    store.write_all_ctx(&key, ts, value, &ctx);
                }
                WalRecord::Remove { key } => {
                    store.remove(&key);
                }
            }
        }
        let path = tmp("snap");
        write_snapshot(&path, &store).unwrap();
        let restored = MemStore::new(StoreConfig::default());
        load_snapshot(&path, &restored).unwrap();
        prop_assert_eq!(restored.len(), store.len());
        store.for_each_row(|key, snap| {
            let got = restored.read_all(key).expect("row restored");
            let mut got_vs = got.to_vec();
            let mut want_vs = snap.to_vec();
            got_vs.sort_by_key(|v| v.ts);
            want_vs.sort_by_key(|v| v.ts);
            assert_eq!(got_vs, want_vs, "row {key:?} differs after roundtrip");
            assert_eq!(got.clock(), snap.clock(), "row {key:?} clock differs");
        });
        std::fs::remove_file(&path).ok();
    }
}
