//! Partitioning for Sedna: the virtual-node consistent-hash ring.
//!
//! Sec. III-B of the paper: the hash ring "was equally divided into millions
//! of slices, so every slice represents a sub-range of INTEGER … each
//! sub-range is called a virtual node … When data arrives, its key will be
//! hashed to an integer, then mod to a virtual node. Every data in a virtual
//! node will be stored in one server (r1), and replicated in other two
//! servers (r2, r3)."
//!
//! This crate provides:
//!
//! * [`Partitioner`] — the pure `key → virtual node` function (fixed at
//!   cluster-configuration time, per the paper);
//! * [`VNodeMap`] — the `virtual node → [real node; N]` assignment, with
//!   deterministic join/leave rebalancing that emits [`TransferPlan`]s for
//!   the data-migration machinery;
//! * [`stats`] — per-vnode read/write counters and the per-real-node
//!   *imbalance table* that each node computes locally and periodically
//!   pushes to the coordination service;
//! * [`rebalance`] — load-driven vnode moves computed from an imbalance
//!   table.

//! # Example
//!
//! ```
//! use sedna_ring::{Partitioner, VNodeMap};
//! use sedna_common::{Key, NodeId};
//!
//! let partitioner = Partitioner::new(900);     // fixed at cluster config
//! let mut map = VNodeMap::new(900, 3);         // N = 3 replicas
//! for n in 0..9 {
//!     map.join(NodeId(n));
//! }
//! let vnode = partitioner.locate(&Key::from("test-000000000000000"));
//! let replicas = map.replicas(vnode);
//! assert_eq!(replicas.len(), 3);               // r1, r2, r3
//! // Adding a tenth node moves only ~10% of the slots:
//! let moved = map.join(NodeId(9)).len();
//! assert!(moved <= 900 * 3 / 10 + 10);
//! ```

pub mod assignment;
pub mod partitioner;
pub mod rebalance;
pub mod stats;

pub use assignment::{Transfer, TransferPlan, VNodeMap};
pub use partitioner::Partitioner;
pub use rebalance::{plan_rebalance, RebalanceConfig};
pub use stats::{HotKeyRow, ImbalanceTable, NodeLoad, VNodeStats};
