//! The virtual-node → real-node assignment.
//!
//! The paper's node-management story (Sec. III-D): a joining node registers
//! itself, then "start\[s\] number of threads … to ask for virtual nodes and
//! store them locally", updating the vnode→real-node mapping kept in the
//! coordination service. [`VNodeMap`] is that mapping. Mutations are
//! deterministic greedy claims that keep per-node slot counts balanced and
//! move the minimum number of vnodes (the "Incremental Scalability" row of
//! the paper's Table I), and every mutation emits a [`TransferPlan`]
//! describing exactly which vnode replicas must be copied where — the input
//! to the data-migration machinery in `sedna-core`.

use std::collections::{BTreeMap, BTreeSet};

use sedna_common::{NodeId, VNodeId};

/// One replica movement: vnode `vnode`'s replica slot is (re)assigned to
/// `to`, copying data from `copy_from` when available.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// The virtual node whose replica moves.
    pub vnode: VNodeId,
    /// The node that must now hold a replica.
    pub to: NodeId,
    /// Preferred source replica to copy from: the vacating holder when it is
    /// still alive (voluntary move), otherwise a surviving replica, or
    /// `None` when no copy exists (data recoverable only from persistence).
    pub copy_from: Option<NodeId>,
}

/// The ordered list of movements produced by one membership change or
/// rebalance round.
pub type TransferPlan = Vec<Transfer>;

/// The authoritative vnode → replicas assignment.
///
/// Replica lists are ordered: index 0 is the paper's *r1* (primary), the
/// rest are *r2, r3, …*. Every mutation bumps [`VNodeMap::epoch`], which is
/// what client routing caches compare against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VNodeMap {
    n_replicas: usize,
    epoch: u64,
    /// Per-vnode ordered replica lists.
    replicas: Vec<Vec<NodeId>>,
    /// Live membership.
    members: BTreeSet<NodeId>,
    /// Slots held per member (cached; equals occurrences in `replicas`).
    loads: BTreeMap<NodeId, u32>,
}

impl VNodeMap {
    /// Creates an empty assignment over `vnode_count` virtual nodes with a
    /// replication factor of `n_replicas` (the paper uses 3).
    ///
    /// # Panics
    /// Panics when either argument is zero.
    pub fn new(vnode_count: u32, n_replicas: usize) -> Self {
        assert!(vnode_count > 0, "vnode count must be positive");
        assert!(n_replicas > 0, "replication factor must be positive");
        VNodeMap {
            n_replicas,
            epoch: 0,
            replicas: vec![Vec::new(); vnode_count as usize],
            members: BTreeSet::new(),
            loads: BTreeMap::new(),
        }
    }

    /// The configured replication factor N.
    pub fn n_replicas(&self) -> usize {
        self.n_replicas
    }

    /// Number of virtual nodes.
    pub fn vnode_count(&self) -> u32 {
        self.replicas.len() as u32
    }

    /// Monotone version of the assignment; bumped on every mutation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current membership, ascending.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }

    /// True when `node` is a member.
    pub fn is_member(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Ordered replica list (r1 first) for a vnode. Empty before any join.
    pub fn replicas(&self, vnode: VNodeId) -> &[NodeId] {
        &self.replicas[vnode.index()]
    }

    /// The primary (r1) of a vnode, if assigned.
    pub fn primary(&self, vnode: VNodeId) -> Option<NodeId> {
        self.replicas[vnode.index()].first().copied()
    }

    /// Slots (vnode replicas) currently held by `node`.
    pub fn load(&self, node: NodeId) -> u32 {
        self.loads.get(&node).copied().unwrap_or(0)
    }

    /// All vnodes for which `node` holds a replica, ascending.
    pub fn vnodes_of(&self, node: NodeId) -> Vec<VNodeId> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, set)| set.contains(&node))
            .map(|(i, _)| VNodeId(i as u32))
            .collect()
    }

    /// Replication factor currently achievable: `min(N, member count)`.
    pub fn effective_rf(&self) -> usize {
        self.n_replicas.min(self.members.len())
    }

    /// Adds `node` to the cluster and rebalances slots onto it.
    ///
    /// Deterministic: the same map and the same joiner always produce the
    /// same plan. Returns the transfers required (empty only for a vacuous
    /// join of an existing member).
    pub fn join(&mut self, node: NodeId) -> TransferPlan {
        if !self.members.insert(node) {
            return Vec::new();
        }
        self.loads.insert(node, 0);
        self.epoch += 1;
        let mut plan = Vec::new();

        // Phase A: fill missing replica slots (first boot, or the effective
        // replication factor grew because membership did).
        let want = self.effective_rf();
        for i in 0..self.replicas.len() {
            while self.replicas[i].len() < want {
                let vnode = VNodeId(i as u32);
                let Some(pick) = self.least_loaded_excluding(&self.replicas[i]) else {
                    break;
                };
                let copy_from = self.replicas[i].first().copied();
                self.replicas[i].push(pick);
                *self.loads.get_mut(&pick).expect("member load") += 1;
                plan.push(Transfer {
                    vnode,
                    to: pick,
                    copy_from,
                });
            }
        }

        // Phase B: steal slots until the spread is at most one.
        self.balance(&mut plan);
        self.balance_primaries();
        plan
    }

    /// Evens out the *primary* (r1) role across members. Pure role
    /// rotation within replica sets: every replica already holds the data,
    /// so this moves zero bytes — it only decides who coordinates reads of
    /// and fires triggers for each vnode. Runs after every slot balance.
    fn balance_primaries(&mut self) {
        if self.members.is_empty() {
            return;
        }
        let mut counts: BTreeMap<NodeId, i64> = self.members.iter().map(|&m| (m, 0)).collect();
        for set in &self.replicas {
            if let Some(&p) = set.first() {
                *counts.get_mut(&p).expect("member") += 1;
            }
        }
        loop {
            let (&hot, &hot_count) = counts
                .iter()
                .max_by_key(|(n, c)| (**c, std::cmp::Reverse(**n)))
                .expect("non-empty");
            let (&cold, &cold_count) = counts
                .iter()
                .min_by_key(|(n, c)| (**c, **n))
                .expect("non-empty");
            if hot_count - cold_count <= 1 {
                return;
            }
            // A vnode where `hot` is primary and `cold` is a replica: swap.
            let Some(set) = self
                .replicas
                .iter_mut()
                .find(|set| set.first() == Some(&hot) && set[1..].contains(&cold))
            else {
                // `cold` shares no vnode with `hot`; demoting through an
                // intermediate would need a smarter matching — stop rather
                // than loop (slot balance keeps this case rare and mild).
                return;
            };
            let pos = set.iter().position(|&n| n == cold).expect("present");
            set.swap(0, pos);
            *counts.get_mut(&hot).expect("member") -= 1;
            *counts.get_mut(&cold).expect("member") += 1;
        }
    }

    /// Moves slots from the most- to the least-loaded member until the
    /// spread is at most one slot. Deterministic; appends to `plan`.
    fn balance(&mut self, plan: &mut TransferPlan) {
        while let Some((&cold, &cold_load)) = self.loads.iter().min_by_key(|(n, l)| (**l, **n)) {
            let Some((donor, donor_load)) = self.most_loaded_other(cold) else {
                break;
            };
            if donor_load <= cold_load + 1 {
                break;
            }
            let Some(vnode) = self.first_stealable_vnode(donor, cold) else {
                break;
            };
            self.replace_in_slot(vnode, donor, cold);
            plan.push(Transfer {
                vnode,
                to: cold,
                copy_from: Some(donor),
            });
        }
    }

    /// Removes `node` (graceful leave or crash) and re-covers its slots on
    /// the survivors. When `node` crashed, the transfers' `copy_from` point
    /// at surviving replicas; when no survivor exists for a vnode the
    /// transfer is omitted and the vnode simply loses the slot.
    ///
    /// `graceful` marks whether the departing node can still serve as a copy
    /// source (planned decommission) or not (crash).
    pub fn leave(&mut self, node: NodeId, graceful: bool) -> TransferPlan {
        if !self.members.remove(&node) {
            return Vec::new();
        }
        self.loads.remove(&node);
        self.epoch += 1;
        let mut plan = Vec::new();
        let want = self.effective_rf();

        for i in 0..self.replicas.len() {
            let Some(pos) = self.replicas[i].iter().position(|&n| n == node) else {
                continue;
            };
            let vnode = VNodeId(i as u32);
            self.replicas[i].remove(pos);
            let replacement = self.least_loaded_excluding(&self.replicas[i]);
            match replacement {
                Some(pick) if self.replicas[i].len() < want => {
                    let copy_from = if graceful {
                        Some(node)
                    } else {
                        self.replicas[i].first().copied()
                    };
                    // Preserve the vacated role: a departed primary's slot is
                    // taken over at the front so r1 stays meaningful.
                    let at = pos.min(self.replicas[i].len());
                    self.replicas[i].insert(at, pick);
                    *self.loads.get_mut(&pick).expect("member load") += 1;
                    plan.push(Transfer {
                        vnode,
                        to: pick,
                        copy_from,
                    });
                }
                _ => {} // under-replicated: fewer members than N
            }
        }
        self.balance(&mut plan);
        self.balance_primaries();
        plan
    }

    /// Moves one replica slot of `vnode` from `from` to `to` (load-driven
    /// rebalancing). Returns the transfer, or `None` when the move is
    /// invalid (`from` not a holder, `to` already a holder or not a member).
    pub fn move_slot(&mut self, vnode: VNodeId, from: NodeId, to: NodeId) -> Option<Transfer> {
        if !self.members.contains(&to) || self.replicas[vnode.index()].contains(&to) {
            return None;
        }
        if !self.replicas[vnode.index()].contains(&from) {
            return None;
        }
        self.replace_in_slot(vnode, from, to);
        self.epoch += 1;
        Some(Transfer {
            vnode,
            to,
            copy_from: Some(from),
        })
    }

    /// Checks internal invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) {
        let mut counted: BTreeMap<NodeId, u32> = BTreeMap::new();
        let want = self.effective_rf();
        for (i, set) in self.replicas.iter().enumerate() {
            assert_eq!(set.len(), want, "vnode {i} under/over-replicated");
            let distinct: BTreeSet<_> = set.iter().collect();
            assert_eq!(
                distinct.len(),
                set.len(),
                "vnode {i} has duplicate replicas"
            );
            for n in set {
                assert!(
                    self.members.contains(n),
                    "vnode {i} owned by non-member {n:?}"
                );
                *counted.entry(*n).or_insert(0) += 1;
            }
        }
        for (&n, &c) in &self.loads {
            assert_eq!(
                counted.get(&n).copied().unwrap_or(0),
                c,
                "load cache stale for {n:?}"
            );
        }
    }

    /// Asserts per-member slot counts are within one of each other. Holds
    /// after membership changes; *intentionally* violated by load-driven
    /// rebalancing, which trades slot balance for load balance — so this is
    /// a separate check from [`VNodeMap::check_invariants`].
    pub fn check_slot_balance(&self) {
        if !self.members.is_empty() {
            let min = self.loads.values().min().copied().unwrap_or(0);
            let max = self.loads.values().max().copied().unwrap_or(0);
            assert!(max - min <= 1, "slot imbalance {min}..{max}");
        }
    }

    /// Serializes the map for storage in the coordination service.
    ///
    /// Format (little-endian): `magic "SEDNARNG" | epoch u64 | n_replicas
    /// u32 | vnode_count u32 | member_count u32 | members… | per-vnode:
    /// replica_count u8, replica ids…`.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.replicas.len() * 8);
        buf.extend_from_slice(b"SEDNARNG");
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        buf.extend_from_slice(&(self.n_replicas as u32).to_le_bytes());
        buf.extend_from_slice(&(self.replicas.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(self.members.len() as u32).to_le_bytes());
        for m in &self.members {
            buf.extend_from_slice(&m.0.to_le_bytes());
        }
        for set in &self.replicas {
            buf.push(set.len() as u8);
            for n in set {
                buf.extend_from_slice(&n.0.to_le_bytes());
            }
        }
        buf
    }

    /// Deserializes a map produced by [`VNodeMap::encode`]. Returns `None`
    /// on any structural violation.
    pub fn decode(bytes: &[u8]) -> Option<VNodeMap> {
        fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if buf.len() < n {
                return None;
            }
            let (head, rest) = buf.split_at(n);
            *buf = rest;
            Some(head)
        }
        fn u32_at(buf: &mut &[u8]) -> Option<u32> {
            Some(u32::from_le_bytes(take(buf, 4)?.try_into().ok()?))
        }
        let mut buf = bytes;
        if take(&mut buf, 8)? != b"SEDNARNG" {
            return None;
        }
        let epoch = u64::from_le_bytes(take(&mut buf, 8)?.try_into().ok()?);
        let n_replicas = u32_at(&mut buf)? as usize;
        let vnode_count = u32_at(&mut buf)? as usize;
        let member_count = u32_at(&mut buf)? as usize;
        if n_replicas == 0 || vnode_count == 0 {
            return None;
        }
        let mut members = BTreeSet::new();
        for _ in 0..member_count {
            members.insert(NodeId(u32_at(&mut buf)?));
        }
        let mut replicas = Vec::with_capacity(vnode_count);
        let mut loads: BTreeMap<NodeId, u32> = members.iter().map(|&m| (m, 0)).collect();
        for _ in 0..vnode_count {
            let count = take(&mut buf, 1)?[0] as usize;
            let mut set = Vec::with_capacity(count);
            for _ in 0..count {
                let n = NodeId(u32_at(&mut buf)?);
                if !members.contains(&n) {
                    return None;
                }
                *loads.get_mut(&n)? += 1;
                set.push(n);
            }
            replicas.push(set);
        }
        buf.is_empty().then_some(VNodeMap {
            n_replicas,
            epoch,
            replicas,
            members,
            loads,
        })
    }

    fn replace_in_slot(&mut self, vnode: VNodeId, from: NodeId, to: NodeId) {
        let set = &mut self.replicas[vnode.index()];
        let pos = set.iter().position(|&n| n == from).expect("holder present");
        set[pos] = to;
        *self.loads.get_mut(&from).expect("member") -= 1;
        *self.loads.get_mut(&to).expect("member") += 1;
    }

    /// Least-loaded member not already in `exclude`; ties broken by lowest
    /// id for determinism.
    fn least_loaded_excluding(&self, exclude: &[NodeId]) -> Option<NodeId> {
        self.loads
            .iter()
            .filter(|(n, _)| !exclude.contains(n))
            .min_by_key(|(n, l)| (**l, **n))
            .map(|(n, _)| *n)
    }

    /// Most-loaded member other than `node`; ties broken by lowest id.
    fn most_loaded_other(&self, node: NodeId) -> Option<(NodeId, u32)> {
        self.loads
            .iter()
            .filter(|(n, _)| **n != node)
            .max_by(|a, b| (a.1, std::cmp::Reverse(a.0)).cmp(&(b.1, std::cmp::Reverse(b.0))))
            .map(|(n, l)| (*n, *l))
    }

    /// Lowest-id vnode where `donor` holds a slot and `receiver` does not.
    fn first_stealable_vnode(&self, donor: NodeId, receiver: NodeId) -> Option<VNodeId> {
        self.replicas
            .iter()
            .enumerate()
            .find(|(_, set)| set.contains(&donor) && !set.contains(&receiver))
            .map(|(i, _)| VNodeId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with_nodes(vnodes: u32, rf: usize, nodes: u32) -> VNodeMap {
        let mut m = VNodeMap::new(vnodes, rf);
        for n in 0..nodes {
            m.join(NodeId(n));
        }
        m
    }

    #[test]
    fn first_join_takes_everything() {
        let mut m = VNodeMap::new(10, 3);
        let plan = m.join(NodeId(0));
        // effective rf is 1 with one member: one transfer per vnode.
        assert_eq!(plan.len(), 10);
        assert!(plan
            .iter()
            .all(|t| t.to == NodeId(0) && t.copy_from.is_none()));
        assert_eq!(m.load(NodeId(0)), 10);
        m.check_invariants();
        m.check_slot_balance();
    }

    #[test]
    fn rf_grows_with_membership_until_n() {
        let mut m = VNodeMap::new(12, 3);
        m.join(NodeId(0));
        assert_eq!(m.effective_rf(), 1);
        m.join(NodeId(1));
        assert_eq!(m.effective_rf(), 2);
        m.check_invariants();
        m.check_slot_balance();
        m.join(NodeId(2));
        assert_eq!(m.effective_rf(), 3);
        m.check_invariants();
        m.check_slot_balance();
        m.join(NodeId(3));
        assert_eq!(m.effective_rf(), 3, "rf capped at N");
        m.check_invariants();
        m.check_slot_balance();
    }

    #[test]
    fn nine_node_cluster_is_balanced_with_three_distinct_replicas() {
        let m = map_with_nodes(900, 3, 9);
        m.check_invariants();
        m.check_slot_balance();
        // 900 vnodes * 3 replicas / 9 nodes = 300 slots each.
        for n in 0..9 {
            assert_eq!(m.load(NodeId(n)), 300);
        }
        for v in 0..900 {
            let r = m.replicas(VNodeId(v));
            assert_eq!(r.len(), 3);
        }
    }

    #[test]
    fn join_movement_is_incremental() {
        // Adding a tenth node to a balanced 9-node cluster must move only
        // roughly 1/10th of the slots, not reshuffle the world.
        let mut m = map_with_nodes(900, 3, 9);
        let before = m.clone();
        let plan = m.join(NodeId(9));
        m.check_invariants();
        m.check_slot_balance();
        let total_slots = 900 * 3;
        assert!(
            plan.len() <= total_slots / 10 + 1,
            "moved {} of {} slots",
            plan.len(),
            total_slots
        );
        // Every transfer lands on the newcomer, sourced from the old holder.
        for t in &plan {
            assert_eq!(t.to, NodeId(9));
            let src = t.copy_from.expect("steals copy from donor");
            assert!(before.replicas(t.vnode).contains(&src));
        }
    }

    #[test]
    fn graceful_leave_recovers_all_slots() {
        let mut m = map_with_nodes(900, 3, 9);
        let plan = m.leave(NodeId(4), true);
        m.check_invariants();
        m.check_slot_balance();
        assert!(!m.is_member(NodeId(4)));
        // Every one of the 300 vacated slots is re-covered from the leaver;
        // a handful of extra balancing moves between survivors may follow.
        let recovered = plan
            .iter()
            .filter(|t| t.copy_from == Some(NodeId(4)))
            .count();
        assert_eq!(recovered, 300, "every vacated slot re-covered");
        assert!(
            plan.len() < 330,
            "balancing tail stays small: {}",
            plan.len()
        );
        for t in &plan {
            assert_ne!(t.to, NodeId(4));
        }
    }

    #[test]
    fn crash_leave_copies_from_survivors() {
        let mut m = map_with_nodes(90, 3, 9);
        let before = m.clone();
        let plan = m.leave(NodeId(2), false);
        m.check_invariants();
        m.check_slot_balance();
        for t in &plan {
            let src = t.copy_from.expect("survivor exists with rf 3");
            assert_ne!(src, NodeId(2), "crashed node cannot be a source");
            assert!(before.replicas(t.vnode).contains(&src));
        }
    }

    #[test]
    fn leave_below_n_members_shrinks_rf() {
        let mut m = map_with_nodes(10, 3, 3);
        assert_eq!(m.effective_rf(), 3);
        let plan = m.leave(NodeId(1), false);
        assert_eq!(m.effective_rf(), 2);
        assert!(plan.is_empty(), "no spare node to re-cover onto");
        m.check_invariants();
        m.check_slot_balance();
    }

    #[test]
    fn primary_takeover_preserves_role_position() {
        let mut m = map_with_nodes(30, 3, 3);
        let victim = m.primary(VNodeId(0)).unwrap();
        m.join(NodeId(3)); // have somewhere to re-cover
        let before_replicas = m.replicas(VNodeId(0)).to_vec();
        m.leave(victim, false);
        let after = m.replicas(VNodeId(0));
        assert_eq!(after.len(), 3);
        if before_replicas[0] == victim {
            // the replacement sits at the front — there is always an r1
            assert!(m.primary(VNodeId(0)).is_some());
        }
        m.check_invariants();
        m.check_slot_balance();
    }

    #[test]
    fn duplicate_join_and_unknown_leave_are_noops() {
        let mut m = map_with_nodes(10, 2, 2);
        let e = m.epoch();
        assert!(m.join(NodeId(0)).is_empty());
        assert!(m.leave(NodeId(77), true).is_empty());
        assert_eq!(m.epoch(), e, "no-ops do not bump the epoch");
    }

    #[test]
    fn move_slot_validates() {
        let mut m = map_with_nodes(10, 2, 3);
        let v = VNodeId(0);
        let holder = m.replicas(v)[0];
        let outsider = m
            .members()
            .find(|n| !m.replicas(v).contains(n))
            .expect("3 members, 2 replicas");
        // invalid: to already holds / from not holder / to not member
        assert!(m.move_slot(v, holder, m.replicas(v)[1]).is_none());
        assert!(m.move_slot(v, outsider, outsider).is_none());
        assert!(m.move_slot(v, holder, NodeId(99)).is_none());
        let e = m.epoch();
        let t = m.move_slot(v, holder, outsider).expect("valid move");
        assert_eq!(t.copy_from, Some(holder));
        assert!(m.replicas(v).contains(&outsider));
        assert!(!m.replicas(v).contains(&holder));
        assert_eq!(m.epoch(), e + 1);
    }

    #[test]
    fn epoch_bumps_on_every_mutation() {
        let mut m = VNodeMap::new(10, 2);
        assert_eq!(m.epoch(), 0);
        m.join(NodeId(0));
        assert_eq!(m.epoch(), 1);
        m.join(NodeId(1));
        assert_eq!(m.epoch(), 2);
        m.leave(NodeId(0), true);
        assert_eq!(m.epoch(), 3);
    }

    #[test]
    fn vnodes_of_lists_holdings() {
        let m = map_with_nodes(30, 3, 3);
        for n in 0..3 {
            // 3 members, rf 3 => everyone holds everything.
            assert_eq!(m.vnodes_of(NodeId(n)).len(), 30);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = map_with_nodes(90, 3, 7);
        let bytes = m.encode();
        let back = VNodeMap::decode(&bytes).expect("valid encoding");
        assert_eq!(m, back);
        back.check_invariants();
        // Empty map roundtrips too.
        let empty = VNodeMap::new(5, 2);
        assert_eq!(VNodeMap::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(VNodeMap::decode(b"").is_none());
        assert!(VNodeMap::decode(b"NOTRIGHT").is_none());
        let m = map_with_nodes(10, 2, 3);
        let mut bytes = m.encode();
        bytes.truncate(bytes.len() - 3);
        assert!(VNodeMap::decode(&bytes).is_none(), "truncation detected");
        let mut bytes2 = m.encode();
        bytes2.push(0);
        assert!(
            VNodeMap::decode(&bytes2).is_none(),
            "trailing garbage detected"
        );
    }

    #[test]
    fn determinism_same_sequence_same_map() {
        let a = map_with_nodes(300, 3, 7);
        let b = map_with_nodes(300, 3, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn churn_sequence_keeps_invariants() {
        let mut m = VNodeMap::new(120, 3);
        for n in 0..6 {
            m.join(NodeId(n));
            m.check_invariants();
            m.check_slot_balance();
        }
        m.leave(NodeId(2), false);
        m.check_invariants();
        m.check_slot_balance();
        m.join(NodeId(6));
        m.check_invariants();
        m.check_slot_balance();
        m.leave(NodeId(0), true);
        m.check_invariants();
        m.check_slot_balance();
        m.join(NodeId(2));
        m.check_invariants();
        m.check_slot_balance();
    }
}
