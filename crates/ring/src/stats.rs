//! Virtual-node statistics and the imbalance table.
//!
//! Sec. III-B: "We record all the virtual nodes' status including its
//! capacity, read/write frequency. Besides, we also maintain a imbalance
//! table for all the real nodes computed from the virtual nodes' status.
//! This information is calculated and stored locally, and periodically
//! updated to ZooKeeper cluster. It is only necessary to update the
//! imbalance table, which is a quite small comparing with the virtual nodes
//! number."
//!
//! [`VNodeStats`] is the per-vnode record a node maintains locally;
//! [`ImbalanceTable`] is the small per-real-node roll-up that actually goes
//! to the coordination service.

use std::collections::BTreeMap;

use sedna_common::{Key, NodeId, VNodeId};

use crate::assignment::VNodeMap;

/// Locally-maintained status of one virtual node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VNodeStats {
    /// Read operations observed.
    pub reads: u64,
    /// Write operations observed.
    pub writes: u64,
    /// Bytes currently stored under this vnode ("capacity" in the paper).
    pub bytes: u64,
    /// Number of keys currently stored under this vnode.
    pub keys: u64,
}

impl VNodeStats {
    /// Records a read.
    #[inline]
    pub fn record_read(&mut self) {
        self.reads += 1;
    }

    /// Records a write of `delta_bytes` net new bytes (may be negative on
    /// overwrite shrink, hence the signed parameter).
    #[inline]
    pub fn record_write(&mut self, delta_bytes: i64, new_key: bool) {
        self.writes += 1;
        self.bytes = self.bytes.saturating_add_signed(delta_bytes);
        if new_key {
            self.keys += 1;
        }
    }

    /// Scalar load score used by the rebalancer. Reads and writes weigh
    /// equally; storage contributes at a low rate so hot-but-small and
    /// cold-but-huge vnodes both register.
    pub fn load_score(&self) -> u64 {
        self.reads + self.writes + self.bytes / 4096
    }
}

/// One hot key in a node's published roll-up: the key, the vnode it hashes
/// to, and its estimated access count. Per-vnode Space-Saving sketches (in
/// the memstore crate) produce these; nodes publish their top few alongside
/// the [`NodeLoad`] row so the rebalancer — and operators — can see *which
/// keys* make a vnode hot, not just that it is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotKeyRow {
    /// The vnode hosting the key.
    pub vnode: VNodeId,
    /// The key itself.
    pub key: Key,
    /// Estimated access count (Space-Saving upper bound).
    pub count: u64,
}

/// One real node's aggregated load, as published to the coordination
/// service.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeLoad {
    /// Sum of load scores of the vnodes this node hosts.
    pub score: u64,
    /// Total stored bytes.
    pub bytes: u64,
    /// Number of vnode replicas hosted.
    pub slots: u32,
}

/// The per-real-node roll-up: small (O(nodes)), cheap to ship, sufficient
/// for rebalancing decisions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ImbalanceTable {
    entries: BTreeMap<NodeId, NodeLoad>,
    hot_keys: BTreeMap<NodeId, Vec<HotKeyRow>>,
}

impl ImbalanceTable {
    /// Computes the table from an assignment and a full per-vnode stats
    /// slice (indexed by vnode id).
    pub fn compute(map: &VNodeMap, stats: &[VNodeStats]) -> Self {
        assert_eq!(
            stats.len(),
            map.vnode_count() as usize,
            "stats must cover every vnode"
        );
        let mut entries: BTreeMap<NodeId, NodeLoad> = BTreeMap::new();
        for node in map.members() {
            entries.insert(node, NodeLoad::default());
        }
        for (i, s) in stats.iter().enumerate() {
            for &owner in map.replicas(VNodeId(i as u32)) {
                let e = entries.get_mut(&owner).expect("owner is member");
                e.score += s.load_score();
                e.bytes += s.bytes;
                e.slots += 1;
            }
        }
        ImbalanceTable {
            entries,
            hot_keys: BTreeMap::new(),
        }
    }

    /// Merges a single node's locally-computed row (what nodes periodically
    /// push to the coordination service).
    pub fn update_row(&mut self, node: NodeId, load: NodeLoad) {
        self.entries.insert(node, load);
    }

    /// Replaces a node's published hot-key roll-up.
    pub fn update_hot_keys(&mut self, node: NodeId, keys: Vec<HotKeyRow>) {
        if keys.is_empty() {
            self.hot_keys.remove(&node);
        } else {
            self.hot_keys.insert(node, keys);
        }
    }

    /// A node's most recently published hot keys (empty if none known).
    pub fn hot_keys(&self, node: NodeId) -> &[HotKeyRow] {
        self.hot_keys.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates all published hot-key rows, ascending by node id.
    pub fn all_hot_keys(&self) -> impl Iterator<Item = (NodeId, &HotKeyRow)> + '_ {
        self.hot_keys
            .iter()
            .flat_map(|(n, rows)| rows.iter().map(move |r| (*n, r)))
    }

    /// Removes a departed node's row.
    pub fn remove_row(&mut self, node: NodeId) {
        self.entries.remove(&node);
        self.hot_keys.remove(&node);
    }

    /// The load row for `node`.
    pub fn row(&self, node: NodeId) -> Option<NodeLoad> {
        self.entries.get(&node).copied()
    }

    /// Iterates rows ascending by node id.
    pub fn rows(&self) -> impl Iterator<Item = (NodeId, NodeLoad)> + '_ {
        self.entries.iter().map(|(n, l)| (*n, *l))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Imbalance ratio: `max_score / mean_score` (1.0 = perfectly even).
    /// Returns `None` with no rows or zero total load.
    pub fn imbalance_ratio(&self) -> Option<f64> {
        if self.entries.is_empty() {
            return None;
        }
        let total: u64 = self.entries.values().map(|l| l.score).sum();
        if total == 0 {
            return None;
        }
        let mean = total as f64 / self.entries.len() as f64;
        let max = self.entries.values().map(|l| l.score).max().unwrap() as f64;
        Some(max / mean)
    }

    /// Hottest and coldest nodes by score (ties by lowest id).
    pub fn extremes(&self) -> Option<(NodeId, NodeId)> {
        let hottest = self
            .entries
            .iter()
            .max_by_key(|(n, l)| (l.score, std::cmp::Reverse(**n)))
            .map(|(n, _)| *n)?;
        let coldest = self
            .entries
            .iter()
            .min_by_key(|(n, l)| (l.score, **n))
            .map(|(n, _)| *n)?;
        Some((hottest, coldest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced_map() -> VNodeMap {
        let mut m = VNodeMap::new(9, 3);
        for n in 0..3 {
            m.join(NodeId(n));
        }
        m
    }

    #[test]
    fn vnode_stats_recording() {
        let mut s = VNodeStats::default();
        s.record_write(100, true);
        s.record_write(-20, false);
        s.record_read();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes, 80);
        assert_eq!(s.keys, 1);
        assert_eq!(s.load_score(), 3); // 80 bytes < 4096 contributes 0
    }

    #[test]
    fn bytes_never_underflow() {
        let mut s = VNodeStats::default();
        s.record_write(-1_000, false);
        assert_eq!(s.bytes, 0);
    }

    #[test]
    fn compute_covers_all_members_and_sums_scores() {
        let m = balanced_map();
        let mut stats = vec![VNodeStats::default(); 9];
        for (i, s) in stats.iter_mut().enumerate() {
            s.reads = i as u64;
        }
        let table = ImbalanceTable::compute(&m, &stats);
        assert_eq!(table.len(), 3);
        // With 3 members and rf 3, everyone hosts every vnode: equal scores.
        let scores: Vec<u64> = table.rows().map(|(_, l)| l.score).collect();
        assert_eq!(scores[0], (0..9).sum::<u64>());
        assert!(scores.iter().all(|&s| s == scores[0]));
        assert!((table.imbalance_ratio().unwrap() - 1.0).abs() < 1e-9);
        for (_, l) in table.rows() {
            assert_eq!(l.slots, 9);
        }
    }

    #[test]
    fn extremes_and_row_updates() {
        let mut t = ImbalanceTable::default();
        assert!(t.extremes().is_none());
        t.update_row(
            NodeId(0),
            NodeLoad {
                score: 10,
                bytes: 0,
                slots: 1,
            },
        );
        t.update_row(
            NodeId(1),
            NodeLoad {
                score: 90,
                bytes: 0,
                slots: 1,
            },
        );
        t.update_row(
            NodeId(2),
            NodeLoad {
                score: 50,
                bytes: 0,
                slots: 1,
            },
        );
        let (hot, cold) = t.extremes().unwrap();
        assert_eq!(hot, NodeId(1));
        assert_eq!(cold, NodeId(0));
        assert_eq!(t.row(NodeId(2)).unwrap().score, 50);
        t.remove_row(NodeId(1));
        assert_eq!(t.len(), 2);
        let ratio = t.imbalance_ratio().unwrap();
        assert!(ratio > 1.0 && ratio < 2.0);
    }

    #[test]
    fn hot_key_rollup_tracks_rows() {
        let mut t = ImbalanceTable::default();
        assert!(t.hot_keys(NodeId(0)).is_empty());
        t.update_hot_keys(
            NodeId(0),
            vec![HotKeyRow {
                vnode: VNodeId(3),
                key: Key::from("cart:42"),
                count: 99,
            }],
        );
        t.update_hot_keys(
            NodeId(1),
            vec![HotKeyRow {
                vnode: VNodeId(1),
                key: Key::from("session:7"),
                count: 12,
            }],
        );
        assert_eq!(t.hot_keys(NodeId(0)).len(), 1);
        assert_eq!(t.hot_keys(NodeId(0))[0].count, 99);
        let all: Vec<(NodeId, &HotKeyRow)> = t.all_hot_keys().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, NodeId(0));
        // Publishing an empty roll-up clears the entry.
        t.update_hot_keys(NodeId(1), Vec::new());
        assert!(t.hot_keys(NodeId(1)).is_empty());
        // Departure drops the roll-up with the load row.
        t.remove_row(NodeId(0));
        assert!(t.hot_keys(NodeId(0)).is_empty());
        assert_eq!(t.all_hot_keys().count(), 0);
    }

    #[test]
    #[should_panic(expected = "stats must cover every vnode")]
    fn compute_requires_full_stats() {
        let m = balanced_map();
        ImbalanceTable::compute(&m, &[VNodeStats::default(); 3]);
    }

    #[test]
    fn imbalance_ratio_none_on_zero_load() {
        let m = balanced_map();
        let t = ImbalanceTable::compute(&m, &vec![VNodeStats::default(); 9]);
        assert!(t.imbalance_ratio().is_none());
    }
}
