//! The pure `key → virtual node` mapping.
//!
//! The paper hashes a key to an integer, then takes it modulo the (fixed)
//! virtual-node count. The vnode count "is abstracted as a configurable
//! parameter, however, once it is set, we can not change it unless restart
//! the Sedna cluster" — so [`Partitioner`] is an immutable value created at
//! cluster-configuration time. The paper sizes it as ~100 vnodes per real
//! node at the cluster's maximum size (e.g. 100 000 vnodes for 1 000
//! servers).

use sedna_common::{Key, VNodeId};

/// Immutable key-space partition function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partitioner {
    vnode_count: u32,
}

impl Partitioner {
    /// Creates a partitioner over `vnode_count` virtual nodes.
    ///
    /// # Panics
    /// Panics when `vnode_count` is zero.
    pub fn new(vnode_count: u32) -> Self {
        assert!(vnode_count > 0, "vnode count must be positive");
        Partitioner { vnode_count }
    }

    /// The paper's sizing rule: ~100 virtual nodes per real node at the
    /// cluster's maximum planned size.
    pub fn for_max_nodes(max_nodes: u32) -> Self {
        Partitioner::new(max_nodes.max(1).saturating_mul(100))
    }

    /// Total number of virtual nodes.
    #[inline]
    pub fn vnode_count(&self) -> u32 {
        self.vnode_count
    }

    /// Maps a key to its virtual node: `hash(key) mod vnode_count`.
    #[inline]
    pub fn locate(&self, key: &Key) -> VNodeId {
        VNodeId((key.ring_hash() % self.vnode_count as u64) as u32)
    }

    /// Maps a precomputed key hash to its virtual node. Lets hot paths hash
    /// once and reuse the value for shard choice and placement.
    #[inline]
    pub fn locate_hash(&self, hash: u64) -> VNodeId {
        VNodeId((hash % self.vnode_count as u64) as u32)
    }

    /// Iterates over all vnode ids (for boot-time znode creation and tests).
    pub fn vnodes(&self) -> impl Iterator<Item = VNodeId> {
        (0..self.vnode_count).map(VNodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_is_stable_and_in_range() {
        let p = Partitioner::new(1_000);
        for i in 0..10_000 {
            let key = Key::from(format!("test-{i:014}"));
            let v = p.locate(&key);
            assert!(v.0 < 1_000);
            assert_eq!(v, p.locate(&key), "stable for same key");
            assert_eq!(v, p.locate_hash(key.ring_hash()));
        }
    }

    #[test]
    fn distribution_is_near_uniform() {
        // The paper relies on slices being equal; with a decent hash, 60k
        // paper-style keys over 900 vnodes should put every vnode near the
        // mean (~67) — we allow a generous band.
        let p = Partitioner::new(900);
        let mut counts = vec![0u32; 900];
        for i in 0..60_000 {
            let key = Key::from(format!("test-{i:014}"));
            counts[p.locate(&key).index()] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(min >= 30, "min bucket {min}");
        assert!(max <= 120, "max bucket {max}");
    }

    #[test]
    fn for_max_nodes_uses_paper_rule() {
        assert_eq!(Partitioner::for_max_nodes(1_000).vnode_count(), 100_000);
        assert_eq!(Partitioner::for_max_nodes(9).vnode_count(), 900);
        assert_eq!(Partitioner::for_max_nodes(0).vnode_count(), 100);
    }

    #[test]
    #[should_panic(expected = "vnode count must be positive")]
    fn zero_vnodes_rejected() {
        Partitioner::new(0);
    }

    #[test]
    fn vnodes_iterator_covers_all() {
        let p = Partitioner::new(5);
        let all: Vec<_> = p.vnodes().collect();
        assert_eq!(
            all,
            vec![VNodeId(0), VNodeId(1), VNodeId(2), VNodeId(3), VNodeId(4)]
        );
    }
}
