//! Load-driven rebalancing.
//!
//! Membership changes keep *slot counts* even (see [`crate::assignment`]),
//! but real load is skewed: some vnodes are hotter than others. The paper's
//! answer is the imbalance table — nodes publish per-node load roll-ups,
//! and a management component moves vnodes from hot to cold real nodes.
//! [`plan_rebalance`] is that component's decision procedure: given the
//! assignment, full vnode stats (from the hot node being relieved) and a
//! configuration, it proposes a bounded list of vnode moves.

use sedna_common::{NodeId, VNodeId};

use crate::assignment::{Transfer, VNodeMap};
use crate::stats::{ImbalanceTable, VNodeStats};

/// Tuning for the rebalancer.
#[derive(Clone, Copy, Debug)]
pub struct RebalanceConfig {
    /// Do nothing while `max_score / mean_score` is at or below this.
    pub trigger_ratio: f64,
    /// Upper bound on moves per round, to cap migration traffic.
    pub max_moves: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            trigger_ratio: 1.25,
            max_moves: 16,
        }
    }
}

/// Plans (and applies to `map`) up to `config.max_moves` vnode moves from
/// the hottest node towards the coldest nodes.
///
/// `stats` must be indexed by vnode id (the hot node's local view; in the
/// real system the manager fetches it from the node being relieved).
/// Returns the transfers performed; empty when the cluster is already
/// within `trigger_ratio`.
pub fn plan_rebalance(
    map: &mut VNodeMap,
    table: &ImbalanceTable,
    stats: &[VNodeStats],
    config: &RebalanceConfig,
) -> Vec<Transfer> {
    let mut transfers = Vec::new();
    let Some(ratio) = table.imbalance_ratio() else {
        return transfers;
    };
    if ratio <= config.trigger_ratio {
        return transfers;
    }
    let Some((hot, _)) = table.extremes() else {
        return transfers;
    };

    // Track evolving scores locally so each move sees the updated picture.
    let mut scores: Vec<(NodeId, u64)> = table.rows().map(|(n, l)| (n, l.score)).collect();
    let mean: u64 =
        (scores.iter().map(|(_, s)| s).sum::<u64>() as f64 / scores.len() as f64) as u64;

    // The hot node's vnodes, hottest first.
    let mut owned: Vec<(VNodeId, u64)> = map
        .vnodes_of(hot)
        .into_iter()
        .map(|v| (v, stats.get(v.index()).map_or(0, |s| s.load_score())))
        .collect();
    owned.sort_by_key(|&(v, score)| (std::cmp::Reverse(score), v));

    for (vnode, vscore) in owned {
        if transfers.len() >= config.max_moves {
            break;
        }
        let hot_score = scores
            .iter()
            .find(|(n, _)| *n == hot)
            .map_or(0, |(_, s)| *s);
        if hot_score <= mean {
            break; // relieved enough
        }
        // Don't move a vnode so hot it would just overload the receiver.
        if vscore > hot_score - mean {
            continue;
        }
        // Coldest node that doesn't already hold this vnode.
        let Some(&(cold, cold_score)) = scores
            .iter()
            .filter(|(n, _)| *n != hot && !map.replicas(vnode).contains(n))
            .min_by_key(|(n, s)| (*s, *n))
        else {
            continue;
        };
        // Moving must strictly reduce the pairwise gap.
        if cold_score + vscore >= hot_score {
            continue;
        }
        if let Some(t) = map.move_slot(vnode, hot, cold) {
            transfers.push(t);
            for (n, s) in scores.iter_mut() {
                if *n == hot {
                    *s -= vscore;
                } else if *n == cold {
                    *s += vscore;
                }
            }
        }
    }
    transfers
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a 4-node cluster, 40 vnodes, rf 1 (so load attribution is
    /// crisp), with all the heat on node 0's vnodes.
    fn skewed_setup() -> (VNodeMap, Vec<VNodeStats>) {
        let mut map = VNodeMap::new(40, 1);
        for n in 0..4 {
            map.join(NodeId(n));
        }
        let mut stats = vec![VNodeStats::default(); 40];
        for v in map.vnodes_of(NodeId(0)) {
            stats[v.index()].reads = 1_000;
        }
        for v in map.vnodes_of(NodeId(1)) {
            stats[v.index()].reads = 10;
        }
        (map, stats)
    }

    #[test]
    fn no_moves_when_balanced() {
        let mut map = VNodeMap::new(40, 1);
        for n in 0..4 {
            map.join(NodeId(n));
        }
        let stats = vec![
            VNodeStats {
                reads: 5,
                ..Default::default()
            };
            40
        ];
        let table = ImbalanceTable::compute(&map, &stats);
        let moves = plan_rebalance(&mut map, &table, &stats, &RebalanceConfig::default());
        assert!(moves.is_empty());
    }

    #[test]
    fn hot_node_sheds_vnodes_to_cold_nodes() {
        let (mut map, stats) = skewed_setup();
        let table = ImbalanceTable::compute(&map, &stats);
        assert!(table.imbalance_ratio().unwrap() > 2.0);
        let before_hot = map.vnodes_of(NodeId(0)).len();
        let moves = plan_rebalance(&mut map, &table, &stats, &RebalanceConfig::default());
        assert!(!moves.is_empty(), "skew must trigger moves");
        assert!(map.vnodes_of(NodeId(0)).len() < before_hot);
        for t in &moves {
            assert_eq!(t.copy_from, Some(NodeId(0)));
            assert_ne!(t.to, NodeId(0));
        }
        // Ratio after must improve.
        let after = ImbalanceTable::compute(&map, &stats);
        assert!(after.imbalance_ratio().unwrap() < table.imbalance_ratio().unwrap());
    }

    #[test]
    fn max_moves_caps_migration() {
        let (mut map, stats) = skewed_setup();
        let table = ImbalanceTable::compute(&map, &stats);
        let cfg = RebalanceConfig {
            max_moves: 2,
            ..Default::default()
        };
        let moves = plan_rebalance(&mut map, &table, &stats, &cfg);
        assert!(moves.len() <= 2);
    }

    #[test]
    fn repeated_rounds_converge() {
        let (mut map, stats) = skewed_setup();
        let cfg = RebalanceConfig {
            trigger_ratio: 1.1,
            max_moves: 4,
        };
        let mut rounds = 0;
        loop {
            let table = ImbalanceTable::compute(&map, &stats);
            let moves = plan_rebalance(&mut map, &table, &stats, &cfg);
            if moves.is_empty() {
                break;
            }
            rounds += 1;
            assert!(rounds < 50, "rebalance must terminate");
        }
        let final_ratio = ImbalanceTable::compute(&map, &stats)
            .imbalance_ratio()
            .unwrap();
        assert!(final_ratio < 2.0, "converged ratio {final_ratio}");
    }

    #[test]
    fn empty_stats_is_a_noop() {
        let mut map = VNodeMap::new(4, 1);
        map.join(NodeId(0));
        let table = ImbalanceTable::compute(&map, &[VNodeStats::default(); 4]);
        let moves = plan_rebalance(&mut map, &table, &[], &RebalanceConfig::default());
        assert!(moves.is_empty());
    }
}
