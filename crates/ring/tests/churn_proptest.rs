//! Property tests over the vnode assignment: arbitrary churn sequences
//! (joins, leaves, crashes, load-driven moves) must preserve the
//! structural invariants, keep movement incremental, and roundtrip the
//! codec.

use proptest::prelude::*;
use sedna_common::{NodeId, VNodeId};
use sedna_ring::VNodeMap;

#[derive(Clone, Debug)]
enum Churn {
    Join(u8),
    LeaveGraceful(u8),
    Crash(u8),
    Move { vnode: u16, to: u8 },
}

fn churn_strategy() -> impl Strategy<Value = Churn> {
    prop_oneof![
        (0u8..12).prop_map(Churn::Join),
        (0u8..12).prop_map(Churn::LeaveGraceful),
        (0u8..12).prop_map(Churn::Crash),
        (0u16..60, 0u8..12).prop_map(|(vnode, to)| Churn::Move { vnode, to }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn any_churn_sequence_preserves_invariants(ops in proptest::collection::vec(churn_strategy(), 1..60)) {
        let mut map = VNodeMap::new(60, 3);
        let mut slot_balanced = true;
        for op in ops {
            match op {
                Churn::Join(n) => {
                    // A *real* membership change re-balances; a duplicate
                    // join is a no-op and leaves any prior skew in place.
                    let was = map.is_member(NodeId(n as u32));
                    map.join(NodeId(n as u32));
                    if !was {
                        slot_balanced = true;
                    }
                }
                Churn::LeaveGraceful(n) => {
                    let was = map.is_member(NodeId(n as u32));
                    map.leave(NodeId(n as u32), true);
                    if was {
                        slot_balanced = true;
                    }
                }
                Churn::Crash(n) => {
                    let was = map.is_member(NodeId(n as u32));
                    map.leave(NodeId(n as u32), false);
                    if was {
                        slot_balanced = true;
                    }
                }
                Churn::Move { vnode, to } => {
                    let v = VNodeId(vnode as u32 % 60);
                    let to = NodeId(to as u32);
                    if let Some(from) = map.replicas(v).first().copied() {
                        // A deliberate move may unbalance slot counts.
                        if map.move_slot(v, from, to).is_some() {
                            slot_balanced = false;
                        }
                    }
                }
            }
            map.check_invariants();
            if slot_balanced {
                map.check_slot_balance();
            }
        }
    }

    #[test]
    fn codec_roundtrips_after_any_churn(ops in proptest::collection::vec(churn_strategy(), 1..40)) {
        let mut map = VNodeMap::new(40, 3);
        map.join(NodeId(0));
        for op in ops {
            match op {
                Churn::Join(n) => { map.join(NodeId(n as u32)); }
                Churn::LeaveGraceful(n) => { map.leave(NodeId(n as u32), true); }
                Churn::Crash(n) => { map.leave(NodeId(n as u32), false); }
                Churn::Move { vnode, to } => {
                    let v = VNodeId(vnode as u32 % 40);
                    if let Some(from) = map.replicas(v).first().copied() {
                        let _ = map.move_slot(v, from, NodeId(to as u32));
                    }
                }
            }
        }
        let decoded = VNodeMap::decode(&map.encode());
        prop_assert_eq!(decoded.as_ref(), Some(&map));
    }

    #[test]
    fn join_movement_is_bounded(existing in 2u32..12, vnodes in 30u32..120) {
        // Adding one node to a balanced cluster must move at most
        // ceil(total_slots / (existing + 1)) slots plus a small balancing
        // tail — never a wholesale reshuffle.
        let mut map = VNodeMap::new(vnodes, 3);
        for n in 0..existing {
            map.join(NodeId(n));
        }
        let total_slots = vnodes as usize * 3.min(existing as usize + 1);
        let plan = map.join(NodeId(existing));
        let ideal = total_slots / (existing as usize + 1) + 1;
        prop_assert!(
            plan.len() <= ideal + existing as usize,
            "moved {} slots, ideal ~{} (n={existing}, vnodes={vnodes})",
            plan.len(),
            ideal
        );
    }

    #[test]
    fn leaves_never_lose_coverage_while_members_remain(
        leave_order in proptest::collection::vec(0u32..6, 1..6)
    ) {
        let mut map = VNodeMap::new(30, 3);
        for n in 0..6 {
            map.join(NodeId(n));
        }
        let mut remaining = 6usize;
        for n in leave_order {
            if map.is_member(NodeId(n)) && remaining > 1 {
                map.leave(NodeId(n), false);
                remaining -= 1;
                // Every vnode still has min(3, remaining) distinct owners.
                let want = 3.min(remaining);
                for v in 0..30 {
                    prop_assert_eq!(map.replicas(VNodeId(v)).len(), want);
                }
            }
        }
    }
}
