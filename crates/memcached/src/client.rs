//! The distributed memcached client (client-side hashing).
//!
//! Embeddable protocol driver, like the coordination [`SessionClient`]:
//! the benchmark's closed-loop driver actor owns one, feeds replies in and
//! sends the produced messages out.
//!
//! Replica placement follows common memcached client practice: copy `i` of
//! a key hashes `key ⊕ i` onto the server list, skipping duplicates, so
//! copies land on distinct servers. In `Sequential(k)` mode the operations
//! for the k copies are issued **one after another** — copy `i+1` goes out
//! only when copy `i`'s reply returned — which is precisely how the paper
//! made its Memcached(3) comparison.
//!
//! [`SessionClient`]: ../../sedna_coord/client/struct.SessionClient.html

use sedna_common::hashing::xxhash64;
use sedna_common::{Key, RequestId, Value};
use sedna_net::actor::ActorId;
use std::collections::HashMap;

use crate::messages::McMsg;

/// Replication mode of the client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Replication {
    /// One copy (Fig. 7(b) baseline).
    Single,
    /// `k` copies written/read sequentially (Fig. 7(a) uses 3).
    Sequential(usize),
}

impl Replication {
    fn copies(self) -> usize {
        match self {
            Replication::Single => 1,
            Replication::Sequential(k) => k.max(1),
        }
    }
}

/// Completion events surfaced to the embedding actor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum McEvent {
    /// All copies of a `set` acknowledged.
    SetDone {
        /// The user-visible operation id.
        op: RequestId,
    },
    /// All copies of a `get` replied; `value` is the first copy found.
    GetDone {
        /// The user-visible operation id.
        op: RequestId,
        /// The retrieved value, if any copy had it.
        value: Option<Value>,
    },
}

enum OpKind {
    Set { key: Key, value: Value },
    Get { key: Key, found: Option<Value> },
}

struct InFlight {
    op: RequestId,
    kind: OpKind,
    targets: Vec<ActorId>,
    next_copy: usize,
}

/// Embeddable client state machine.
pub struct McClientCore {
    servers: Vec<ActorId>,
    replication: Replication,
    next_req: RequestId,
    next_op: RequestId,
    in_flight: HashMap<RequestId, InFlight>,
}

impl McClientCore {
    /// Creates a client over `servers`.
    pub fn new(servers: Vec<ActorId>, replication: Replication) -> Self {
        assert!(!servers.is_empty());
        assert!(
            replication.copies() <= servers.len(),
            "more copies than servers"
        );
        McClientCore {
            servers,
            replication,
            next_req: RequestId(1),
            next_op: RequestId(1),
            in_flight: HashMap::new(),
        }
    }

    /// The servers the `copies` of `key` land on: distinct, deterministic.
    pub fn placement(&self, key: &Key) -> Vec<ActorId> {
        let copies = self.replication.copies();
        let mut out = Vec::with_capacity(copies);
        let mut salt = 0u64;
        while out.len() < copies {
            let h = xxhash64(key.as_bytes(), salt);
            let s = self.servers[(h % self.servers.len() as u64) as usize];
            if !out.contains(&s) {
                out.push(s);
            }
            salt += 1;
        }
        out
    }

    fn fresh_req(&mut self) -> RequestId {
        let id = self.next_req;
        self.next_req = self.next_req.next();
        id
    }

    fn fresh_op(&mut self) -> RequestId {
        let id = self.next_op;
        self.next_op = self.next_op.next();
        id
    }

    /// Starts a `set`; returns the op id and the first message to send.
    pub fn set(&mut self, key: Key, value: Value) -> (RequestId, (ActorId, McMsg)) {
        let op = self.fresh_op();
        let targets = self.placement(&key);
        let req = self.fresh_req();
        let first = (
            targets[0],
            McMsg::Set {
                req,
                key: key.clone(),
                value: value.clone(),
            },
        );
        self.in_flight.insert(
            req,
            InFlight {
                op,
                kind: OpKind::Set { key, value },
                targets,
                next_copy: 1,
            },
        );
        (op, first)
    }

    /// Starts a `get`; returns the op id and the first message to send.
    pub fn get(&mut self, key: Key) -> (RequestId, (ActorId, McMsg)) {
        let op = self.fresh_op();
        let targets = self.placement(&key);
        let req = self.fresh_req();
        let first = (
            targets[0],
            McMsg::Get {
                req,
                key: key.clone(),
            },
        );
        self.in_flight.insert(
            req,
            InFlight {
                op,
                kind: OpKind::Get { key, found: None },
                targets,
                next_copy: 1,
            },
        );
        (op, first)
    }

    /// Feeds a reply; returns a completion event and/or the next copy's
    /// message to send (sequential issue).
    pub fn on_message(&mut self, msg: McMsg) -> (Option<McEvent>, Option<(ActorId, McMsg)>) {
        let (req, got_value) = match msg {
            McMsg::SetOk { req } => (req, None),
            McMsg::GetReply { req, value } => (req, value),
            _ => return (None, None),
        };
        let Some(mut fl) = self.in_flight.remove(&req) else {
            return (None, None);
        };
        if let OpKind::Get { found, .. } = &mut fl.kind {
            if found.is_none() {
                *found = got_value;
            }
        }
        if fl.next_copy >= fl.targets.len() {
            // Done with all copies.
            let event = match fl.kind {
                OpKind::Set { .. } => McEvent::SetDone { op: fl.op },
                OpKind::Get { found, .. } => McEvent::GetDone {
                    op: fl.op,
                    value: found,
                },
            };
            return (Some(event), None);
        }
        // Issue the next copy sequentially.
        let target = fl.targets[fl.next_copy];
        fl.next_copy += 1;
        let req = self.fresh_req();
        let msg = match &fl.kind {
            OpKind::Set { key, value } => McMsg::Set {
                req,
                key: key.clone(),
                value: value.clone(),
            },
            OpKind::Get { key, .. } => McMsg::Get {
                req,
                key: key.clone(),
            },
        };
        self.in_flight.insert(req, fl);
        (None, Some((target, msg)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers(n: u32) -> Vec<ActorId> {
        (0..n).map(ActorId).collect()
    }

    #[test]
    fn placement_is_deterministic_and_distinct() {
        let c = McClientCore::new(servers(5), Replication::Sequential(3));
        let p1 = c.placement(&Key::from("some-key"));
        let p2 = c.placement(&Key::from("some-key"));
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 3);
        let mut dedup = p1.clone();
        dedup.dedup();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "distinct servers");
    }

    #[test]
    fn placement_spreads_keys() {
        let c = McClientCore::new(servers(4), Replication::Single);
        let mut counts = [0u32; 4];
        for i in 0..1_000 {
            let p = c.placement(&Key::from(format!("test-{i:015}")));
            counts[p[0].0 as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 150), "{counts:?}");
    }

    #[test]
    fn single_mode_one_message_per_op() {
        let mut c = McClientCore::new(servers(3), Replication::Single);
        let (op, (_, first)) = c.set(Key::from("k"), Value::from("v"));
        let McMsg::Set { req, .. } = first else {
            panic!()
        };
        let (ev, next) = c.on_message(McMsg::SetOk { req });
        assert_eq!(ev, Some(McEvent::SetDone { op }));
        assert!(next.is_none());
    }

    #[test]
    fn sequential_mode_issues_copies_one_at_a_time() {
        let mut c = McClientCore::new(servers(5), Replication::Sequential(3));
        let (op, (t1, m1)) = c.set(Key::from("k"), Value::from("v"));
        let McMsg::Set { req: r1, .. } = m1 else {
            panic!()
        };
        let (ev, next) = c.on_message(McMsg::SetOk { req: r1 });
        assert!(ev.is_none(), "only 1 of 3 copies done");
        let (t2, m2) = next.expect("second copy");
        assert_ne!(t1, t2);
        let McMsg::Set { req: r2, .. } = m2 else {
            panic!()
        };
        let (ev, next) = c.on_message(McMsg::SetOk { req: r2 });
        assert!(ev.is_none());
        let (t3, m3) = next.expect("third copy");
        assert!(t3 != t1 && t3 != t2);
        let McMsg::Set { req: r3, .. } = m3 else {
            panic!()
        };
        let (ev, next) = c.on_message(McMsg::SetOk { req: r3 });
        assert_eq!(ev, Some(McEvent::SetDone { op }));
        assert!(next.is_none());
    }

    #[test]
    fn sequential_get_returns_first_found_value() {
        let mut c = McClientCore::new(servers(5), Replication::Sequential(3));
        let (op, (_, m1)) = c.get(Key::from("k"));
        let McMsg::Get { req: r1, .. } = m1 else {
            panic!()
        };
        let (_, next) = c.on_message(McMsg::GetReply {
            req: r1,
            value: None,
        });
        let (_, m2) = next.unwrap();
        let McMsg::Get { req: r2, .. } = m2 else {
            panic!()
        };
        let (_, next) = c.on_message(McMsg::GetReply {
            req: r2,
            value: Some(Value::from("hit")),
        });
        let (_, m3) = next.unwrap();
        let McMsg::Get { req: r3, .. } = m3 else {
            panic!()
        };
        let (ev, _) = c.on_message(McMsg::GetReply {
            req: r3,
            value: Some(Value::from("other")),
        });
        assert_eq!(
            ev,
            Some(McEvent::GetDone {
                op,
                value: Some(Value::from("hit"))
            }),
            "first hit wins"
        );
    }

    #[test]
    #[should_panic(expected = "more copies than servers")]
    fn more_copies_than_servers_rejected() {
        McClientCore::new(servers(2), Replication::Sequential(3));
    }

    #[test]
    fn unknown_replies_ignored() {
        let mut c = McClientCore::new(servers(2), Replication::Single);
        let (ev, next) = c.on_message(McMsg::SetOk {
            req: RequestId(999),
        });
        assert!(ev.is_none() && next.is_none());
    }
}
