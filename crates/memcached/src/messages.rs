//! Wire protocol of the memcached baseline.

use sedna_common::{Key, RequestId, Value};
use sedna_net::actor::MessageSize;

/// Cache protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum McMsg {
    /// Store a value.
    Set {
        /// Correlation id.
        req: RequestId,
        /// Key.
        key: Key,
        /// Value.
        value: Value,
    },
    /// Ack of a [`McMsg::Set`].
    SetOk {
        /// Correlation id.
        req: RequestId,
    },
    /// Fetch a value.
    Get {
        /// Correlation id.
        req: RequestId,
        /// Key.
        key: Key,
    },
    /// Reply to a [`McMsg::Get`].
    GetReply {
        /// Correlation id.
        req: RequestId,
        /// The value if present.
        value: Option<Value>,
    },
    /// Remove a key.
    Delete {
        /// Correlation id.
        req: RequestId,
        /// Key.
        key: Key,
    },
    /// Reply to a [`McMsg::Delete`].
    DeleteReply {
        /// Correlation id.
        req: RequestId,
        /// Whether the key existed.
        found: bool,
    },
}

impl MessageSize for McMsg {
    fn size_bytes(&self) -> usize {
        const HDR: usize = 24; // memcached text protocol-ish header
        HDR + match self {
            McMsg::Set { key, value, .. } => key.len() + value.len(),
            McMsg::Get { key, .. } | McMsg::Delete { key, .. } => key.len(),
            McMsg::GetReply { value, .. } => value.as_ref().map_or(0, |v| v.len()),
            McMsg::SetOk { .. } | McMsg::DeleteReply { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_track_payloads() {
        let set = McMsg::Set {
            req: RequestId(1),
            key: Key::from("test-000000000000000"),
            value: Value::from_bytes(vec![0u8; 20]),
        };
        assert_eq!(set.size_bytes(), 24 + 40);
        let ok = McMsg::SetOk { req: RequestId(1) };
        assert_eq!(ok.size_bytes(), 24);
    }
}
