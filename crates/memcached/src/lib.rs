//! The evaluation baseline: a memcached-like distributed cache.
//!
//! Sec. VI compares Sedna against Memcached driven by a client that hashes
//! keys to servers client-side. Two client modes reproduce the two
//! comparisons:
//!
//! * **write-once** (`Replication::Single`) — each key lives on exactly one
//!   server (Fig. 7(b));
//! * **sequential ×3** (`Replication::Sequential(3)`) — the client writes
//!   (and reads) every key three times to three different servers, one
//!   request after another ("in Memcached these reads and writes requests
//!   were issued sequentially"), which is Fig. 7(a)'s `Memcached(3)`.
//!
//! The server is an actor over the same [`MemStore`] engine Sedna uses —
//! faithful to the paper, where Sedna's local store *is* a modified
//! memcached, so single-node performance is identical by construction and
//! the experiments measure the distribution strategies.

pub mod client;
pub mod messages;
pub mod server;

pub use client::{McClientCore, McEvent, Replication};
pub use messages::McMsg;
pub use server::McServer;

pub use sedna_memstore::MemStore;
