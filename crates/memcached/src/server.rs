//! The cache server actor.

use sedna_common::time::{Micros, Timestamp};
use sedna_common::{Key, NodeId, Value};
use sedna_memstore::{MemStore, StoreConfig};
use sedna_net::actor::{Actor, ActorId, Ctx, MessageSize, Wrap};

use crate::messages::McMsg;

/// A memcached-like server: get/set/delete over the shared local-store
/// engine, LRU-bounded when a budget is configured.
pub struct McServer<M> {
    store: MemStore,
    origin: NodeId,
    seq: u32,
    /// CPU service time charged per get (µs).
    read_service: Micros,
    /// CPU service time charged per set/delete (µs).
    write_service: Micros,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M> McServer<M>
where
    M: Wrap<McMsg> + MessageSize + Send + 'static,
{
    /// Creates a server with an optional memory budget. Service times match
    /// the Sedna nodes' so comparisons measure distribution strategy, not
    /// engine differences (the paper's local engine *is* the same).
    pub fn new(
        origin: NodeId,
        memory_budget: Option<usize>,
        read_service_micros: Micros,
        write_service_micros: Micros,
    ) -> Self {
        McServer {
            store: MemStore::new(StoreConfig {
                shards: 8,
                memory_budget,
                ..StoreConfig::default()
            }),
            origin,
            seq: 0,
            read_service: read_service_micros,
            write_service: write_service_micros,
            _marker: std::marker::PhantomData,
        }
    }

    /// Read access to the underlying store (tests/metrics).
    pub fn store(&self) -> &MemStore {
        &self.store
    }

    fn set(&mut self, now: Micros, key: &Key, value: Value) {
        // Server-local timestamps: each set supersedes the previous one on
        // this server, which is exactly memcached overwrite semantics.
        self.seq += 1;
        let ts = Timestamp::new(now, self.seq, self.origin);
        self.store.write_latest(key, ts, value);
    }

    fn handle(&mut self, from: ActorId, msg: McMsg, ctx: &mut Ctx<'_, M>) {
        match msg {
            McMsg::Set { req, key, value } => {
                self.set(ctx.now(), &key, value);
                ctx.send(from, M::wrap(McMsg::SetOk { req }));
            }
            McMsg::Get { req, key } => {
                let value = self.store.read_latest(&key).map(|v| v.value);
                ctx.send(from, M::wrap(McMsg::GetReply { req, value }));
            }
            McMsg::Delete { req, key } => {
                let found = self.store.remove(&key).is_some();
                ctx.send(from, M::wrap(McMsg::DeleteReply { req, found }));
            }
            McMsg::SetOk { .. } | McMsg::GetReply { .. } | McMsg::DeleteReply { .. } => {}
        }
    }
}

impl<M> Actor for McServer<M>
where
    M: Wrap<McMsg> + MessageSize + Send + 'static,
{
    type Msg = M;

    fn on_message(&mut self, from: ActorId, msg: M, ctx: &mut Ctx<'_, M>) {
        if let Ok(mc) = msg.unwrap() {
            self.handle(from, mc, ctx);
        }
    }

    fn service_micros(&self, msg: &M) -> Micros {
        match msg.peek() {
            Some(McMsg::Get { .. }) => self.read_service,
            Some(_) => self.write_service,
            None => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_common::RequestId;
    use sedna_net::link::LinkModel;
    use sedna_net::sim::{Sim, SimConfig};

    #[test]
    fn get_set_delete_roundtrip_in_sim() {
        let mut sim: Sim<McMsg> = Sim::new(SimConfig {
            seed: 1,
            link: LinkModel::gigabit_lan(),
            ..SimConfig::default()
        });
        let server = sim.add_actor(Box::new(McServer::<McMsg>::new(NodeId(0), None, 8, 10)));
        sim.start();
        sim.send_external(
            server,
            McMsg::Set {
                req: RequestId(1),
                key: Key::from("k"),
                value: Value::from("v"),
            },
        );
        sim.run_until_idle(1_000);
        sim.send_external(
            server,
            McMsg::Get {
                req: RequestId(2),
                key: Key::from("k"),
            },
        );
        sim.send_external(
            server,
            McMsg::Get {
                req: RequestId(3),
                key: Key::from("nope"),
            },
        );
        sim.run_until_idle(1_000);
        sim.send_external(
            server,
            McMsg::Delete {
                req: RequestId(4),
                key: Key::from("k"),
            },
        );
        sim.run_until_idle(1_000);
        let out = sim.take_external();
        assert_eq!(out.len(), 4);
        assert!(matches!(out[0].1, McMsg::SetOk { req: RequestId(1) }));
        assert!(matches!(
            &out[1].1,
            McMsg::GetReply { req: RequestId(2), value: Some(v) } if *v == Value::from("v")
        ));
        assert!(matches!(
            out[2].1,
            McMsg::GetReply {
                req: RequestId(3),
                value: None
            }
        ));
        assert!(matches!(
            out[3].1,
            McMsg::DeleteReply {
                req: RequestId(4),
                found: true
            }
        ));
    }

    #[test]
    fn overwrites_always_win_locally() {
        let mut sim: Sim<McMsg> = Sim::new(SimConfig {
            seed: 2,
            link: LinkModel::instant(),
            ..SimConfig::default()
        });
        let server = sim.add_actor(Box::new(McServer::<McMsg>::new(NodeId(0), None, 0, 0)));
        sim.start();
        for i in 0..5 {
            sim.send_external(
                server,
                McMsg::Set {
                    req: RequestId(i),
                    key: Key::from("k"),
                    value: Value::from(format!("v{i}")),
                },
            );
        }
        sim.run_until_idle(1_000);
        sim.send_external(
            server,
            McMsg::Get {
                req: RequestId(9),
                key: Key::from("k"),
            },
        );
        sim.run_until_idle(1_000);
        let out = sim.take_external();
        let last = out.last().unwrap();
        assert!(matches!(
            &last.1,
            McMsg::GetReply { value: Some(v), .. } if *v == Value::from("v4")
        ));
    }
}
