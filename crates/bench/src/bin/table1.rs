//! Table I: "Summary of Sedna" — the paper's technique/advantage table.
//!
//! Each row is demonstrated *live* on the actual implementation, with the
//! measurement that justifies the "advantage" column, and a pointer to the
//! test/bench that covers it in depth.

use sedna_common::rng::Xoshiro256;
use sedna_common::{CausalContext, Key, NodeId};
use sedna_core::cluster::SimCluster;
use sedna_core::config::ClusterConfig;
use sedna_core::node::SednaNode;
use sedna_net::link::LinkModel;
use sedna_replication::QuorumConfig;
use sedna_ring::VNodeMap;
use sedna_workload::PaperWorkload;

fn main() {
    println!("# Table I — Summary of Sedna: live demonstrations\n");

    // ---- Partitioning: consistent hashing → incremental scalability -----
    let mut map = VNodeMap::new(900, 3);
    for n in 0..9 {
        map.join(NodeId(n));
    }
    let before: u32 = map.load(NodeId(0));
    let moved = map.join(NodeId(9)).len();
    let total_slots = 900 * 3;
    println!("[Partitioning] consistent hashing with virtual nodes");
    println!("  9-node cluster: {before} slots/node; adding a 10th moved only");
    println!(
        "  {moved} of {total_slots} slots ({:.1}%) — incremental scalability.",
        100.0 * moved as f64 / total_slots as f64
    );
    println!("  covered by: sedna-ring assignment tests\n");

    // ---- Replication: eventual consistency via quorum --------------------
    println!("[Replication] quorum R+W>N, W>N/2 — higher R/W speed, flexible policy");
    let mut valid = 0;
    for n in 1..=5 {
        for r in 1..=n {
            for w in 1..=n {
                if QuorumConfig::new(n, r, w).is_ok() {
                    valid += 1;
                }
            }
        }
    }
    println!(
        "  paper default N=3 R=2 W=2 valid: {}",
        QuorumConfig::new(3, 2, 2).is_ok()
    );
    println!("  {valid} valid (N,R,W) policies for N ≤ 5 — see quorum_sweep for their cost.");
    println!("  covered by: sedna-replication tests, bench quorum_sweep\n");

    // ---- Node management: ZooKeeper sub-cluster ---------------------------
    println!("[Node management] coordination sub-cluster — no single point of failure");
    let mut cluster = SimCluster::build(ClusterConfig::small(), 1, LinkModel::gigabit_lan());
    cluster.run_until_ready(30_000_000);
    let t0 = cluster.sim.now();
    // Kill the current coordination leader; measure until a new one leads.
    let leader = (0..3)
        .map(|i| cluster.config.coord_actor(i))
        .find(|&a| {
            cluster
                .sim
                .actor_ref::<sedna_coord::replica::CoordReplica<sedna_core::messages::SednaMsg>>(a)
                .is_some_and(|r| r.is_leader())
        })
        .expect("leader");
    cluster.sim.set_down(leader, true);
    let mut t = t0;
    loop {
        t += 50_000;
        cluster.sim.run_until(t);
        let new_leader = (0..3).map(|i| cluster.config.coord_actor(i)).any(|a| {
            a != leader
                && cluster
                    .sim
                    .actor_ref::<sedna_coord::replica::CoordReplica<sedna_core::messages::SednaMsg>>(a)
                    .is_some_and(|r| r.is_leader())
        });
        if new_leader {
            break;
        }
        assert!(t - t0 < 10_000_000, "failover too slow");
    }
    println!(
        "  killed the ensemble leader; a survivor took over after {:.0} ms.",
        (t - t0) as f64 / 1_000.0
    );
    println!("  covered by: sedna-coord ensemble tests\n");

    // ---- Read & write: lock-free timestamped writes ----------------------
    println!("[Read&Write] timestamped lock-free writes — speed and low latency");
    let store = sedna_memstore::MemStore::new(sedna_memstore::StoreConfig::default());
    let w = PaperWorkload::new();
    let mut rng = Xoshiro256::seeded(1);
    let started = std::time::Instant::now();
    let ops = 200_000u64;
    for i in 0..ops {
        let key = w.key(rng.next_below(10_000));
        store.write_latest(
            &key,
            sedna_common::Timestamp::new(i, 0, NodeId(0)),
            w.value(),
        );
    }
    let rate = ops as f64 / started.elapsed().as_secs_f64() / 1.0e6;
    println!("  single-thread local engine: {rate:.2} M writes/s (no locks held across ops)");
    println!("  covered by: sedna-memstore tests + criterion micro bench\n");

    // ---- Failure detection ------------------------------------------------
    println!("[Failure detection] heartbeats + ephemeral znodes — fast, passive");
    let victim = NodeId(0);
    cluster.crash_node(victim);
    let t0 = cluster.sim.now();
    let mut t = t0;
    loop {
        t += 100_000;
        cluster.sim.run_until(t);
        let evicted = (1..3).all(|n| {
            cluster
                .sim
                .actor_ref::<SednaNode>(cluster.config.node_actor(NodeId(n)))
                .and_then(|x| x.ring())
                .is_some_and(|r| !r.is_member(victim))
        });
        if evicted {
            break;
        }
        assert!(t - t0 < 20_000_000, "detection too slow");
    }
    println!(
        "  crashed a data node; survivors' routing dropped it after {:.1} s",
        (t - t0) as f64 / 1.0e6
    );
    println!("  (session timeout 1 s + sweep + remap + lease refresh).");
    println!("  covered by: sedna-core cluster_sim tests\n");

    // ---- Persistency -------------------------------------------------------
    println!("[Persistency] periodic flush or write-ahead log, per user choice");
    let dir = std::env::temp_dir().join(format!("sedna-table1-{}", std::process::id()));
    let engine = sedna_persist::PersistEngine::new(
        &dir,
        sedna_persist::PersistMode::WriteAhead {
            snapshot_interval_micros: 1_000_000,
        },
    )
    .unwrap();
    let s2 = sedna_memstore::MemStore::new(sedna_memstore::StoreConfig::default());
    for i in 0..1_000u64 {
        let key = w.key(i);
        let ts = sedna_common::Timestamp::new(i + 1, 0, NodeId(0));
        s2.write_latest(&key, ts, w.value());
        engine
            .note_write(&key, ts, &w.value(), &CausalContext::EMPTY, true)
            .unwrap();
    }
    let fresh = sedna_memstore::MemStore::new(sedna_memstore::StoreConfig::default());
    let (rows, replayed) = engine.recover(&fresh).unwrap();
    println!(
        "  1000 writes through the WAL; crash-recovery replayed {replayed} records \
         (+{rows} snapshot rows) and restored {} keys.",
        fresh.len()
    );
    println!("  covered by: sedna-persist tests");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = Key::from("unused");
}
