//! Figure 7(a): W/R speed, Sedna vs Memcached(3).
//!
//! Paper setup (Sec. VI-A): one client, 9 servers, 20 B keys / 20 B
//! constant values; Sedna writes each pair to 3 real nodes *in parallel*
//! (quorum W=2), while the Memcached client writes/reads each pair 3 times
//! *sequentially* to 3 servers. The paper's result: Sedna beats
//! Memcached(3) on both writes and reads.
//!
//! Output: one row per operation count (the paper sweeps 0–60 000),
//! completion time in milliseconds of virtual time.

use sedna_bench::runs::{ms, run_memcached_load, run_sedna_load};
use sedna_core::config::ClusterConfig;
use sedna_memcached::client::Replication;

fn main() {
    let seed = 0x5_ED_AA;
    let cfg = ClusterConfig::paper();
    println!("# Figure 7(a) — W/R speed: Sedna vs Memcached(3) (sequential triple copies)");
    println!("# cluster: 9 data nodes + 3 coord, 1 GbE model, 1 client, N=3 R=2 W=2");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "ops", "sedna_w_ms", "sedna_r_ms", "mc3_w_ms", "mc3_r_ms"
    );
    let mut rows = Vec::new();
    for ops in [10_000u64, 20_000, 30_000, 40_000, 50_000, 60_000] {
        let sedna = run_sedna_load(cfg.clone(), 1, ops, seed);
        let mc3 = run_memcached_load(
            9,
            1,
            ops,
            Replication::Sequential(3),
            cfg.read_service_micros,
            cfg.write_service_micros,
            seed,
        );
        assert_eq!(sedna.errors, 0, "sedna run errored");
        assert_eq!(mc3.errors, 0, "memcached run errored");
        println!(
            "{:>8} {:>14} {:>14} {:>14} {:>14}",
            ops,
            ms(sedna.write_micros),
            ms(sedna.read_micros),
            ms(mc3.write_micros),
            ms(mc3.read_micros)
        );
        rows.push((ops, sedna, mc3));
    }
    let (_, s, m) = rows.last().unwrap();
    println!("#");
    println!(
        "# shape check @60k: sedna writes {:.2}x faster than memcached(3) writes (paper: faster)",
        m.write_micros as f64 / s.write_micros as f64
    );
    println!(
        "# shape check @60k: sedna reads  {:.2}x faster than memcached(3) reads  (paper: faster)",
        m.read_micros as f64 / s.read_micros as f64
    );
    let first = &rows[0];
    println!(
        "# linearity: sedna write time grows {:.2}x from 10k to 60k ops (paper: linear, ~6x)",
        s.write_micros as f64 / first.1.write_micros as f64
    );
}
