//! Ablation: anti-entropy replica synchronization (extension beyond the
//! paper, which relies on read recovery alone).
//!
//! Measures, on a 3-node / rf-3 cluster:
//!
//! 1. **Convergence time** — how long after injected divergence (a value
//!    present on one replica only, never read) until all replicas agree,
//!    as a function of the sync interval;
//! 2. **Idle overhead** — digest-probe messages per simulated minute on a
//!    clean cluster, the price of that convergence bound.
//!
//! The paper's lazy read recovery repairs a diverged key only when some
//! client reads it; anti-entropy bounds staleness for *unread* data.

use sedna_common::{Key, NodeId, Timestamp, Value};
use sedna_core::cluster::SimCluster;
use sedna_core::config::ClusterConfig;
use sedna_net::link::LinkModel;
use sedna_ring::Partitioner;

fn build(sync_interval_micros: u64, seed: u64) -> SimCluster {
    let cfg = ClusterConfig {
        data_nodes: 3,
        partitioner: Partitioner::new(30),
        sync_interval_micros,
        ..ClusterConfig::small()
    };
    let mut cluster = SimCluster::build(cfg, seed, LinkModel::gigabit_lan());
    cluster.run_until_ready(30_000_000);
    cluster
}

fn converged(cluster: &SimCluster, key: &Key) -> bool {
    (0..3).all(|n| cluster.node(NodeId(n)).store().contains(key))
}

fn main() {
    println!("# anti_entropy — extension ablation (paper baseline: read recovery only)");
    println!("\n[1] convergence time of an unread diverged key");
    println!("{:>16} {:>18}", "sync_interval_ms", "converged_after_ms");
    for interval in [100_000u64, 300_000, 1_000_000, 3_000_000] {
        let mut cluster = build(interval, 61);
        let key = Key::from("diverged-unread");
        let ts = Timestamp::new(1, 0, NodeId(1_000));
        cluster
            .node(NodeId(0))
            .store()
            .write_latest(&key, ts, Value::from("x"));
        let injected_at = cluster.sim.now();
        let mut t = injected_at;
        while !converged(&cluster, &key) {
            t += 100_000;
            cluster.sim.run_until(t);
            assert!(
                t - injected_at < 600_000_000,
                "never converged at interval {interval}"
            );
        }
        println!(
            "{:>16} {:>18.1}",
            interval / 1_000,
            (cluster.sim.now() - injected_at) as f64 / 1_000.0
        );
    }
    println!("# paper baseline (sync disabled): never — until some client reads the key.");

    println!("\n[2] idle overhead: digest probes on a clean cluster, per simulated minute");
    println!(
        "{:>16} {:>14} {:>16}",
        "sync_interval_ms", "probes/min", "exchanges/min"
    );
    for interval in [100_000u64, 300_000, 1_000_000, 3_000_000] {
        let mut cluster = build(interval, 62);
        let start_probes: u64 = (0..3)
            .map(|n| cluster.node(NodeId(n)).stats().sync_probes)
            .sum();
        cluster.sim.run_until(cluster.sim.now() + 60_000_000);
        let probes: u64 = (0..3)
            .map(|n| cluster.node(NodeId(n)).stats().sync_probes)
            .sum::<u64>()
            - start_probes;
        let exchanges: u64 = (0..3)
            .map(|n| cluster.node(NodeId(n)).stats().sync_exchanges)
            .sum();
        println!("{:>16} {:>14} {:>16}", interval / 1_000, probes, exchanges);
    }
    println!("# clean replicas exchange digests only (two 48-byte messages per probe);");
    println!("# rows ship exclusively on divergence.");
}
