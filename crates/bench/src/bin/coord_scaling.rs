//! Section III-E claims about the coordination service, measured:
//!
//! 1. **Boot-time znode creation** — "lots of creation operations will take
//!    a long time when the virtual nodes number is large, but it only
//!    happens once": bulk-create one znode per vnode and time it.
//! 2. **Set latency** — "writes in ZooKeeper is much faster (in
//!    milliseconds) than the frequency of new nodes join".
//! 3. **Watch storm (ablation)** — the reason Sedna avoids watches: "if
//!    there are many nodes watching the same znode, any change will result
//!    in an uncontrollable network storm". We register N watchers and count
//!    the messages one change triggers.
//! 4. **Adaptive lease** — the alternative Sedna uses: read traffic under a
//!    busy vs quiet workload, showing the lease halving/doubling at work.

use sedna_common::{RequestId, SessionId};
use sedna_coord::client::{LeaseCache, LeaseConfig};
use sedna_coord::messages::{CoordMsg, CoordOp, CoordReply, EnsembleConfig};
use sedna_coord::replica::CoordReplica;
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_net::link::LinkModel;
use sedna_net::sim::{Sim, SimConfig};

/// Minimal scripted client (mirrors the one in the coord tests).
struct Script {
    replicas: Vec<ActorId>,
    script: Vec<CoordOp>,
    cursor: usize,
    session: Option<SessionId>,
    next_req: u64,
    pub replies: Vec<(u64, Result<CoordReply, sedna_coord::messages::CoordError>)>,
    pub reply_times: Vec<u64>,
    pub watch_events: u64,
}

impl Script {
    fn new(replicas: Vec<ActorId>, script: Vec<CoordOp>) -> Self {
        Script {
            replicas,
            script,
            cursor: 0,
            session: None,
            next_req: 0,
            replies: Vec::new(),
            reply_times: Vec::new(),
            watch_events: 0,
        }
    }

    fn send_next(&mut self, ctx: &mut Ctx<'_, CoordMsg>) {
        if self.cursor >= self.script.len() {
            return;
        }
        let op = self.script[self.cursor].clone();
        self.cursor += 1;
        self.next_req += 1;
        ctx.send(
            self.replicas[0],
            CoordMsg::Request {
                session: self.session.unwrap_or(SessionId(0)),
                req_id: RequestId(self.next_req),
                op,
            },
        );
    }
}

impl Actor for Script {
    type Msg = CoordMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, CoordMsg>) {
        ctx.set_timer(TimerToken(1), 500_000);
    }

    fn on_message(&mut self, _from: ActorId, msg: CoordMsg, ctx: &mut Ctx<'_, CoordMsg>) {
        match msg {
            CoordMsg::Response { req_id, result } => {
                if self.session.is_none() {
                    if let Ok(CoordReply::SessionOpened(sid)) = result {
                        self.session = Some(sid);
                        self.send_next(ctx);
                        return;
                    }
                }
                self.replies.push((req_id.0, result));
                self.reply_times.push(ctx.now());
                self.send_next(ctx);
            }
            CoordMsg::WatchEvent { .. } => self.watch_events += 1,
            _ => {}
        }
    }

    fn on_timer(&mut self, _t: TimerToken, ctx: &mut Ctx<'_, CoordMsg>) {
        self.next_req += 1;
        ctx.send(
            self.replicas[0],
            CoordMsg::Request {
                session: SessionId(0),
                req_id: RequestId(self.next_req),
                op: CoordOp::OpenSession,
            },
        );
    }
}

fn build(seed: u64) -> (Sim<CoordMsg>, Vec<ActorId>) {
    let mut sim = Sim::new(SimConfig {
        seed,
        link: LinkModel::gigabit_lan(),
        ..SimConfig::default()
    });
    let ids: Vec<ActorId> = (0..3).map(ActorId).collect();
    let cfg = EnsembleConfig::lan(ids.clone());
    for i in 0..3 {
        sim.add_actor(Box::new(CoordReplica::<CoordMsg>::new(cfg.clone(), i)));
    }
    (sim, ids)
}

fn main() {
    // ---- 1. boot-time bulk creation --------------------------------------
    println!("# coord_scaling — Sec. III-E measurements\n");
    println!("[1] boot-time creation of one znode per virtual node (one-off)");
    println!("{:>10} {:>14} {:>16}", "vnodes", "boot_ms", "znodes/s");
    for vnodes in [1_000u64, 10_000, 50_000, 100_000] {
        let (mut sim, ids) = build(1);
        let nodes: Vec<(String, Vec<u8>)> = std::iter::once(("/v".to_string(), vec![]))
            .chain((0..vnodes).map(|i| (format!("/v/{i}"), vec![0u8; 16])))
            .collect();
        let client = sim.add_actor(Box::new(Script::new(
            ids,
            vec![CoordOp::CreateMany { nodes }],
        )));
        let started = 500_000; // session open fires at 0.5 s
        sim.run_until(600_000_000);
        let c = sim.actor_ref::<Script>(client).unwrap();
        assert_eq!(c.replies.len(), 1, "bulk create finished");
        let took = c.reply_times[0].saturating_sub(started);
        println!(
            "{:>10} {:>14.1} {:>16.0}",
            vnodes,
            took as f64 / 1_000.0,
            vnodes as f64 / (took as f64 / 1.0e6)
        );
    }

    // ---- 2. set latency ----------------------------------------------------
    println!("\n[2] znode set latency (what a node join/leave costs)");
    let (mut sim, ids) = build(2);
    let mut script = vec![CoordOp::Create {
        path: "/ring".into(),
        data: vec![0; 512],
        ephemeral: false,
    }];
    for _ in 0..100 {
        script.push(CoordOp::Set {
            path: "/ring".into(),
            data: vec![0; 512],
            expected_version: None,
        });
    }
    let client = sim.add_actor(Box::new(Script::new(ids, script)));
    sim.run_until(20_000_000);
    let c = sim.actor_ref::<Script>(client).unwrap();
    // Percentiles via the shared obs histogram, not ad-hoc sort-and-index.
    let lat = sedna_obs::Histogram::new();
    for w in c.reply_times.windows(2) {
        lat.record(w[1] - w[0]);
    }
    println!(
        "  100 sets of a 512 B ring znode: p50 {:.2} ms, p99 {:.2} ms (paper: \"in milliseconds\")",
        lat.percentile(0.50) as f64 / 1_000.0,
        lat.percentile(0.99) as f64 / 1_000.0
    );

    // ---- 3. watch storm ablation -------------------------------------------
    println!("\n[3] watch-storm ablation — why Sedna does NOT use watches");
    println!(
        "{:>10} {:>18} {:>22}",
        "watchers", "msgs_per_change", "watch_events_fired"
    );
    for watchers in [10u32, 100, 1_000] {
        let (mut sim, ids) = build(3);
        // `watchers` clients each Get the same znode with watch=true, then
        // one writer changes it once.
        let mut clients = Vec::new();
        let setup = sim.add_actor(Box::new(Script::new(
            ids.clone(),
            vec![CoordOp::Create {
                path: "/hot".into(),
                data: vec![1],
                ephemeral: false,
            }],
        )));
        sim.run_until(2_000_000);
        assert_eq!(sim.actor_ref::<Script>(setup).unwrap().replies.len(), 1);
        for _ in 0..watchers {
            clients.push(sim.add_actor(Box::new(Script::new(
                ids.clone(),
                vec![CoordOp::Get {
                    path: "/hot".into(),
                    watch: true,
                }],
            ))));
        }
        sim.run_until(sim.now() + 3_000_000);
        let before = sim.stats().messages_sent;
        let writer = sim.add_actor(Box::new(Script::new(
            ids.clone(),
            vec![CoordOp::Set {
                path: "/hot".into(),
                data: vec![2],
                expected_version: None,
            }],
        )));
        sim.run_until(sim.now() + 3_000_000);
        let _ = writer;
        let after = sim.stats().messages_sent;
        let fired: u64 = clients
            .iter()
            .map(|&c| sim.actor_ref::<Script>(c).unwrap().watch_events)
            .sum();
        println!("{:>10} {:>18} {:>22}", watchers, after - before, fired);
    }
    println!("  one change fans out to every watcher: O(watchers) messages — the storm.");

    // ---- 4. adaptive lease --------------------------------------------------
    println!("\n[4] adaptive lease (the storm-free alternative Sedna uses)");
    let mut lease = LeaseCache::new(LeaseConfig {
        initial_micros: 200_000,
        min_micros: 25_000,
        max_micros: 3_200_000,
    });
    print!("  busy windows : ");
    for _ in 0..6 {
        lease.adapt(true);
        print!("{}ms ", lease.lease_micros() / 1_000);
    }
    println!("(halves to the floor — fresher reads when things change)");
    print!("  quiet windows: ");
    for _ in 0..8 {
        lease.adapt(false);
        print!("{}ms ", lease.lease_micros() / 1_000);
    }
    println!("(doubles to the cap — near-zero idle read load)");
    println!(
        "  at the 3.2 s cap a 1000-node cluster costs the ensemble only ~{:.0} reads/s total.",
        1_000.0 / 3.2
    );
}
