//! Ablation: the quorum policy space (Table I's "flexible policy").
//!
//! Sweeps every valid (N, R, W) for N ∈ {1, 3, 5} over the simulated
//! cluster and reports write/read completion times, quantifying the
//! consistency/latency trade-off the paper leaves implicit.

use sedna_bench::runs::{ms, run_sedna_load};
use sedna_core::config::ClusterConfig;
use sedna_replication::QuorumConfig;

fn main() {
    println!("# quorum_sweep — W/R completion time of 5k ops for each valid (N,R,W)");
    println!(
        "{:>4} {:>4} {:>4} {:>12} {:>12}",
        "N", "R", "W", "write_ms", "read_ms"
    );
    let ops = 5_000;
    for n in [1usize, 3, 5] {
        for r in 1..=n {
            for w in 1..=n {
                let Ok(q) = QuorumConfig::new(n, r, w) else {
                    continue;
                };
                let cfg = ClusterConfig {
                    quorum: q,
                    ..ClusterConfig::paper()
                };
                let res = run_sedna_load(cfg, 1, ops, 0x5_ED_AF);
                assert_eq!(res.errors, 0, "N={n} R={r} W={w} errored");
                println!(
                    "{:>4} {:>4} {:>4} {:>12} {:>12}",
                    n,
                    r,
                    w,
                    ms(res.write_micros),
                    ms(res.read_micros)
                );
            }
        }
    }
    println!("#");
    println!("# reading the table: higher W ⇒ slower writes (wait for more acks);");
    println!("# higher R ⇒ slower reads; N=1 is the memcached-like lower bound;");
    println!("# the paper's N=3,R=2,W=2 buys full replication for a modest premium.");
}
