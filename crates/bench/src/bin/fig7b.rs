//! Figure 7(b): W/R speed, Sedna vs Memcached(1).
//!
//! Same setup as Fig. 7(a), but the Memcached client writes/reads each pair
//! only once. The paper's result: "Sedna performance is quite stable, and
//! slightly slower than original write-once Memcached performance" — the
//! price of three parallel replicas and the W=2 quorum wait versus a single
//! unreplicated copy.

use sedna_bench::runs::{ms, run_memcached_load, run_sedna_load};
use sedna_core::config::ClusterConfig;
use sedna_memcached::client::Replication;

fn main() {
    let seed = 0x5_ED_AB;
    let cfg = ClusterConfig::paper();
    println!("# Figure 7(b) — W/R speed: Sedna vs Memcached(1) (single copy)");
    println!("# cluster: 9 data nodes + 3 coord, 1 GbE model, 1 client, N=3 R=2 W=2");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "ops", "sedna_w_ms", "sedna_r_ms", "mc1_w_ms", "mc1_r_ms"
    );
    let mut rows = Vec::new();
    for ops in [10_000u64, 20_000, 30_000, 40_000, 50_000, 60_000] {
        let sedna = run_sedna_load(cfg.clone(), 1, ops, seed);
        let mc1 = run_memcached_load(
            9,
            1,
            ops,
            Replication::Single,
            cfg.read_service_micros,
            cfg.write_service_micros,
            seed,
        );
        assert_eq!(sedna.errors, 0);
        assert_eq!(mc1.errors, 0);
        println!(
            "{:>8} {:>14} {:>14} {:>14} {:>14}",
            ops,
            ms(sedna.write_micros),
            ms(sedna.read_micros),
            ms(mc1.write_micros),
            ms(mc1.read_micros)
        );
        rows.push((ops, sedna, mc1));
    }
    let (_, s, m) = rows.last().unwrap();
    println!("#");
    println!(
        "# shape check @60k: sedna writes are {:.3}x the time of memcached(1) writes \
         (paper: slightly slower, i.e. ratio a little above 1)",
        s.write_micros as f64 / m.write_micros as f64
    );
    println!(
        "# shape check @60k: sedna reads are {:.3}x the time of memcached(1) reads",
        s.read_micros as f64 / m.read_micros as f64
    );
}
