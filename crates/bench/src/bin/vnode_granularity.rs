//! Ablation: how many virtual nodes per real node? (Sec. III-B sizes ~100.)
//!
//! Sweeps the vnode count and reports (a) key balance across 9 nodes for
//! the paper's 60k-key workload, and (b) movement on a 10th node's join —
//! the two forces the vnode count trades off (too few ⇒ imbalance; the
//! paper also notes boot-time znode cost grows with the count, measured in
//! `coord_scaling`).

use sedna_common::NodeId;
use sedna_ring::{Partitioner, VNodeMap};
use sedna_workload::PaperWorkload;

fn main() {
    println!("# vnode_granularity — balance and movement vs vnodes-per-node (9 nodes, 60k keys)");
    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>14}",
        "vnodes/node", "min_keys", "max_keys", "max/mean", "join_moved_%"
    );
    let w = PaperWorkload::new();
    for per_node in [1u32, 3, 10, 30, 100, 300] {
        let vnodes = per_node * 9;
        let part = Partitioner::new(vnodes);
        let mut map = VNodeMap::new(vnodes, 3);
        for n in 0..9 {
            map.join(NodeId(n));
        }
        // Key balance: count keys whose *primary* lands on each node.
        let mut counts = [0u64; 9];
        for i in 0..60_000 {
            let v = part.locate(&w.key(i));
            let primary = map.primary(v).unwrap();
            counts[primary.index()] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        let mean = 60_000.0 / 9.0;
        // Movement on join.
        let mut map2 = map.clone();
        let moved = map2.join(NodeId(9)).len();
        let total_slots = (vnodes * 3) as f64;
        println!(
            "{:>14} {:>12} {:>12} {:>12.3} {:>14.1}",
            per_node,
            min,
            max,
            max as f64 / mean,
            100.0 * moved as f64 / total_slots
        );
    }
    println!("#");
    println!("# few vnodes ⇒ coarse slices ⇒ primary-key imbalance; ~100/node (the");
    println!("# paper's choice) flattens max/mean toward 1 while keeping join movement");
    println!("# near the ideal 1/10 of slots. Boot cost of more vnodes: see coord_scaling.");
}
