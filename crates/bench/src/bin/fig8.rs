//! Figure 8: R/W speed, nine clients vs one client (Sedna only).
//!
//! Paper: "nine clients begin to issue the read/write requests nearly at
//! the same time … the I/O performance indeed reduce when there are more
//! concurrent read/write clients. However … the overall throughput is
//! larger than one client." Contention comes from each write landing on 3
//! replicas and from per-server CPU/network queueing — both present in the
//! simulator's single-server CPU model.

use sedna_bench::runs::{ms, run_sedna_load};
use sedna_core::config::ClusterConfig;

fn main() {
    let seed = 0x5_ED_AC;
    let cfg = ClusterConfig::paper();
    println!("# Figure 8 — R/W speed, nine clients vs one client (Sedna)");
    println!("# per-client completion time of the same per-client op count");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "ops", "c1_w_ms", "c1_r_ms", "c9_w_ms", "c9_r_ms", "c9_w_kops/s", "c1_w_kops/s"
    );
    let mut last = None;
    for ops in [10_000u64, 20_000, 30_000, 40_000, 50_000, 60_000] {
        let one = run_sedna_load(cfg.clone(), 1, ops, seed);
        let nine = run_sedna_load(cfg.clone(), 9, ops, seed);
        assert_eq!(one.errors, 0);
        assert_eq!(nine.errors, 0);
        let thr1 = ops as f64 / one.write_micros as f64 * 1_000.0;
        let thr9 = 9.0 * ops as f64 / nine.write_micros as f64 * 1_000.0;
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12} {:>14.1} {:>14.1}",
            ops,
            ms(one.write_micros),
            ms(one.read_micros),
            ms(nine.write_micros),
            ms(nine.read_micros),
            thr9,
            thr1
        );
        last = Some((one, nine, thr1, thr9));
    }
    let (one, nine, thr1, thr9) = last.unwrap();
    println!("#");
    println!(
        "# shape check @60k: per-client writes are {:.2}x slower with nine clients (paper: slower)",
        nine.write_micros as f64 / one.write_micros as f64
    );
    println!(
        "# shape check @60k: aggregate write throughput is {:.2}x higher with nine clients (paper: higher)",
        thr9 / thr1
    );
}
