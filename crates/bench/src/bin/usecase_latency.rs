//! Section V use case: the micro-blogging realtime search engine.
//!
//! The paper's freshness claim is steps (1)–(7) of Fig. 6: "As a realtime
//! search engine, the time between (1) and (7) should be less than several
//! minutes." We measure exactly that interval on the simulated cluster:
//! a crawler writes tweets (`write_all`, step 3), the indexer trigger job
//! parses and writes inverted-index entries (steps 4–5), and a query
//! client polls the index until the tweet is queryable (steps 6–7).

use sedna_common::{Key, KeyPath, NodeId, Value};
use sedna_core::client::{ClientCore, ClientEvent};
use sedna_core::cluster::SimCluster;
use sedna_core::config::ClusterConfig;
use sedna_core::messages::{ClientResult, SednaMsg};
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_net::link::LinkModel;
use sedna_obs::{HistSnapshot, Histogram};
use sedna_triggers::{Emits, FnAction, JobSpec, MonitorScope};
use sedna_workload::tweets::{StreamEvent, TweetStream};

const T_TICK: TimerToken = TimerToken(1);
const T_FEED: TimerToken = TimerToken(2);
const T_POLL: TimerToken = TimerToken(3);

/// Crawler + query client: writes one tweet at a time, then polls the
/// inverted index until the tweet's first word resolves to its id,
/// recording the write→queryable latency. Repeats for `samples` tweets.
struct SearchProbe {
    core: ClientCore,
    stream: TweetStream,
    samples: usize,
    /// (tweet id, first word) awaiting indexing.
    current: Option<(u64, String, u64)>, // (id, word, written_at)
    poll_op: Option<u64>,
    pub latencies: Vec<u64>,
}

impl SearchProbe {
    fn new(cfg: ClusterConfig, samples: usize) -> Self {
        SearchProbe {
            core: ClientCore::new(cfg, NodeId(1_000)),
            stream: TweetStream::new(7, 500).with_follow_ratio(0.0),
            samples,
            current: None,
            poll_op: None,
            latencies: Vec::new(),
        }
    }

    fn feed_next(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        if self.latencies.len() >= self.samples {
            return;
        }
        let StreamEvent::Tweet(t) = self.stream.next_event() else {
            return;
        };
        let word = t.text.split(' ').next().unwrap_or("x").to_string();
        let key = KeyPath::new("tweets", "messages", format!("m{}", t.id))
            .unwrap()
            .encode();
        let now = ctx.now();
        if let Some((_, out)) = self.core.write_all(&key, Value::from(t.text.clone()), now) {
            self.current = Some((t.id, word, now));
            for (to, m) in out {
                ctx.send(to, m);
            }
        }
    }

    fn poll_index(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        let Some((id, word, _)) = &self.current else {
            return;
        };
        if self.poll_op.is_some() {
            return;
        }
        let key = KeyPath::new("tweets", "index", format!("{word}-{id}"))
            .unwrap()
            .encode();
        let now = ctx.now();
        if let Some((op, out)) = self.core.read_latest(&key, now) {
            self.poll_op = Some(op);
            for (to, m) in out {
                ctx.send(to, m);
            }
        }
    }

    fn pump(&mut self, events: Vec<ClientEvent>, ctx: &mut Ctx<'_, SednaMsg>) {
        for ev in events {
            match ev {
                ClientEvent::Ready => {
                    self.feed_next(ctx);
                    ctx.set_timer(T_POLL, 2_000);
                }
                ClientEvent::Done { op_id, result } => {
                    if Some(op_id) == self.poll_op {
                        self.poll_op = None;
                        if let ClientResult::Latest(Some(_)) = result {
                            // Queryable: record (1)→(7) latency.
                            let (_, _, written_at) = self.current.take().unwrap();
                            self.latencies.push(ctx.now() - written_at);
                            if self.latencies.len() >= self.samples {
                                ctx.halt();
                                return;
                            }
                            self.feed_next(ctx);
                        }
                    }
                }
            }
        }
    }
}

impl Actor for SearchProbe {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        for (to, m) in self.core.bootstrap() {
            ctx.send(to, m);
        }
        ctx.set_timer(T_TICK, 10_000);
        let _ = T_FEED;
    }

    fn on_message(&mut self, from: ActorId, msg: SednaMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        let (events, out) = self.core.on_message(from, msg, now);
        for (to, m) in out {
            ctx.send(to, m);
        }
        self.pump(events, ctx);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        match token {
            T_TICK => {
                let (events, out) = self.core.on_tick(ctx.now());
                for (to, m) in out {
                    ctx.send(to, m);
                }
                self.pump(events, ctx);
                ctx.set_timer(T_TICK, 10_000);
            }
            T_POLL => {
                self.poll_index(ctx);
                ctx.set_timer(T_POLL, 2_000);
            }
            _ => {}
        }
    }
}

/// The indexer job of Sec. V: parse each new message and write one
/// inverted-index entry per word.
fn indexer_job() -> JobSpec {
    JobSpec::builder("indexer")
        .input(MonitorScope::Table {
            dataset: "tweets".into(),
            table: "messages".into(),
        })
        .action(FnAction(
            |key: &Key, values: &[sedna_memstore::VersionedValue], out: &mut Emits| {
                let path = KeyPath::decode(key).expect("table key");
                let id = path.key().trim_start_matches('m');
                let text = String::from_utf8_lossy(values[0].value.as_bytes()).to_string();
                for word in text.split(' ').filter(|w| !w.is_empty()) {
                    let idx = KeyPath::new("tweets", "index", format!("{word}-{id}"))
                        .unwrap()
                        .encode();
                    out.latest(idx, Value::from(id.to_string()));
                }
            },
        ))
        .trigger_interval(0)
        .declares_output(MonitorScope::Table {
            dataset: "tweets".into(),
            table: "index".into(),
        })
        .build()
}

fn run_once(scan_interval_micros: u64, samples: usize) -> HistSnapshot {
    let cfg = ClusterConfig {
        scan_interval_micros,
        ..ClusterConfig::paper()
    };
    let mut cluster = SimCluster::build(cfg, 0x5_ED_AE, LinkModel::gigabit_lan());
    cluster.run_until_ready(60_000_000);
    cluster.register_job_everywhere(indexer_job);
    let probe = cluster
        .sim
        .add_actor(Box::new(SearchProbe::new(cluster.config.clone(), samples)));
    let deadline = cluster.sim.now() + 180_000_000;
    while !cluster.sim.halted() && cluster.sim.now() < deadline {
        let t = cluster.sim.now() + 1_000_000;
        cluster.sim.run_until(t);
    }
    let lats = &cluster
        .sim
        .actor_ref::<SearchProbe>(probe)
        .unwrap()
        .latencies;
    assert!(!lats.is_empty(), "no samples collected");
    // Same log-bucketed histogram the metrics registry uses — no bench-local
    // sort-and-index percentile math.
    let h = Histogram::new();
    for &l in lats {
        h.record(l);
    }
    h.snapshot()
}

fn main() {
    println!("# Sec. V use case — crawl(3) → indexed(4,5) → queryable(7) latency");
    println!("# 9-node Sedna cluster, indexer trigger job");
    let ms = |v: u64| v as f64 / 1_000.0;

    // Headline run at the default 20 ms scan interval.
    let lat = run_once(20_000, 200);
    println!("samples: {}", lat.count);
    println!("min    : {:>8.1} ms", ms(lat.percentile(0.0)));
    println!("p50    : {:>8.1} ms", ms(lat.percentile(0.50)));
    println!("p90    : {:>8.1} ms", ms(lat.percentile(0.90)));
    println!("max    : {:>8.1} ms", ms(lat.max));
    println!("#");
    println!(
        "# shape check: worst-case crawl→queryable latency is {:.1} ms — the paper only \
         requires 'less than several minutes'; trigger-based indexing delivers it in \
         tens of milliseconds (scan interval + quorum write + quorum read).",
        ms(lat.max)
    );

    // Ablation: freshness is dominated by the trigger-scan interval, the
    // knob the paper leaves implicit ("several threads according to the
    // data size" — i.e. scan rate is a deployment choice).
    println!("\n# ablation — scan interval vs freshness (60 samples each)");
    println!("{:>14} {:>10} {:>10}", "scan_ms", "p50_ms", "max_ms");
    for interval in [5_000u64, 20_000, 50_000, 100_000] {
        let lat = run_once(interval, 60);
        println!(
            "{:>14} {:>10.1} {:>10.1}",
            interval / 1_000,
            ms(lat.percentile(0.50)),
            ms(lat.max)
        );
    }
    println!("# p50 tracks ~scan_interval: the pipeline itself adds only a few ms.");
}
