//! Continuous-profiler overhead ablation on a live threaded cluster.
//!
//! Boots a real [`ThreadCluster`] (which installs the lock-shim hooks and
//! starts the ~997 Hz sampler thread) and runs the identical key-value
//! workload with the profiler enabled and disabled, back to back. Each
//! trial contributes one *paired* on/off wall-clock ratio; the reported
//! overhead is the median ratio across trials, the same methodology the
//! observability-plane ablation in `mixed_workload` uses (pairing cancels
//! slow background-load drift on a shared host).
//!
//! "Enabled" here is the whole tentpole: `prof_scope!` guards push/pop,
//! the sampler snapshots every registered thread's scope stack, contended
//! mutex acquisitions feed the holder-attribution table, and — because
//! this binary installs [`ProfAlloc`] as its global allocator — every
//! allocation is charged to the allocating thread's current scope.
//! "Disabled" leaves the sampler thread running (it is never torn down in
//! production either) but makes guards inert and accumulation a no-op.
//!
//! Acceptance (gated in CI from `BENCH_profile.json`): overhead ≤ 5%.
//!
//! ```sh
//! cargo run --release -p sedna-bench --bin profile_overhead [-- --quick]
//! ```

use std::time::Instant;

use sedna_common::{Key, Value};
use sedna_core::cluster::ThreadCluster;
use sedna_core::config::ClusterConfig;
use sedna_obs::prof;

/// The profiler's allocation attribution rides the global allocator; this
/// binary measures with it installed so the "on" arm pays the real price.
#[global_allocator]
static ALLOC: prof::ProfAlloc = prof::ProfAlloc;

/// One measured pass: a 50/50 read/write mix over a modest key space so
/// writes rotate versions and reads hit live rows.
fn run_ops(cluster: &ThreadCluster, ops: u64) -> f64 {
    let t0 = Instant::now();
    for i in 0..ops {
        let key = Key::from(format!("bench:{}", i % 512));
        if i % 2 == 0 {
            cluster.write_latest(&key, Value::from(format!("v{i}")));
        } else {
            cluster.read_latest(&key);
        }
    }
    t0.elapsed().as_secs_f64()
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    (v[v.len() / 2] + v[(v.len() - 1) / 2]) / 2.0
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (trials, ops) = if quick {
        (8usize, 2_000u64)
    } else {
        (16, 6_000)
    };

    println!("# profile_overhead — continuous profiler on vs off, paired trials (wall-clock)");
    // `start` installs the shim hooks and the sampler thread.
    let cluster = ThreadCluster::start(ClusterConfig::small());

    // Warmup: assemble the cluster, fault in pages, settle the allocator.
    prof::set_enabled(true);
    run_ops(&cluster, ops);

    let mut ratios = Vec::with_capacity(trials);
    let mut wall_on_best = f64::INFINITY;
    let mut wall_off_best = f64::INFINITY;
    for t in 0..trials {
        prof::set_enabled(true);
        let on = run_ops(&cluster, ops);
        prof::set_enabled(false);
        let off = run_ops(&cluster, ops);
        prof::set_enabled(true);
        ratios.push(on / off);
        wall_on_best = wall_on_best.min(on);
        wall_off_best = wall_off_best.min(off);
        println!(
            "# trial {:>2}: on {:>7.1}ms off {:>7.1}ms ratio {:.3}",
            t + 1,
            on * 1_000.0,
            off * 1_000.0,
            on / off
        );
    }
    let overhead_pct = (median(ratios) - 1.0) * 100.0;

    // Evidence the "on" arm actually profiled: the sampler accumulated
    // stacks and the allocator charged scopes.
    let samples = prof::samples_total();
    let allocs = prof::allocs_total();
    let hottest = prof::allocs_by_scope()
        .first()
        .map(|(name, n)| format!("{name} ({n} allocs)"))
        .unwrap_or_else(|| "none".to_string());
    println!("# samples captured: {samples} · allocs attributed: {allocs} · hottest alloc scope: {hottest}");
    println!("# profiler overhead: {overhead_pct:+.2}% wall-clock (target ≤ 5%)");
    assert!(
        samples > 0,
        "sampler captured no stacks — nothing was measured"
    );
    assert!(allocs > 0, "ProfAlloc attributed no allocations");

    let json = format!(
        "{{\n  \"bench\": \"profile_overhead\",\n  \"config\": {{\n    \
         \"trials\": {trials},\n    \"ops_per_arm\": {ops},\n    \
         \"sampler_hz\": {},\n    \"alloc_attribution\": true\n  }},\n  \
         \"wall_ms_on\": {:.2},\n  \"wall_ms_off\": {:.2},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \
         \"samples_total\": {samples},\n  \"allocs_total\": {allocs}\n}}\n",
        prof::SAMPLER_HZ,
        wall_on_best * 1_000.0,
        wall_off_best * 1_000.0,
    );
    std::fs::write("BENCH_profile.json", json).expect("write BENCH_profile.json");
    println!("# wrote BENCH_profile.json");
    cluster.shutdown();
}
