//! Ablation: mixed read/write workloads with uniform vs zipfian key choice
//! (YCSB-style), beyond the paper's pure write-then-read batches.
//!
//! Shows two effects the paper's evaluation doesn't isolate:
//!
//! * reads are cheaper than writes for the *cluster* (R=2 responses needed
//!   vs 3 replica writes), so throughput rises with the read fraction;
//! * zipfian skew concentrates load on the hot keys' replica sets, which
//!   costs throughput when many clients contend.

use sedna_bench::SednaBatchDriver;
use sedna_common::rng::Xoshiro256;
use sedna_common::time::Micros;
use sedna_core::client::{ClientCore, ClientEvent};
use sedna_core::cluster::SimCluster;
use sedna_core::config::ClusterConfig;
use sedna_core::messages::SednaMsg;
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_net::link::LinkModel;
use sedna_net::sim::SimConfig;
use sedna_obs::{HistSnapshot, Histogram, MetricsSnapshot};
use sedna_workload::{KeyChooser, PaperWorkload};

const T_TICK: TimerToken = TimerToken(1);

/// Closed-loop mixed-op driver.
struct MixedDriver {
    core: ClientCore,
    workload: PaperWorkload,
    chooser: KeyChooser,
    rng: Xoshiro256,
    read_fraction: f64,
    ops: u64,
    done: u64,
    started_at: Micros,
    pub finished_at: Option<Micros>,
    pub errors: u64,
}

impl MixedDriver {
    fn issue(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        if self.done >= self.ops {
            if self.finished_at.is_none() {
                self.finished_at = Some(ctx.now());
            }
            return;
        }
        let idx = self.chooser.pick(self.done, &mut self.rng);
        let key = self.workload.key(idx);
        let now = ctx.now();
        let issued = if self.rng.chance(self.read_fraction) {
            self.core.read_latest(&key, now)
        } else {
            self.core.write_latest(&key, self.workload.value(), now)
        };
        if let Some((_, out)) = issued {
            for (to, m) in out {
                ctx.send(to, m);
            }
        }
    }
}

impl Actor for MixedDriver {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        for (to, m) in self.core.bootstrap() {
            ctx.send(to, m);
        }
        ctx.set_timer(T_TICK, 10_000);
    }

    fn on_message(&mut self, from: ActorId, msg: SednaMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        let (events, out) = self.core.on_message(from, msg, now);
        for (to, m) in out {
            ctx.send(to, m);
        }
        for ev in events {
            match ev {
                ClientEvent::Ready => {
                    self.started_at = ctx.now();
                    self.issue(ctx);
                }
                ClientEvent::Done { result, .. } => {
                    use sedna_core::messages::ClientResult;
                    self.done += 1;
                    match result {
                        ClientResult::Ok | ClientResult::Outdated | ClientResult::Latest(_) => {}
                        _ => self.errors += 1,
                    }
                    self.issue(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, _t: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        let (events, out) = self.core.on_tick(ctx.now());
        for (to, m) in out {
            ctx.send(to, m);
        }
        for ev in events {
            if let ClientEvent::Done { .. } = ev {
                self.done += 1;
                self.errors += 1;
                self.issue(ctx);
            }
        }
        ctx.set_timer(T_TICK, 10_000);
    }
}

/// One mixed run's results: virtual-time throughput plus the merged
/// client-side metrics snapshot (latency percentiles come from the shared
/// registry, not bench-local math) and the host wall-clock time the run
/// took (for the registry-overhead ablation).
struct MixedRun {
    kops: f64,
    errors: u64,
    wall: std::time::Duration,
    snap: MetricsSnapshot,
}

impl MixedRun {
    /// Combined read+write client-observed latency distribution, merged
    /// from the registry histograms every `ClientCore` recorded into.
    fn latency(&self) -> HistSnapshot {
        let mut h = HistSnapshot::default();
        for name in [
            "sedna_client_read_latency_micros",
            "sedna_client_write_latency_micros",
        ] {
            if let Some(s) = self.snap.hists.get(name) {
                h.merge(s);
            }
        }
        h
    }
}

fn run(
    read_fraction: f64,
    zipfian: bool,
    clients: u32,
    ops: u64,
    seed: u64,
    metrics: bool,
) -> MixedRun {
    let cfg = ClusterConfig::paper().with_metrics(metrics);
    let sim_config = SimConfig {
        seed,
        link: LinkModel::gigabit_lan(),
        send_overhead_micros: 4,
        ..SimConfig::default()
    };
    let mut cluster = SimCluster::build_with_sim_config(cfg.clone(), sim_config, |_| None);
    cluster.run_until_ready(60_000_000);
    let key_space = 10_000;
    let mut ids = Vec::new();
    for c in 0..clients {
        let chooser = if zipfian {
            KeyChooser::zipfian(key_space, 0.99)
        } else {
            KeyChooser::Uniform { n: key_space }
        };
        let id = cluster.sim.add_actor(Box::new(MixedDriver {
            core: ClientCore::new(cfg.clone(), cfg.client_origin(c)),
            workload: PaperWorkload::new(),
            chooser,
            rng: Xoshiro256::seeded(seed ^ c as u64),
            read_fraction,
            ops,
            done: 0,
            started_at: 0,
            finished_at: None,
            errors: 0,
        }));
        // Colocate like the paper's setup.
        cluster.sim.share_cpu(
            id,
            cfg.node_actor(sedna_common::NodeId(c % cfg.data_nodes as u32)),
        );
        ids.push(id);
    }
    let ceiling = cluster.sim.now() + ops * clients as u64 * 4_000;
    let wall_start = std::time::Instant::now();
    loop {
        let t = cluster.sim.now() + 500_000;
        cluster.sim.run_until(t);
        let all = ids.iter().all(|&id| {
            cluster
                .sim
                .actor_ref::<MixedDriver>(id)
                .is_some_and(|d| d.finished_at.is_some())
        });
        if all {
            break;
        }
        assert!(t < ceiling, "mixed run stuck");
    }
    let wall = wall_start.elapsed();
    let mut worst: Micros = 0;
    let mut errors = 0;
    let mut snap = MetricsSnapshot::default();
    for &id in &ids {
        let d = cluster.sim.actor_ref::<MixedDriver>(id).unwrap();
        worst = worst.max(d.finished_at.unwrap() - d.started_at);
        errors += d.errors;
        snap.merge(&d.core.obs().snapshot());
    }
    let kops = clients as f64 * ops as f64 / worst as f64 * 1_000.0;
    MixedRun {
        kops,
        errors,
        wall,
        snap,
    }
}

// ---------------------------------------------------------------------------
// Batched-datapath ablation (BENCH_batching.json)
// ---------------------------------------------------------------------------

/// One batching-ablation run's machine-readable summary.
struct BatchRun {
    /// Transport frames per client key-operation (replica ops + acks + the
    /// cluster's modest background gossip, all divided by key-ops moved).
    frames_per_op: f64,
    p50_micros: Micros,
    p99_micros: Micros,
    errors: u64,
}

/// Runs the multi-key workload with the given coalescing window
/// (`max_batch_ops = 1` disables batching) and measures frames per key-op
/// plus per-group virtual-time latency percentiles.
fn run_batching(
    max_batch_ops: usize,
    clients: u32,
    groups: u64,
    group_size: u64,
    seed: u64,
) -> BatchRun {
    let cfg = ClusterConfig::paper().with_batching(max_batch_ops, 0);
    let sim_config = SimConfig {
        seed,
        link: LinkModel::gigabit_lan(),
        send_overhead_micros: 4,
        ..SimConfig::default()
    };
    let mut cluster = SimCluster::build_with_sim_config(cfg.clone(), sim_config, |_| None);
    cluster.run_until_ready(60_000_000);
    let mut ids = Vec::new();
    for c in 0..clients {
        let id = cluster.sim.add_actor(Box::new(SednaBatchDriver::new(
            cfg.clone(),
            c,
            c as u64 * groups * group_size,
            groups,
            group_size,
        )));
        cluster.sim.share_cpu(
            id,
            cfg.node_actor(sedna_common::NodeId(c % cfg.data_nodes as u32)),
        );
        ids.push(id);
    }
    let frames_before = cluster.sim.stats().messages_sent;
    let ceiling = cluster.sim.now() + 240_000_000;
    loop {
        let t = cluster.sim.now() + 500_000;
        cluster.sim.run_until(t);
        let all = ids.iter().all(|&id| {
            cluster
                .sim
                .actor_ref::<SednaBatchDriver>(id)
                .is_some_and(|d| d.finished())
        });
        if all {
            break;
        }
        assert!(t < ceiling, "batching run stuck");
    }
    let frames = cluster.sim.stats().messages_sent - frames_before;
    // Per-group latencies go through the shared log-bucketed histogram, the
    // same percentile machinery every registry metric uses.
    let lat = Histogram::new();
    let mut errors = 0;
    for &id in &ids {
        let d = cluster.sim.actor_ref::<SednaBatchDriver>(id).unwrap();
        for &l in &d.group_latencies {
            lat.record(l);
        }
        errors += d.times.errors;
    }
    let lat = lat.snapshot();
    // Write phase + read phase each touch every key once.
    let key_ops = clients as u64 * groups * group_size * 2;
    BatchRun {
        frames_per_op: frames as f64 / key_ops as f64,
        p50_micros: lat.percentile(0.50),
        p99_micros: lat.percentile(0.99),
        errors,
    }
}

fn batching_ablation() {
    let (clients, groups, group_size, window) = (4u32, 128u64, 16u64, 8usize);
    println!("#");
    println!(
        "# batching ablation — {clients} clients × {groups} groups × {group_size} keys/group, \
         window {window}, N=3 W=2 R=2"
    );
    let off = run_batching(1, clients, groups, group_size, 0xBA7C);
    let on = run_batching(window, clients, groups, group_size, 0xBA7C);
    println!(
        "{:>12} {:>14} {:>12} {:>12} {:>8}",
        "batching", "frames/key-op", "p50_us", "p99_us", "errors"
    );
    for (label, r) in [("off", &off), ("on", &on)] {
        println!(
            "{:>12} {:>14.2} {:>12} {:>12} {:>8}",
            label, r.frames_per_op, r.p50_micros, r.p99_micros, r.errors
        );
    }
    let reduction = off.frames_per_op / on.frames_per_op;
    println!("# frame reduction: {reduction:.2}x");
    let json = format!(
        "{{\n  \"bench\": \"batching\",\n  \"config\": {{\n    \"clients\": {clients},\n    \
         \"groups_per_client\": {groups},\n    \"group_size\": {group_size},\n    \
         \"max_batch_ops\": {window},\n    \"max_batch_delay_micros\": 0,\n    \
         \"quorum\": \"N=3 W=2 R=2\"\n  }},\n  \"batching_off\": {{\n    \
         \"frames_per_op\": {:.3},\n    \"p50_micros\": {},\n    \"p99_micros\": {},\n    \
         \"errors\": {}\n  }},\n  \"batching_on\": {{\n    \"frames_per_op\": {:.3},\n    \
         \"p50_micros\": {},\n    \"p99_micros\": {},\n    \"errors\": {}\n  }},\n  \
         \"frame_reduction\": {reduction:.3}\n}}\n",
        off.frames_per_op,
        off.p50_micros,
        off.p99_micros,
        off.errors,
        on.frames_per_op,
        on.p50_micros,
        on.p99_micros,
        on.errors,
    );
    std::fs::write("BENCH_batching.json", json).expect("write BENCH_batching.json");
    println!("# wrote BENCH_batching.json");
}

/// Observability-overhead ablation: the identical deterministic run (same
/// seed, same virtual-time schedule) executed three ways, compared on host
/// wall-clock time — the full plane (registry + flight recorder + the
/// SLO alert engine, which rides the same `with_metrics` gate), the
/// registry alone (recorder disabled), and everything off. Each trial runs
/// the three arms back-to-back and contributes one *paired* on/off ratio;
/// the reported overhead is the median ratio across trials. Pairing
/// cancels the slow drift of background load on a shared host, which
/// best-of-N minimums do not (a lucky streak for one arm skews them).
/// Acceptance: full-plane overhead ≤ 5%.
fn obs_ablation() {
    use sedna_obs::flight;
    const TRIALS: usize = 24;
    const OPS: u64 = 6_000;
    println!("#");
    println!("# observability ablation — identical run, registry+recorder on vs off (wall-clock)");
    // Warmup: fault in the text/data pages and settle the allocator so
    // trial 1 is not systematically slower than trial N.
    let _ = run(0.5, false, 4, OPS, 0x0B5E, true);
    let mut best: [Option<MixedRun>; 3] = [None, None, None];
    let mut on_off = Vec::with_capacity(TRIALS);
    let mut on_reg = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        let mut walls = [0f64; 3];
        for (arm, &(metrics, recorder)) in [(true, true), (true, false), (false, false)]
            .iter()
            .enumerate()
        {
            flight::set_enabled(recorder);
            let r = run(0.5, false, 4, OPS, 0x0B5E, metrics);
            walls[arm] = r.wall.as_secs_f64();
            if best[arm].as_ref().is_none_or(|b| r.wall < b.wall) {
                best[arm] = Some(r);
            }
        }
        on_off.push(walls[0] / walls[2]);
        on_reg.push(walls[0] / walls[1]);
    }
    flight::set_enabled(true);
    let median = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        (v[v.len() / 2] + v[(v.len() - 1) / 2]) / 2.0
    };
    let overhead_pct = (median(on_off) - 1.0) * 100.0;
    let recorder_pct = (median(on_reg) - 1.0) * 100.0;
    let [on, registry_only, off] = best.map(Option::unwrap);
    println!(
        "{:>18} {:>12} {:>14} {:>8}",
        "plane", "wall_ms", "agg_kops/s", "errors"
    );
    for (label, r) in [
        ("registry+recorder", &on),
        ("registry only", &registry_only),
        ("off", &off),
    ] {
        println!(
            "{:>18} {:>12.1} {:>14.1} {:>8}",
            label,
            r.wall.as_secs_f64() * 1_000.0,
            r.kops,
            r.errors
        );
    }
    println!("# full-plane overhead: {overhead_pct:+.1}% wall-clock (target ≤ 5%)");
    println!("# recorder-only share: {recorder_pct:+.1}%");
    let lat = on.latency();
    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"config\": {{\n    \"clients\": 4,\n    \
         \"ops_per_client\": {OPS},\n    \"read_fraction\": 0.5,\n    \"trials\": {TRIALS},\n    \
         \"flight_recorder\": true\n  }},\n  \
         \"wall_ms_on\": {:.2},\n  \"wall_ms_registry_only\": {:.2},\n  \
         \"wall_ms_off\": {:.2},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \"recorder_pct\": {recorder_pct:.2},\n  \
         \"registry_p50_micros\": {},\n  \
         \"registry_p99_micros\": {},\n  \"registry_mean_micros\": {},\n  \
         \"registry_min_micros\": {},\n  \"registry_max_micros\": {}\n}}\n",
        on.wall.as_secs_f64() * 1_000.0,
        registry_only.wall.as_secs_f64() * 1_000.0,
        off.wall.as_secs_f64() * 1_000.0,
        lat.percentile(0.50),
        lat.percentile(0.99),
        lat.mean(),
        lat.min,
        lat.max,
    );
    std::fs::write("BENCH_obs.json", json).expect("write BENCH_obs.json");
    println!("# wrote BENCH_obs.json");
}

fn main() {
    println!(
        "# mixed_workload — read-fraction × key-skew ablation (9 nodes, 9 clients, 5k ops each)"
    );
    println!(
        "{:>14} {:>12} {:>16} {:>8} {:>10} {:>10} {:>10}",
        "read_fraction", "skew", "agg_kops/s", "errors", "mean_us", "p50_us", "p99_us"
    );
    for &rf in &[0.0, 0.5, 0.9, 1.0] {
        for &zipf in &[false, true] {
            let r = run(rf, zipf, 9, 5_000, 0x5_ED_B0, true);
            let lat = r.latency();
            println!(
                "{:>14} {:>12} {:>16.1} {:>8} {:>10} {:>10} {:>10}",
                rf,
                if zipf { "zipf(.99)" } else { "uniform" },
                r.kops,
                r.errors,
                lat.mean(),
                lat.percentile(0.50),
                lat.percentile(0.99),
            );
        }
    }
    println!("#");
    println!("# higher read fraction ⇒ higher throughput (reads occupy replica CPUs");
    println!("# for less time than 3-way writes); zipfian skew concentrates work on");
    println!("# the hot keys' three replicas and costs aggregate throughput.");
    println!("# latency percentiles come from the clients' shared metrics registry.");
    batching_ablation();
    obs_ablation();
}
