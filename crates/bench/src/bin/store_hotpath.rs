//! Store hot-path benchmark: lock-free reads vs the pre-overhaul
//! mutex-per-shard engine, plus an allocation-count ablation.
//!
//! Two measurements, written to `BENCH_store.json`:
//!
//! * **Contended single-key reads** — T threads hammer one hot key.
//!   The baseline reimplements the seed engine's read path (per-shard
//!   `Mutex<HashMap>`, deep-clone `read_all`); the store under test is
//!   the epoch-pinned lock-free path. Readers that never block should
//!   scale where the mutex serializes.
//! * **Allocation ablation** — a counting global allocator measures heap
//!   allocations per read. The single-version fast path (`read_latest`
//!   and snapshot `read_all`) must be allocation-free; the baseline's
//!   deep-clone `read_all` pays ≥1 allocation per hit.
//!
//! `--quick` shrinks iteration counts for CI smoke runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use sedna_common::hashing::fnv1a64;
use sedna_common::{Key, NodeId, Timestamp, Value};
use sedna_memstore::{MemStore, StoreConfig, VersionedValue};

// ---------------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------------

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates to `System`; the counter is a relaxed side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------
// Mutex baseline: the seed engine's read path
// ---------------------------------------------------------------------------

/// One row of the baseline: versions plus the seed engine's per-row LRU
/// bookkeeping.
#[derive(Default)]
struct BaseEntry {
    versions: Vec<VersionedValue>,
    access_version: u64,
    lru_slot: Option<u32>,
}

/// Shard state replicating the pre-overhaul engine: a `HashMap` of rows
/// plus the lazy LRU queue every read touched under the lock.
#[derive(Default)]
struct BaseShard {
    map: HashMap<Key, BaseEntry>,
    slots: Vec<Option<Key>>,
    free_slots: Vec<u32>,
    lru: std::collections::VecDeque<(u32, u64)>,
    access_counter: u64,
}

impl BaseShard {
    /// The seed engine's LRU touch: a second map lookup, a queue push,
    /// and periodic lazy compaction — all on the read path, under the
    /// shard mutex.
    fn touch(&mut self, key: &Key) {
        self.access_counter += 1;
        let c = self.access_counter;
        let Some(e) = self.map.get_mut(key) else {
            return;
        };
        e.access_version = c;
        let slot = match e.lru_slot {
            Some(s) => s,
            None => {
                let s = match self.free_slots.pop() {
                    Some(s) => {
                        self.slots[s as usize] = Some(key.clone());
                        s
                    }
                    None => {
                        self.slots.push(Some(key.clone()));
                        (self.slots.len() - 1) as u32
                    }
                };
                self.map.get_mut(key).expect("present above").lru_slot = Some(s);
                s
            }
        };
        self.lru.push_back((slot, c));
        if self.lru.len() > 4 * self.map.len() + 64 {
            let map = &self.map;
            let slots = &self.slots;
            self.lru.retain(|(s, v)| {
                slots[*s as usize]
                    .as_ref()
                    .and_then(|k| map.get(k))
                    .is_some_and(|e| e.access_version == *v)
            });
        }
    }
}

/// Per-shard `Mutex` store replicating the pre-overhaul engine's read
/// path: lock the shard, look the row up, deep-clone (`read_all`) or
/// clone the freshest element (`read_latest`), and run the LRU touch.
struct MutexBaseline {
    shards: Vec<Mutex<BaseShard>>,
    mask: u64,
}

impl MutexBaseline {
    fn new(shards: usize) -> MutexBaseline {
        let n = shards.next_power_of_two();
        MutexBaseline {
            shards: (0..n).map(|_| Mutex::new(BaseShard::default())).collect(),
            mask: (n - 1) as u64,
        }
    }

    fn shard(&self, key: &Key) -> &Mutex<BaseShard> {
        &self.shards[(fnv1a64(key.as_bytes()) & self.mask) as usize]
    }

    fn write_latest(&self, key: &Key, ts: Timestamp, value: Value) {
        let mut shard = self.shard(key).lock().unwrap();
        let entry = shard.map.entry(key.clone()).or_default();
        entry.versions = vec![VersionedValue { ts, value }];
        shard.touch(key);
    }

    fn read_latest(&self, key: &Key) -> Option<VersionedValue> {
        let mut shard = self.shard(key).lock().unwrap();
        let found = shard
            .map
            .get(key)
            .and_then(|e| e.versions.iter().max_by_key(|v| v.ts).cloned());
        if found.is_some() {
            shard.touch(key);
        }
        found
    }

    fn read_all(&self, key: &Key) -> Option<Vec<VersionedValue>> {
        let mut shard = self.shard(key).lock().unwrap();
        let found = shard.map.get(key).map(|e| e.versions.clone());
        if found.is_some() {
            shard.touch(key);
        }
        found
    }
}

// ---------------------------------------------------------------------------
// Contended-read measurement
// ---------------------------------------------------------------------------

fn ts(micros: u64) -> Timestamp {
    Timestamp::new(micros, 0, NodeId(0))
}

/// Aggregate single-hot-key read throughput, in million ops/sec, with
/// `threads` readers doing `per_thread` reads each. Timed from the start
/// barrier's release to the last reader finishing.
fn run_contended(threads: usize, per_thread: u64, read: &(impl Fn() + Send + Sync)) -> f64 {
    let barrier = Barrier::new(threads + 1);
    let mut elapsed = std::time::Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for _ in 0..per_thread {
                        read();
                    }
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        elapsed = t0.elapsed();
    });
    (threads as u64 * per_thread) as f64 / elapsed.as_secs_f64() / 1e6
}

/// Allocations per op over `n` single-threaded calls.
fn allocs_per_op(n: u64, op: impl Fn()) -> f64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..n {
        op();
    }
    (ALLOCS.load(Ordering::Relaxed) - before) as f64 / n as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let per_thread: u64 = if quick { 200_000 } else { 2_000_000 };
    let alloc_reads: u64 = if quick { 100_000 } else { 1_000_000 };
    let thread_counts = [1usize, 2, 4];

    let hot = Key::from("hot-key-0000000000");
    let value = Value::from("x".repeat(20));

    let store = MemStore::new(StoreConfig::default());
    store.write_latest(&hot, ts(1), value.clone());
    let baseline = MutexBaseline::new(16);
    baseline.write_latest(&hot, ts(1), value.clone());

    // ---- allocation ablation (single-threaded, quiesced) ----
    // Warm the thread's epoch registration and drain warm-up garbage so
    // the measured loop is steady-state.
    for _ in 0..1_000 {
        store.read_latest(&hot);
    }
    crossbeam::epoch::flush();
    crossbeam::epoch::flush();
    let lf_read_latest = allocs_per_op(alloc_reads, || {
        std::hint::black_box(store.read_latest(&hot));
    });
    let lf_read_all = allocs_per_op(alloc_reads, || {
        std::hint::black_box(store.read_all(&hot));
    });
    let base_read_latest = allocs_per_op(alloc_reads, || {
        std::hint::black_box(baseline.read_latest(&hot));
    });
    let base_read_all = allocs_per_op(alloc_reads, || {
        std::hint::black_box(baseline.read_all(&hot));
    });

    println!("# store_hotpath — allocation ablation ({alloc_reads} single-version reads)");
    println!("{:>28} {:>12}", "path", "allocs/op");
    for (label, a) in [
        ("lockfree read_latest", lf_read_latest),
        ("lockfree read_all(snapshot)", lf_read_all),
        ("mutex read_latest", base_read_latest),
        ("mutex read_all(deep clone)", base_read_all),
    ] {
        println!("{label:>28} {a:>12.4}");
    }

    // ---- contended single-key reads ----
    println!("#");
    println!("# contended reads — every thread hammers the same key ({per_thread} reads/thread)");
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "threads", "lockfree_mops", "mutex_mops", "speedup"
    );
    let mut rows = Vec::new();
    for &t in &thread_counts {
        let lf = run_contended(t, per_thread, &|| {
            std::hint::black_box(store.read_latest(&hot));
        });
        let mx = run_contended(t, per_thread, &|| {
            std::hint::black_box(baseline.read_latest(&hot));
        });
        let speedup = lf / mx;
        println!("{t:>8} {lf:>16.2} {mx:>16.2} {speedup:>10.2}");
        rows.push((t, lf, mx, speedup));
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|(t, lf, mx, sp)| {
            format!(
                "    {{ \"threads\": {t}, \"lockfree_mops\": {lf:.3}, \
                 \"mutex_mops\": {mx:.3}, \"speedup\": {sp:.3} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"store_hotpath\",\n  \"config\": {{\n    \"quick\": {quick},\n    \
         \"reads_per_thread\": {per_thread},\n    \"alloc_ablation_reads\": {alloc_reads},\n    \
         \"value_bytes\": 20,\n    \"shards\": 16\n  }},\n  \"contended_read\": [\n{}\n  ],\n  \
         \"alloc_ablation\": {{\n    \"lockfree_read_latest_allocs_per_op\": {lf_read_latest:.4},\n    \
         \"lockfree_read_all_allocs_per_op\": {lf_read_all:.4},\n    \
         \"mutex_read_latest_allocs_per_op\": {base_read_latest:.4},\n    \
         \"mutex_read_all_allocs_per_op\": {base_read_all:.4}\n  }}\n}}\n",
        json_rows.join(",\n"),
    );
    std::fs::write("BENCH_store.json", json).expect("write BENCH_store.json");
    println!("# wrote BENCH_store.json");

    let multi = rows.iter().filter(|(t, ..)| *t >= 2);
    for (t, _, _, sp) in multi {
        if *sp < 2.0 {
            println!("# WARNING: speedup at {t} threads is {sp:.2}x (< 2x target)");
        }
    }
    assert!(
        lf_read_latest == 0.0 && lf_read_all == 0.0,
        "single-version read fast path must be allocation-free \
         (read_latest {lf_read_latest}, read_all {lf_read_all})"
    );
}
