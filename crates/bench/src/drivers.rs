//! Closed-loop load-driver actors, mirroring the paper's test programs:
//! "All clients run the Sedna load test programs … Sedna test programs
//! works like Memcached test programs except it uses Sedna strategy to
//! manage all the data."
//!
//! Each driver writes its whole key range sequentially (one operation in
//! flight at a time — the paper measures total time of a sequential batch),
//! records the write-phase completion time, then reads the range back and
//! records the read-phase completion time.

use sedna_common::time::Micros;
use sedna_common::Key;
use sedna_core::client::{ClientCore, ClientEvent};
use sedna_core::config::ClusterConfig;
use sedna_core::messages::SednaMsg;
use sedna_memcached::client::{McClientCore, McEvent, Replication};
use sedna_memcached::messages::McMsg;
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_workload::PaperWorkload;

const T_TICK: TimerToken = TimerToken(0xBE_01);

/// Phase timing recorded by a driver.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverTimes {
    /// Virtual time when the driver started issuing.
    pub started_at: Micros,
    /// Virtual time when the last write completed.
    pub writes_done_at: Option<Micros>,
    /// Virtual time when the last read completed.
    pub reads_done_at: Option<Micros>,
    /// Operations that did not return `Ok`/a value (should stay 0).
    pub errors: u64,
}

// ---------------------------------------------------------------------------
// Sedna driver
// ---------------------------------------------------------------------------

/// Closed-loop driver against a Sedna deployment.
pub struct SednaLoadDriver {
    core: ClientCore,
    workload: PaperWorkload,
    /// Each driver owns the key range `[key_offset, key_offset + ops)`.
    key_offset: u64,
    ops: u64,
    issued: u64,
    phase_reads: bool,
    /// Recorded timings.
    pub times: DriverTimes,
}

impl SednaLoadDriver {
    /// Creates a driver for `ops` operations starting at `key_offset`.
    pub fn new(cfg: ClusterConfig, client_index: u32, key_offset: u64, ops: u64) -> Self {
        let origin = cfg.client_origin(client_index);
        SednaLoadDriver {
            core: ClientCore::new(cfg, origin),
            workload: PaperWorkload::new(),
            key_offset,
            ops,
            issued: 0,
            phase_reads: false,
            times: DriverTimes::default(),
        }
    }

    /// True when both phases completed.
    pub fn finished(&self) -> bool {
        self.times.reads_done_at.is_some()
    }

    fn key(&self, i: u64) -> Key {
        self.workload.key(self.key_offset + i)
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        if !self.phase_reads {
            if self.issued < self.ops {
                let key = self.key(self.issued);
                self.issued += 1;
                if let Some((_, out)) = self.core.write_latest(&key, self.workload.value(), now) {
                    for (to, m) in out {
                        ctx.send(to, m);
                    }
                }
                return;
            }
            // Write phase over; start reads.
            self.times.writes_done_at = Some(now);
            self.phase_reads = true;
            self.issued = 0;
        }
        if self.issued < self.ops {
            let key = self.key(self.issued);
            self.issued += 1;
            if let Some((_, out)) = self.core.read_latest(&key, now) {
                for (to, m) in out {
                    ctx.send(to, m);
                }
            }
        } else if self.times.reads_done_at.is_none() {
            self.times.reads_done_at = Some(now);
        }
    }

    fn pump(&mut self, events: Vec<ClientEvent>, ctx: &mut Ctx<'_, SednaMsg>) {
        for ev in events {
            match ev {
                ClientEvent::Ready => {
                    self.times.started_at = ctx.now();
                    self.issue_next(ctx);
                }
                ClientEvent::Done { result, .. } => {
                    use sedna_core::messages::ClientResult;
                    match result {
                        ClientResult::Ok | ClientResult::Latest(Some(_)) => {}
                        _ => self.times.errors += 1,
                    }
                    self.issue_next(ctx);
                }
            }
        }
    }
}

impl Actor for SednaLoadDriver {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        for (to, m) in self.core.bootstrap() {
            ctx.send(to, m);
        }
        ctx.set_timer(T_TICK, 10_000);
    }

    fn on_message(&mut self, from: ActorId, msg: SednaMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        let (events, out) = self.core.on_message(from, msg, now);
        for (to, m) in out {
            ctx.send(to, m);
        }
        self.pump(events, ctx);
    }

    fn on_timer(&mut self, _t: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        let (events, out) = self.core.on_tick(ctx.now());
        for (to, m) in out {
            ctx.send(to, m);
        }
        self.pump(events, ctx);
        ctx.set_timer(T_TICK, 10_000);
    }

    /// Per-packet client cost (syscall/interrupt handling). Identical for
    /// both systems; Sedna simply receives N acks per operation where the
    /// memcached client receives one per copy — this is what makes Sedna
    /// "slightly slower" than write-once memcached (Fig. 7(b)) despite its
    /// parallel fan-out.
    fn service_micros(&self, _msg: &SednaMsg) -> Micros {
        CLIENT_PACKET_COST
    }
}

/// Per-received-packet CPU cost charged to load clients (µs).
pub const CLIENT_PACKET_COST: Micros = 3;

// ---------------------------------------------------------------------------
// Sedna multi-key (batched) driver
// ---------------------------------------------------------------------------

/// Closed-loop driver issuing multi-key groups through
/// [`ClientCore::write_many`] / [`ClientCore::read_many`].
///
/// Works like [`SednaLoadDriver`] but moves `group_size` keys per operation:
/// the write phase covers the driver's key range in `write_many` groups, then
/// the read phase reads it back in `read_many` groups. One group is in flight
/// at a time, and the virtual-time latency of every group is recorded so
/// harnesses can report percentiles.
pub struct SednaBatchDriver {
    core: ClientCore,
    workload: PaperWorkload,
    /// Each driver owns the key range `[key_offset, key_offset + groups * group_size)`.
    key_offset: u64,
    groups: u64,
    group_size: u64,
    issued: u64,
    inflight_since: Micros,
    phase_reads: bool,
    /// Recorded timings.
    pub times: DriverTimes,
    /// Virtual-time latency of every completed group, in completion order.
    pub group_latencies: Vec<Micros>,
}

impl SednaBatchDriver {
    /// Creates a driver for `groups` groups of `group_size` keys starting at
    /// `key_offset`.
    pub fn new(
        cfg: ClusterConfig,
        client_index: u32,
        key_offset: u64,
        groups: u64,
        group_size: u64,
    ) -> Self {
        let origin = cfg.client_origin(client_index);
        SednaBatchDriver {
            core: ClientCore::new(cfg, origin),
            workload: PaperWorkload::new(),
            key_offset,
            groups,
            group_size,
            issued: 0,
            inflight_since: 0,
            phase_reads: false,
            times: DriverTimes::default(),
            group_latencies: Vec::new(),
        }
    }

    /// True when both phases completed.
    pub fn finished(&self) -> bool {
        self.times.reads_done_at.is_some()
    }

    fn key(&self, i: u64) -> Key {
        self.workload.key(self.key_offset + i)
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        if !self.phase_reads {
            if self.issued < self.groups {
                let base = self.issued * self.group_size;
                self.issued += 1;
                let pairs: Vec<_> = (0..self.group_size)
                    .map(|i| (self.key(base + i), self.workload.value()))
                    .collect();
                self.inflight_since = now;
                if let Some((_, out)) = self.core.write_many(&pairs, now) {
                    for (to, m) in out {
                        ctx.send(to, m);
                    }
                }
                return;
            }
            self.times.writes_done_at = Some(now);
            self.phase_reads = true;
            self.issued = 0;
        }
        if self.issued < self.groups {
            let base = self.issued * self.group_size;
            self.issued += 1;
            let keys: Vec<_> = (0..self.group_size).map(|i| self.key(base + i)).collect();
            self.inflight_since = now;
            if let Some((_, out)) = self.core.read_many(&keys, now) {
                for (to, m) in out {
                    ctx.send(to, m);
                }
            }
        } else if self.times.reads_done_at.is_none() {
            self.times.reads_done_at = Some(now);
        }
    }

    fn pump(&mut self, events: Vec<ClientEvent>, ctx: &mut Ctx<'_, SednaMsg>) {
        for ev in events {
            match ev {
                ClientEvent::Ready => {
                    self.times.started_at = ctx.now();
                    self.issue_next(ctx);
                }
                ClientEvent::Done { result, .. } => {
                    use sedna_core::messages::ClientResult;
                    self.group_latencies.push(ctx.now() - self.inflight_since);
                    match result {
                        ClientResult::Many(children) => {
                            for child in children {
                                match child {
                                    ClientResult::Ok | ClientResult::Latest(Some(_)) => {}
                                    _ => self.times.errors += 1,
                                }
                            }
                        }
                        _ => self.times.errors += 1,
                    }
                    self.issue_next(ctx);
                }
            }
        }
    }
}

impl Actor for SednaBatchDriver {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        for (to, m) in self.core.bootstrap() {
            ctx.send(to, m);
        }
        ctx.set_timer(T_TICK, 10_000);
    }

    fn on_message(&mut self, from: ActorId, msg: SednaMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        let (events, out) = self.core.on_message(from, msg, now);
        for (to, m) in out {
            ctx.send(to, m);
        }
        self.pump(events, ctx);
    }

    fn on_timer(&mut self, _t: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        let (events, out) = self.core.on_tick(ctx.now());
        for (to, m) in out {
            ctx.send(to, m);
        }
        self.pump(events, ctx);
        ctx.set_timer(T_TICK, 10_000);
    }

    fn service_micros(&self, _msg: &SednaMsg) -> Micros {
        CLIENT_PACKET_COST
    }
}

// ---------------------------------------------------------------------------
// Memcached driver
// ---------------------------------------------------------------------------

/// Closed-loop driver against the memcached baseline.
pub struct McLoadDriver {
    core: McClientCore,
    workload: PaperWorkload,
    key_offset: u64,
    ops: u64,
    issued: u64,
    phase_reads: bool,
    /// Recorded timings.
    pub times: DriverTimes,
}

impl McLoadDriver {
    /// Creates a driver over `servers` with the given replication mode.
    pub fn new(servers: Vec<ActorId>, replication: Replication, key_offset: u64, ops: u64) -> Self {
        McLoadDriver {
            core: McClientCore::new(servers, replication),
            workload: PaperWorkload::new(),
            key_offset,
            ops,
            issued: 0,
            phase_reads: false,
            times: DriverTimes::default(),
        }
    }

    /// True when both phases completed.
    pub fn finished(&self) -> bool {
        self.times.reads_done_at.is_some()
    }

    fn key(&self, i: u64) -> Key {
        self.workload.key(self.key_offset + i)
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_, McMsg>) {
        let now = ctx.now();
        if !self.phase_reads {
            if self.issued < self.ops {
                let key = self.key(self.issued);
                self.issued += 1;
                let (_, (to, msg)) = self.core.set(key, self.workload.value());
                ctx.send(to, msg);
                return;
            }
            self.times.writes_done_at = Some(now);
            self.phase_reads = true;
            self.issued = 0;
        }
        if self.issued < self.ops {
            let key = self.key(self.issued);
            self.issued += 1;
            let (_, (to, msg)) = self.core.get(key);
            ctx.send(to, msg);
        } else if self.times.reads_done_at.is_none() {
            self.times.reads_done_at = Some(now);
        }
    }
}

impl Actor for McLoadDriver {
    type Msg = McMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, McMsg>) {
        self.times.started_at = ctx.now();
        self.issue_next(ctx);
    }

    fn on_message(&mut self, _from: ActorId, msg: McMsg, ctx: &mut Ctx<'_, McMsg>) {
        let (event, next) = self.core.on_message(msg);
        if let Some((to, m)) = next {
            ctx.send(to, m);
        }
        match event {
            Some(McEvent::SetDone { .. }) => self.issue_next(ctx),
            Some(McEvent::GetDone { value, .. }) => {
                if value.is_none() {
                    self.times.errors += 1;
                }
                self.issue_next(ctx);
            }
            None => {}
        }
    }

    fn service_micros(&self, _msg: &McMsg) -> Micros {
        CLIENT_PACKET_COST
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sedna_driver_key_ranges_do_not_overlap() {
        let cfg = ClusterConfig::small();
        let a = SednaLoadDriver::new(cfg.clone(), 0, 0, 100);
        let b = SednaLoadDriver::new(cfg, 1, 100, 100);
        assert_ne!(a.key(99), b.key(0));
        assert_eq!(a.key(0), PaperWorkload::new().key(0));
        assert_eq!(b.key(0), PaperWorkload::new().key(100));
    }

    #[test]
    fn batch_driver_covers_the_same_keys_as_the_load_driver() {
        let cfg = ClusterConfig::small();
        let plain = SednaLoadDriver::new(cfg.clone(), 0, 64, 32);
        let batched = SednaBatchDriver::new(cfg, 0, 64, 4, 8);
        for i in 0..32 {
            assert_eq!(plain.key(i), batched.key(i));
        }
    }
}
