//! Benchmark harness for the Sedna reproduction.
//!
//! The paper's evaluation (Sec. VI) measures completion time of sequential
//! read/write batches on a 9-server gigabit cluster. We regenerate every
//! figure on the deterministic simulator: closed-loop driver actors issue
//! the paper's 20 B/20 B workload against either a full Sedna deployment or
//! the memcached baseline, and the virtual clock yields noise-free
//! completion times whose *shape* is comparable with the paper's plots.
//!
//! Binaries (one per paper artifact — see DESIGN.md's experiment index):
//!
//! * `fig7a` — Sedna vs Memcached×3 (sequential triple writes/reads);
//! * `fig7b` — Sedna vs Memcached×1 (single writes/reads);
//! * `fig8`  — one vs nine concurrent clients on Sedna;
//! * `table1` — live demonstrations of each technique row;
//! * `usecase_latency` — Sec. V crawl→indexed→queryable freshness;
//! * `coord_scaling` — Sec. III-E coordination-service claims, including
//!   the watch-storm ablation Sedna avoids by design;
//! * `quorum_sweep`, `vnode_granularity` — design-choice ablations.

pub mod drivers;
pub mod runs;

pub use drivers::{McLoadDriver, SednaBatchDriver, SednaLoadDriver};
pub use runs::{run_memcached_load, run_sedna_load, LoadResult};
