//! Whole-experiment runners used by the figure binaries and by tests.

use sedna_common::time::Micros;
use sedna_common::NodeId;
use sedna_core::cluster::SimCluster;
use sedna_core::config::ClusterConfig;
use sedna_memcached::client::Replication;
use sedna_memcached::messages::McMsg;
use sedna_memcached::server::McServer;
use sedna_net::actor::ActorId;
use sedna_net::link::LinkModel;
use sedna_net::sim::{Sim, SimConfig};

use crate::drivers::{McLoadDriver, SednaLoadDriver};

/// Sender-side per-packet CPU cost (µs) used in all figure runs — the
/// syscall/packet-assembly price both systems' clients pay per message,
/// which is what makes Sedna's 3-way fan-out cost more than a single
/// memcached write at the client (Fig. 7(b)'s "slightly slower").
pub const SEND_OVERHEAD_MICROS: Micros = 4;

/// Result of one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadResult {
    /// Completion time (µs, virtual) of the *slowest client's* write phase,
    /// measured from when that client became ready.
    pub write_micros: Micros,
    /// Same for the read phase (starts when the client's writes finished).
    pub read_micros: Micros,
    /// Operations that errored (expected 0).
    pub errors: u64,
    /// Clients that finished.
    pub finished_clients: usize,
}

/// Runs `clients` concurrent closed-loop clients against a full Sedna
/// deployment, each performing `ops_per_client` writes then reads.
pub fn run_sedna_load(
    config: ClusterConfig,
    clients: u32,
    ops_per_client: u64,
    seed: u64,
) -> LoadResult {
    let sim_config = SimConfig {
        seed,
        link: LinkModel::gigabit_lan(),
        send_overhead_micros: SEND_OVERHEAD_MICROS,
        ..SimConfig::default()
    };
    let mut cluster = SimCluster::build_with_sim_config(config.clone(), sim_config, |_| None);
    cluster.run_until_ready(60_000_000);
    let mut driver_ids = Vec::new();
    for c in 0..clients {
        let driver =
            SednaLoadDriver::new(config.clone(), c, c as u64 * ops_per_client, ops_per_client);
        let id = cluster.sim.add_actor(Box::new(driver));
        // The paper runs the load clients on the storage servers ("we use
        // the same number of clients as servers"): client c shares server
        // c's CPU.
        let host = config.node_actor(NodeId(c % config.data_nodes as u32));
        cluster.sim.share_cpu(id, host);
        driver_ids.push(id);
    }
    // Generous ceiling: 4 ms of virtual time per client-op covers both
    // phases plus heavy contention.
    let ceiling = cluster.sim.now() + 4_000_000 + ops_per_client * clients as u64 * 4_000;
    let mut t = cluster.sim.now();
    loop {
        t += 500_000;
        cluster.sim.run_until(t);
        let all_done = driver_ids.iter().all(|&id| {
            cluster
                .sim
                .actor_ref::<SednaLoadDriver>(id)
                .is_some_and(|d| d.finished())
        });
        if all_done {
            break;
        }
        assert!(t < ceiling, "sedna load run did not finish by {ceiling}µs");
    }
    summarize(driver_ids.iter().map(|&id| {
        let d = cluster.sim.actor_ref::<SednaLoadDriver>(id).unwrap();
        (d.times, d.finished())
    }))
}

/// Runs the memcached baseline: `servers` cache servers, `clients`
/// closed-loop drivers in the given replication mode.
pub fn run_memcached_load(
    servers: usize,
    clients: u32,
    ops_per_client: u64,
    replication: Replication,
    read_service_micros: Micros,
    write_service_micros: Micros,
    seed: u64,
) -> LoadResult {
    let mut sim: Sim<McMsg> = Sim::new(SimConfig {
        seed,
        link: LinkModel::gigabit_lan(),
        send_overhead_micros: SEND_OVERHEAD_MICROS,
        ..SimConfig::default()
    });
    let server_ids: Vec<ActorId> = (0..servers)
        .map(|i| {
            sim.add_actor(Box::new(McServer::<McMsg>::new(
                NodeId(i as u32),
                None,
                read_service_micros,
                write_service_micros,
            )))
        })
        .collect();
    let driver_ids: Vec<ActorId> = (0..clients)
        .map(|c| {
            let id = sim.add_actor(Box::new(McLoadDriver::new(
                server_ids.clone(),
                replication,
                c as u64 * ops_per_client,
                ops_per_client,
            )));
            // Colocate client c on server c, matching the paper's setup.
            sim.share_cpu(id, server_ids[c as usize % server_ids.len()]);
            id
        })
        .collect();
    // 8 ms per client-op: both phases, up to 3 sequential copies each.
    let ceiling = 4_000_000 + ops_per_client * clients as u64 * 8_000;
    let mut t = 0;
    loop {
        t += 500_000;
        sim.run_until(t);
        let all_done = driver_ids.iter().all(|&id| {
            sim.actor_ref::<McLoadDriver>(id)
                .is_some_and(|d| d.finished())
        });
        if all_done {
            break;
        }
        assert!(
            t < ceiling,
            "memcached load run did not finish by {ceiling}µs"
        );
    }
    summarize(driver_ids.iter().map(|&id| {
        let d = sim.actor_ref::<McLoadDriver>(id).unwrap();
        (d.times, d.finished())
    }))
}

fn summarize(times: impl Iterator<Item = (crate::drivers::DriverTimes, bool)>) -> LoadResult {
    let mut write = 0;
    let mut read = 0;
    let mut errors = 0;
    let mut finished = 0;
    for (t, done) in times {
        if done {
            finished += 1;
        }
        if let Some(w) = t.writes_done_at {
            write = write.max(w - t.started_at);
            if let Some(r) = t.reads_done_at {
                read = read.max(r - w);
            }
        }
        errors += t.errors;
    }
    LoadResult {
        write_micros: write,
        read_micros: read,
        errors,
        finished_clients: finished,
    }
}

/// Formats a microsecond duration as milliseconds with 1 decimal.
pub fn ms(micros: Micros) -> String {
    format!("{:.1}", micros as f64 / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sedna_run_completes_without_errors() {
        let r = run_sedna_load(ClusterConfig::paper(), 1, 500, 1);
        assert_eq!(r.errors, 0);
        assert_eq!(r.finished_clients, 1);
        assert!(r.write_micros > 0 && r.read_micros > 0);
    }

    #[test]
    fn small_memcached_runs_complete() {
        let single = run_memcached_load(9, 1, 500, Replication::Single, 8, 10, 1);
        let triple = run_memcached_load(9, 1, 500, Replication::Sequential(3), 8, 10, 1);
        assert_eq!(single.errors, 0);
        assert_eq!(triple.errors, 0);
        // Sequential triple writes must cost roughly 3x the single writes.
        let ratio = triple.write_micros as f64 / single.write_micros as f64;
        assert!((2.2..4.0).contains(&ratio), "triple/single ratio {ratio}");
    }

    #[test]
    fn nine_clients_slower_per_client_but_higher_aggregate() {
        // Fig. 8's shape in miniature.
        let one = run_sedna_load(ClusterConfig::paper(), 1, 300, 4);
        let nine = run_sedna_load(ClusterConfig::paper(), 9, 300, 4);
        assert_eq!(one.errors + nine.errors, 0);
        assert!(
            nine.write_micros > one.write_micros,
            "per-client contention: {} vs {}",
            nine.write_micros,
            one.write_micros
        );
        let thr1 = 300.0 / one.write_micros as f64;
        let thr9 = 9.0 * 300.0 / nine.write_micros as f64;
        assert!(
            thr9 > 3.0 * thr1,
            "aggregate throughput scales: {thr9} vs {thr1}"
        );
    }

    #[test]
    fn sedna_parallel_replication_beats_sequential_triple() {
        // The Fig. 7(a) headline in miniature.
        let sedna = run_sedna_load(ClusterConfig::paper(), 1, 500, 2);
        let mc3 = run_memcached_load(9, 1, 500, Replication::Sequential(3), 8, 10, 2);
        assert!(
            sedna.write_micros < mc3.write_micros,
            "sedna {} vs mc3 {}",
            sedna.write_micros,
            mc3.write_micros
        );
    }
}
