//! Criterion microbenchmarks of the hot paths: the local engine, the
//! partitioner, vnode-map maintenance, quorum coordinators, trigger
//! scanning and the WAL. These ground the simulator's service-time
//! parameters in measured reality.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sedna_common::rng::Xoshiro256;
use sedna_common::{CausalContext, Key, NodeId, Timestamp, Value};
use sedna_memstore::{MemStore, StoreConfig};
use sedna_persist::wal::{Wal, WalRecord};
use sedna_replication::{ReadCoordinator, ReplicaRead, ReplicaWriteResult, WriteCoordinator};
use sedna_ring::{Partitioner, VNodeMap};
use sedna_triggers::{FnAction, JobSpec, MonitorScope, TriggerEngine};
use sedna_workload::PaperWorkload;

fn ts(micros: u64) -> Timestamp {
    Timestamp::new(micros, 0, NodeId(0))
}

fn bench_memstore(c: &mut Criterion) {
    let w = PaperWorkload::new();
    let mut g = c.benchmark_group("memstore");
    g.throughput(Throughput::Elements(1));

    let store = MemStore::new(StoreConfig::default());
    let mut i = 0u64;
    g.bench_function("write_latest_20b", |b| {
        b.iter(|| {
            i += 1;
            store.write_latest(&w.key(i % 100_000), ts(i), w.value())
        })
    });

    let store = MemStore::new(StoreConfig::default());
    for k in 0..100_000u64 {
        store.write_latest(&w.key(k), ts(k + 1), w.value());
    }
    let mut rng = Xoshiro256::seeded(1);
    g.bench_function("read_latest_hit", |b| {
        b.iter(|| store.read_latest(&w.key(rng.next_below(100_000))))
    });
    g.bench_function("read_latest_miss", |b| {
        b.iter(|| store.read_latest(&w.key(1_000_000 + rng.next_below(1_000))))
    });

    let mut j = 0u64;
    g.bench_function("write_all_rotating_sources", |b| {
        b.iter(|| {
            j += 1;
            let t = Timestamp::new(j, 0, NodeId((j % 3) as u32));
            store.write_all(&w.key(j % 1_000), t, w.value())
        })
    });
    g.finish();
}

/// Contended reads: several threads hammer one hot key. The lock-free
/// read path should hold its single-thread cost; a mutex engine would
/// serialize here. Reported as aggregate time per read.
fn bench_memstore_contended(c: &mut Criterion) {
    use std::sync::Barrier;

    let w = PaperWorkload::new();
    let store = std::sync::Arc::new(MemStore::new(StoreConfig::default()));
    let hot = w.key(0);
    store.write_latest(&hot, ts(1), w.value());

    let mut g = c.benchmark_group("memstore_contended");
    g.throughput(Throughput::Elements(1));
    for threads in [2usize, 4] {
        g.bench_function(&format!("read_latest_hot_key_{threads}_threads"), |b| {
            b.iter_custom(|iters| {
                let per_thread = iters.div_ceil(threads as u64);
                let barrier = Barrier::new(threads + 1);
                let mut elapsed = std::time::Duration::ZERO;
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let (store, hot, barrier) = (&store, &hot, &barrier);
                            s.spawn(move || {
                                barrier.wait();
                                for _ in 0..per_thread {
                                    std::hint::black_box(store.read_latest(hot));
                                }
                            })
                        })
                        .collect();
                    barrier.wait();
                    let t0 = std::time::Instant::now();
                    for h in handles {
                        h.join().unwrap();
                    }
                    // Aggregate: wall time covers threads×per_thread reads,
                    // scaled back to the `iters` criterion asked for.
                    elapsed = t0.elapsed() / threads as u32;
                });
                elapsed
            })
        });
    }
    g.finish();
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring");
    let part = Partitioner::for_max_nodes(1_000); // 100k vnodes
    let w = PaperWorkload::new();
    let mut i = 0u64;
    g.throughput(Throughput::Elements(1));
    g.bench_function("locate_100k_vnodes", |b| {
        b.iter(|| {
            i += 1;
            part.locate(&w.key(i))
        })
    });

    g.bench_function("join_10th_node_900_vnodes", |b| {
        b.iter_batched(
            || {
                let mut m = VNodeMap::new(900, 3);
                for n in 0..9 {
                    m.join(NodeId(n));
                }
                m
            },
            |mut m| m.join(NodeId(9)),
            BatchSize::SmallInput,
        )
    });

    let mut m = VNodeMap::new(900, 3);
    for n in 0..9 {
        m.join(NodeId(n));
    }
    g.bench_function("encode_decode_900_vnodes", |b| {
        b.iter(|| VNodeMap::decode(&m.encode()).unwrap())
    });
    g.finish();
}

fn bench_quorum(c: &mut Criterion) {
    let mut g = c.benchmark_group("quorum");
    let replicas = vec![NodeId(0), NodeId(1), NodeId(2)];
    g.throughput(Throughput::Elements(1));
    g.bench_function("write_coordinator_3_replies", |b| {
        b.iter(|| {
            let mut wc = WriteCoordinator::new(replicas.clone(), 2);
            wc.on_reply(NodeId(0), ReplicaWriteResult::Ok);
            wc.on_reply(NodeId(1), ReplicaWriteResult::Ok);
            wc.on_reply(NodeId(2), ReplicaWriteResult::Ok)
        })
    });
    let values = vec![sedna_memstore::VersionedValue {
        ts: ts(5),
        value: Value::from("v"),
    }];
    g.bench_function("read_coordinator_3_equal_replies", |b| {
        b.iter(|| {
            let mut rc = ReadCoordinator::new(replicas.clone(), 2);
            rc.on_reply(NodeId(0), ReplicaRead::Values(values.clone()));
            rc.on_reply(NodeId(1), ReplicaRead::Values(values.clone()))
        })
    });
    g.finish();
}

fn bench_triggers(c: &mut Criterion) {
    use sedna_common::time::ManualClock;
    use sedna_triggers::LocalSink;
    use std::sync::Arc;

    let mut g = c.benchmark_group("triggers");
    let store = Arc::new(MemStore::new(StoreConfig::default()));
    let engine = TriggerEngine::new();
    let sink = LocalSink::new(Arc::clone(&store), NodeId(9), ManualClock::new());
    engine.register_job(
        &store,
        JobSpec::builder("bench")
            .input(MonitorScope::Table {
                dataset: "d".into(),
                table: "t".into(),
            })
            .action(FnAction(
                |_: &Key, _: &[sedna_memstore::VersionedValue], _: &mut sedna_triggers::Emits| {},
            ))
            .trigger_interval(0)
            .build(),
        0,
    );
    let keys: Vec<Key> = (0..1_000)
        .map(|i| {
            sedna_common::KeyPath::new("d", "t", format!("k{i}"))
                .unwrap()
                .encode()
        })
        .collect();
    let mut tick = 0u64;
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("scan_1k_dirty_rows", |b| {
        b.iter(|| {
            tick += 1;
            for k in &keys {
                store.write_latest(k, ts(tick), Value::from("v"));
            }
            engine.scan_once(&store, &sink, tick)
        })
    });
    g.finish();
}

fn bench_wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("persist");
    let path = std::env::temp_dir().join(format!("sedna-bench-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut wal = Wal::open(&path).unwrap();
    let w = PaperWorkload::new();
    let mut i = 0u64;
    g.throughput(Throughput::Elements(1));
    g.bench_function("wal_append_20b", |b| {
        b.iter(|| {
            i += 1;
            wal.append(&WalRecord::WriteLatest {
                key: w.key(i),
                ts: ts(i),
                value: w.value(),
                ctx: CausalContext::EMPTY,
            })
            .unwrap()
        })
    });
    wal.sync().unwrap();
    g.finish();
    let _ = std::fs::remove_file(&path);
}

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashing");
    let key = b"test-000000000000000";
    g.throughput(Throughput::Bytes(key.len() as u64));
    // black_box prevents the compiler from const-folding the literal key.
    g.bench_function("xxhash64_20b", |b| {
        b.iter(|| sedna_common::xxhash64(std::hint::black_box(key), 0))
    });
    g.bench_function("fnv1a64_20b", |b| {
        b.iter(|| sedna_common::fnv1a64(std::hint::black_box(key)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_memstore,
    bench_memstore_contended,
    bench_ring,
    bench_quorum,
    bench_triggers,
    bench_wal,
    bench_hashing
);
criterion_main!(benches);
