//! Rolling-window time series: windowed histograms and counter rates.
//!
//! The registry's counters and histograms are cumulative since process
//! start — fine for totals, useless for "what is the staleness lag *right
//! now*". This module keeps a short ring of fixed-width time windows so an
//! admin endpoint can serve percentiles and rates over the last N windows
//! and stale data ages out instead of dominating forever.
//!
//! Both types are `Mutex`-protected plain state (no atomics): they record
//! rare events (staleness detections, repair completions, periodic counter
//! samples), never the per-op hot path.

use std::collections::VecDeque;
use std::sync::Mutex;

use sedna_common::time::Micros;

use crate::hist::HistSnapshot;

/// A histogram over a rolling set of fixed-width time windows.
///
/// Samples land in the window covering their timestamp; windows older than
/// the retention horizon are pruned on every access, so a merged snapshot
/// only ever reflects the last `keep` windows.
pub struct WindowedHistogram {
    window_micros: u64,
    keep: usize,
    windows: Mutex<VecDeque<(Micros, HistSnapshot)>>,
}

impl WindowedHistogram {
    /// `keep` windows of `window_micros` each (`keep` is clamped to ≥ 1).
    pub fn new(window_micros: u64, keep: usize) -> WindowedHistogram {
        WindowedHistogram {
            window_micros: window_micros.max(1),
            keep: keep.max(1),
            windows: Mutex::new(VecDeque::new()),
        }
    }

    /// Width of one window.
    pub fn window_micros(&self) -> u64 {
        self.window_micros
    }

    fn window_start(&self, at: Micros) -> Micros {
        at - at % self.window_micros
    }

    fn prune(&self, q: &mut VecDeque<(Micros, HistSnapshot)>, now: Micros) {
        let horizon = self
            .window_start(now)
            .saturating_sub(self.window_micros * (self.keep as u64 - 1));
        // Expired windows are *usually* at the front, but a late sample
        // (timestamped before the current window) opens its entry at the
        // back — prune by window start everywhere, not just the front, so
        // the merged view never overcounts past the horizon.
        q.retain(|(start, _)| *start >= horizon);
    }

    /// Records one sample at time `now`.
    pub fn record(&self, now: Micros, v: u64) {
        let start = self.window_start(now);
        let mut q = self.windows.lock().unwrap();
        self.prune(&mut q, now);
        match q.back_mut() {
            Some((s, hist)) if *s == start => hist.record(v),
            _ => {
                let mut hist = HistSnapshot::default();
                hist.record(v);
                q.push_back((start, hist));
            }
        }
    }

    /// Merged snapshot over the retained (non-expired) windows.
    pub fn merged(&self, now: Micros) -> HistSnapshot {
        let mut q = self.windows.lock().unwrap();
        self.prune(&mut q, now);
        let mut out = HistSnapshot::default();
        for (_, hist) in q.iter() {
            out.merge(hist);
        }
        out
    }

    /// Retained windows oldest-first as `(window_start, snapshot)`.
    pub fn windows(&self, now: Micros) -> Vec<(Micros, HistSnapshot)> {
        let mut q = self.windows.lock().unwrap();
        self.prune(&mut q, now);
        q.iter().cloned().collect()
    }
}

/// Rate-of-change tracker for a cumulative counter.
///
/// Feed it periodic samples of a monotone counter; it retains samples
/// covering the last `keep` windows and derives the average rate over the
/// retained span.
pub struct RateTracker {
    window_micros: u64,
    keep: usize,
    samples: Mutex<VecDeque<(Micros, u64)>>,
}

impl RateTracker {
    /// Retains samples spanning `keep` windows of `window_micros` each.
    pub fn new(window_micros: u64, keep: usize) -> RateTracker {
        RateTracker {
            window_micros: window_micros.max(1),
            keep: keep.max(1),
            samples: Mutex::new(VecDeque::new()),
        }
    }

    fn prune(&self, q: &mut VecDeque<(Micros, u64)>, now: Micros) {
        let horizon = now.saturating_sub(self.window_micros * self.keep as u64);
        // Keep one sample at-or-before the horizon so the rate still covers
        // the full retained span.
        while q.len() > 1 && q[1].0 <= horizon {
            q.pop_front();
        }
    }

    /// Records the counter's cumulative `value` as observed at `now`.
    pub fn observe(&self, now: Micros, value: u64) {
        let mut q = self.samples.lock().unwrap();
        self.prune(&mut q, now);
        q.push_back((now, value));
    }

    /// Average events/second over the retained span (0.0 with < 2 samples
    /// or a non-monotone counter reading).
    pub fn rate_per_sec(&self, now: Micros) -> f64 {
        let mut q = self.samples.lock().unwrap();
        self.prune(&mut q, now);
        let (Some(&(t0, v0)), Some(&(t1, v1))) = (q.front(), q.back()) else {
            return 0.0;
        };
        if t1 <= t0 || v1 < v0 {
            return 0.0;
        }
        (v1 - v0) as f64 * 1_000_000.0 / (t1 - t0) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u64 = 1_000; // 1 ms windows for the tests

    #[test]
    fn samples_land_in_their_window_and_expire() {
        let wh = WindowedHistogram::new(W, 3);
        wh.record(100, 10);
        wh.record(1_100, 20);
        wh.record(2_100, 30);
        assert_eq!(wh.merged(2_100).count, 3);
        assert_eq!(wh.windows(2_100).len(), 3);
        // Advancing two windows expires the first two.
        let m = wh.merged(4_100);
        assert_eq!(m.count, 1);
        assert_eq!(m.min, 30);
        assert_eq!(m.max, 30);
        // Far future: everything expired.
        assert_eq!(wh.merged(50_000).count, 0);
    }

    #[test]
    fn merged_percentiles_cover_retained_windows() {
        let wh = WindowedHistogram::new(W, 4);
        for i in 0..100u64 {
            wh.record(i * 10, i + 1); // all within the first window
        }
        let m = wh.merged(500);
        assert_eq!(m.count, 100);
        assert_eq!(m.min, 1);
        assert_eq!(m.max, 100);
        assert!(m.percentile(0.5) >= 40 && m.percentile(0.5) <= 65);
    }

    #[test]
    fn out_of_order_samples_within_a_window_still_count() {
        let wh = WindowedHistogram::new(W, 2);
        wh.record(900, 1);
        wh.record(850, 2); // earlier in the same window
        assert_eq!(wh.merged(999).count, 2);
    }

    #[test]
    fn expiry_exactly_on_the_window_boundary() {
        // A sample at the very last microsecond of window [0, W) must
        // survive until `now` crosses the retention horizon *exactly*, and
        // drop at the first microsecond where its window start < horizon.
        let wh = WindowedHistogram::new(W, 2);
        wh.record(W - 1, 7);
        // now = 2W - 1: horizon = window_start(2W-1) - W = 0 → retained.
        assert_eq!(wh.merged(2 * W - 1).count, 1);
        // now = 2W exactly: horizon = 2W - W = W → window 0 expires. The
        // boundary microsecond itself already belongs to the next window.
        assert_eq!(wh.merged(2 * W).count, 0);
        // A sample recorded exactly on a boundary opens the *new* window.
        wh.record(3 * W, 9);
        let wins = wh.windows(3 * W);
        assert_eq!(wins.len(), 1);
        assert_eq!(wins[0].0, 3 * W);
        // …and is the newest window, retained through 4W - 1 but not 5W.
        assert_eq!(wh.merged(4 * W - 1).count, 1);
        assert_eq!(wh.merged(5 * W).count, 0);
    }

    #[test]
    fn snapshot_during_rotation_sees_exactly_the_retained_samples() {
        // Interleave records and merges around a rotation: a merge taken
        // right after the first sample of a new window must count that
        // sample plus every unexpired older window — no double counting,
        // no premature expiry of the window being rotated away from.
        let wh = WindowedHistogram::new(W, 3);
        wh.record(10, 1); // window 0
        wh.record(W + 10, 2); // window 1
        assert_eq!(wh.merged(W + 10).count, 2);
        // First sample of window 2 — snapshot taken immediately.
        wh.record(2 * W, 3);
        let m = wh.merged(2 * W);
        assert_eq!(m.count, 3);
        assert_eq!(m.min, 1);
        assert_eq!(m.max, 3);
        // A late sample timestamped in window 1 still counts in window 1's
        // slot (a fresh entry keyed by its own window start) …
        wh.record(2 * W - 1, 4);
        assert_eq!(wh.merged(2 * W).count, 4);
        // … and expires on window 1's schedule, not window 2's.
        assert_eq!(wh.merged(4 * W).count, 1);
        assert_eq!(wh.merged(4 * W).max, 3);
    }

    #[test]
    fn late_sample_after_rotation_opens_a_fresh_window_entry() {
        // `record` matches only the *back* window; a sample older than the
        // back opens a new back entry keyed by its own window start. The
        // pruning horizon still applies to it on the next access.
        let wh = WindowedHistogram::new(W, 2);
        wh.record(3 * W + 1, 1); // window 3 (current)
        wh.record(2 * W + 1, 2); // late: window 2, pushed behind as new back
        let wins = wh.windows(3 * W + 1);
        assert_eq!(wins.len(), 2);
        assert_eq!(wins[0].0, 3 * W);
        assert_eq!(wins[1].0, 2 * W);
        assert_eq!(wh.merged(3 * W + 1).count, 2);
        // Advancing one window expires the late window-2 entry even though
        // it sits *behind* the window-3 entry in the deque — pruning is by
        // window start, wherever the entry sits.
        assert_eq!(wh.merged(4 * W).count, 1);
        assert_eq!(wh.merged(5 * W).count, 0);
    }

    #[test]
    fn rate_tracker_measures_deltas_and_prunes() {
        let rt = RateTracker::new(W, 2);
        rt.observe(0, 0);
        rt.observe(1_000, 100);
        rt.observe(2_000, 300);
        // 300 events over 2 ms → 150k/s.
        let r = rt.rate_per_sec(2_000);
        assert!((r - 150_000.0).abs() < 1.0, "rate={r}");
        // After pruning, only the most recent span counts.
        rt.observe(10_000, 400);
        let r = rt.rate_per_sec(10_000);
        assert!(r < 150_000.0, "rate={r}");
    }

    #[test]
    fn records_straddling_a_window_boundary_split_cleanly() {
        // Two samples one microsecond apart on either side of a boundary
        // belong to *different* windows: counted together while both are
        // retained, then expiring on their own schedules.
        let wh = WindowedHistogram::new(W, 2);
        wh.record(W - 1, 1); // last µs of window 0
        wh.record(W, 2); // first µs of window 1
        let wins = wh.windows(W);
        assert_eq!(wins.len(), 2);
        assert_eq!((wins[0].0, wins[1].0), (0, W));
        assert_eq!(wh.merged(W).count, 2);
        // Window 0 ages out first; window 1 follows one width later.
        assert_eq!(wh.merged(2 * W).count, 1);
        assert_eq!(wh.merged(2 * W).min, 2);
        assert_eq!(wh.merged(3 * W).count, 0);
    }

    #[test]
    fn idle_gap_leaves_fully_stale_windows_then_recovers() {
        // After an idle gap longer than the retention span, every window is
        // stale: the merged view must be empty (not the last pre-gap data)
        // and the first post-gap sample starts a fresh, correct view.
        let wh = WindowedHistogram::new(W, 3);
        wh.record(100, 11);
        wh.record(W + 100, 22);
        assert_eq!(wh.merged(W + 100).count, 2);
        // Gap of 100 windows with no records: all retained state is stale.
        let after_gap = 100 * W;
        assert_eq!(wh.merged(after_gap).count, 0);
        assert!(wh.windows(after_gap).is_empty());
        // Recovery: a new sample is the only thing the view reports.
        wh.record(after_gap + 5, 33);
        let m = wh.merged(after_gap + 5);
        assert_eq!((m.count, m.min, m.max), (1, 33, 33));
    }

    #[test]
    fn rate_over_empty_windows_is_zero_not_stale() {
        // A tracker whose samples have all aged past the horizon must
        // report 0.0 — not the last computed rate, and not a rate derived
        // from one surviving anchor sample.
        let rt = RateTracker::new(W, 2);
        rt.observe(0, 0);
        rt.observe(W, 500);
        assert!(rt.rate_per_sec(W) > 0.0);
        // Far future: pruning leaves at most one sample → no measurable
        // span → rate 0.0 instead of a division by a stale interval.
        assert_eq!(rt.rate_per_sec(100 * W), 0.0);
        // A lone post-gap sample pairs with the surviving pre-gap anchor:
        // the delta is real but diluted across the idle span.
        rt.observe(100 * W, 700);
        let diluted = rt.rate_per_sec(100 * W);
        assert!(diluted > 0.0 && diluted < 2_100.0, "diluted={diluted}");
        // Once newer samples push the stale anchor past the horizon, the
        // rate again reflects only the live span.
        rt.observe(101 * W, 1_700);
        rt.observe(102 * W, 2_700);
        let r = rt.rate_per_sec(102 * W);
        assert!((r - 1_000_000.0).abs() < 1.0, "rate={r}");
    }

    #[test]
    fn rate_tracker_degenerate_cases() {
        let rt = RateTracker::new(W, 4);
        assert_eq!(rt.rate_per_sec(0), 0.0);
        rt.observe(100, 5);
        assert_eq!(rt.rate_per_sec(100), 0.0); // single sample
        rt.observe(200, 3); // counter reset (non-monotone)
        assert_eq!(rt.rate_per_sec(200), 0.0);
    }
}
