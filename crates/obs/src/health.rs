//! Red/amber/green health rollup over the alert engine.
//!
//! `/health` is the one-glance operator surface: a single RAG status
//! derived from every SLO's alert phase, plus the per-SLO detail needed to
//! see *why* the cluster is amber or red without scraping `/metrics`.
//! Rollup rule: any Firing alert → **red**; otherwise any Pending alert →
//! **amber**; otherwise **green**. The mapping is deliberately boring —
//! operators should never have to reverse-engineer a scoring formula
//! during an incident.

use std::fmt;

use sedna_common::time::Micros;

use crate::alert::{AlertEngine, AlertPhase, AlertView};

/// The rollup status.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rag {
    /// Every SLO is Ok.
    Green,
    /// At least one SLO is Pending (burning, not yet paged).
    Amber,
    /// At least one SLO is Firing.
    Red,
}

impl Rag {
    /// Lower-case name used in JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Rag::Green => "green",
            Rag::Amber => "amber",
            Rag::Red => "red",
        }
    }
}

impl fmt::Display for Rag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Point-in-time health report: the rollup plus every SLO's view.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Evaluation time.
    pub at: Micros,
    /// The rollup.
    pub status: Rag,
    /// Every SLO, firing first, then pending, then ok.
    pub alerts: Vec<AlertView>,
}

impl HealthReport {
    /// Builds a report from the engine's current state.
    pub fn from_engine(engine: &AlertEngine, now: Micros) -> HealthReport {
        HealthReport::from_alerts(now, engine.alerts(now))
    }

    /// Builds a report from pre-fetched alert views.
    pub fn from_alerts(now: Micros, mut alerts: Vec<AlertView>) -> HealthReport {
        let rank = |p: AlertPhase| match p {
            AlertPhase::Firing => 0u8,
            AlertPhase::Pending => 1,
            AlertPhase::Ok => 2,
        };
        alerts.sort_by_key(|a| rank(a.phase));
        let status = match alerts.iter().map(|a| a.phase).max_by_key(|p| 2 - rank(*p)) {
            Some(AlertPhase::Firing) => Rag::Red,
            Some(AlertPhase::Pending) => Rag::Amber,
            _ => Rag::Green,
        };
        HealthReport {
            at: now,
            status,
            alerts,
        }
    }

    /// Names of firing alerts.
    pub fn firing(&self) -> Vec<&'static str> {
        self.alerts
            .iter()
            .filter(|a| a.phase == AlertPhase::Firing)
            .map(|a| a.slo)
            .collect()
    }

    /// JSON rendering for the admin surface.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"status\":\"{}\",\"at_micros\":{},\"firing\":[",
            self.status, self.at
        );
        for (i, name) in self.firing().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(name));
        }
        out.push_str("],\"alerts\":[");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_alert_json(&mut out, a);
        }
        out.push_str("]}");
        out
    }
}

/// One alert view as a JSON object (shared by `/health` and `/alerts`).
pub fn render_alert_json(out: &mut String, a: &AlertView) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"slo\":\"{}\",\"help\":\"{}\",\"objective\":\"{}\",\
         \"phase\":\"{}\",\"since_micros\":{},\"short_burn\":{:.6},\
         \"long_burn\":{:.6},\"samples\":{},\"last_value\":{:.3},\
         \"trace\":\"{:#x}\",\"fired_total\":{}}}",
        json_escape(a.slo),
        json_escape(a.help),
        a.objective,
        a.phase,
        a.since,
        a.short_burn,
        a.long_burn,
        a.samples,
        a.last_value,
        a.trace,
        a.fired_total,
    );
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::{Objective, SloSpec};

    fn view(slo: &'static str, phase: AlertPhase) -> AlertView {
        AlertView {
            slo,
            help: "h",
            objective: Objective::AtMost(1.0),
            phase,
            since: 5,
            short_burn: 0.0,
            long_burn: 0.0,
            samples: 0,
            last_value: 0.0,
            trace: 0,
            fired_total: 0,
        }
    }

    #[test]
    fn rollup_prefers_worst_phase() {
        let r = HealthReport::from_alerts(1, vec![view("a", AlertPhase::Ok)]);
        assert_eq!(r.status, Rag::Green);
        let r = HealthReport::from_alerts(
            1,
            vec![view("a", AlertPhase::Ok), view("b", AlertPhase::Pending)],
        );
        assert_eq!(r.status, Rag::Amber);
        let r = HealthReport::from_alerts(
            1,
            vec![
                view("a", AlertPhase::Ok),
                view("b", AlertPhase::Pending),
                view("c", AlertPhase::Firing),
            ],
        );
        assert_eq!(r.status, Rag::Red);
        // Worst-first ordering for the rendered detail.
        assert_eq!(r.alerts[0].slo, "c");
        assert_eq!(r.firing(), vec!["c"]);
    }

    #[test]
    fn empty_engine_is_green() {
        let engine = AlertEngine::new(Vec::new(), None);
        let r = HealthReport::from_engine(&engine, 0);
        assert_eq!(r.status, Rag::Green);
        assert!(r.alerts.is_empty());
    }

    #[test]
    fn json_is_well_formed_and_names_the_firing_alert() {
        let engine = AlertEngine::new(
            vec![SloSpec::zero_tolerance("lost_writes", "no lost writes")],
            None,
        );
        let r = HealthReport::from_engine(&engine, 9);
        let json = r.render_json();
        assert!(json.starts_with("{\"status\":\"green\""), "{json}");
        assert!(json.contains("\"slo\":\"lost_writes\""), "{json}");
        assert!(json.contains("\"objective\":\"<= 0.5\""), "{json}");
        let fired = HealthReport::from_alerts(3, vec![view("deg", AlertPhase::Firing)]);
        let json = fired.render_json();
        assert!(json.contains("\"status\":\"red\""), "{json}");
        assert!(json.contains("\"firing\":[\"deg\"]"), "{json}");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
