//! In-process SLO engine: declarative objectives, multi-window burn-rate
//! evaluation, and a pending → firing → resolved alert state machine.
//!
//! "Using Weaker Consistency Models with Monitoring and Recovery" argues a
//! weakly-consistent store is only operable when divergence is *monitored*
//! and breaches trigger *recovery*. This module is the monitoring half: each
//! [`SloSpec`] declares an objective over a measured signal (op latency,
//! staleness age, degraded-read ratio, divergence age), every sample is
//! classified good/bad against the objective, and the classified stream is
//! kept in two rolling windows (short + long). An alert *burns* when the
//! bad-sample fraction exceeds the spec's burn threshold in **both**
//! windows — the classic multi-window burn-rate rule: the long window
//! proves the breach is sustained, the short window proves it is still
//! happening (so alerts resolve promptly once the signal recovers).
//!
//! State machine per SLO:
//!
//! ```text
//!        burn ≥ thr (both windows)          burning for pending_for
//!   Ok ────────────────────────▶ Pending ───────────────────────▶ Firing
//!    ▲                             │                                │
//!    └──── burn clears ◀───────────┘      clean for resolve_after   │
//!    └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Transitions into Firing append an [`EventKind::Alert`] to the journal
//! and trigger a flight-recorder dump ([`flight::note_anomaly`]) carrying
//! the most recent breaching sample's trace, so a fired alert is
//! post-mortemable down to a concrete slow/degraded operation.
//!
//! Like the rest of the crate this module is dependency-free and safe to
//! call from any thread; observation takes two short mutex locks (the
//! rolling windows), evaluation is rate-limited internally.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sedna_common::time::Micros;

use crate::flight;
use crate::journal::{EventJournal, EventKind};
use crate::window::WindowedHistogram;

/// What a measured sample is compared against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Objective {
    /// Sample is good when `value <= bound` (latencies, ages, ratios).
    AtMost(f64),
    /// Sample is good when `value >= bound` (availability-style signals).
    AtLeast(f64),
}

impl Objective {
    /// True when `value` violates the objective.
    pub fn is_bad(&self, value: f64) -> bool {
        match *self {
            Objective::AtMost(bound) => value > bound,
            Objective::AtLeast(bound) => value < bound,
        }
    }

    /// The numeric bound, for rendering.
    pub fn bound(&self) -> f64 {
        match *self {
            Objective::AtMost(b) | Objective::AtLeast(b) => b,
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::AtMost(b) => write!(f, "<= {b}"),
            Objective::AtLeast(b) => write!(f, ">= {b}"),
        }
    }
}

/// Phase of one SLO's alert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertPhase {
    /// Objective met (or not enough data to say otherwise).
    Ok,
    /// Burning, but not yet for long enough to page.
    Pending,
    /// Sustained burn: the alert has fired and has not yet resolved.
    Firing,
}

impl AlertPhase {
    /// Lower-case name used in journal events and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            AlertPhase::Ok => "ok",
            AlertPhase::Pending => "pending",
            AlertPhase::Firing => "firing",
        }
    }
}

impl fmt::Display for AlertPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One declarative service-level objective.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Stable identifier (`read_p99`, `divergence_age`, …).
    pub name: &'static str,
    /// One-line human description, rendered on `/alerts` and `/health`.
    pub help: &'static str,
    /// Good/bad classification for each observed sample.
    pub objective: Objective,
    /// Short ("is it still happening") rolling window.
    pub short_window_micros: u64,
    /// Long ("is it sustained") rolling window.
    pub long_window_micros: u64,
    /// Bad-sample fraction that counts as burning; must hold in *both*
    /// windows. `0.01` ≈ a p99 target, `0.05` ≈ a 5% degraded-read budget.
    pub burn_threshold: f64,
    /// Minimum samples in the long window before the SLO can burn — a
    /// single bad op right after startup must not page.
    pub min_samples: u64,
    /// How long the burn must persist before Pending promotes to Firing.
    pub pending_for_micros: u64,
    /// How long the burn must stay clear before Firing resolves.
    pub resolve_after_micros: u64,
}

impl SloSpec {
    fn base(name: &'static str, help: &'static str, objective: Objective) -> SloSpec {
        SloSpec {
            name,
            help,
            objective,
            short_window_micros: 5_000_000,
            long_window_micros: 30_000_000,
            burn_threshold: 0.5,
            min_samples: 8,
            pending_for_micros: 2_000_000,
            resolve_after_micros: 5_000_000,
        }
    }

    /// p99-style latency target: fires when more than 1% of ops in both
    /// windows exceed `target_micros`.
    pub fn p99_latency(name: &'static str, help: &'static str, target_micros: u64) -> SloSpec {
        SloSpec {
            burn_threshold: 0.01,
            min_samples: 200,
            ..SloSpec::base(name, help, Objective::AtMost(target_micros as f64))
        }
    }

    /// Staleness-age bound over detected replica lags: fires when most
    /// detected lags in both windows are older than `max_age_micros`.
    pub fn staleness_age(name: &'static str, help: &'static str, max_age_micros: u64) -> SloSpec {
        SloSpec::base(name, help, Objective::AtMost(max_age_micros as f64))
    }

    /// Degraded-read ratio: feed `1.0` per degraded and `0.0` per clean
    /// read; fires when the degraded fraction exceeds `max_ratio` in both
    /// windows.
    pub fn degraded_ratio(name: &'static str, help: &'static str, max_ratio: f64) -> SloSpec {
        SloSpec {
            burn_threshold: max_ratio,
            min_samples: 50,
            ..SloSpec::base(name, help, Objective::AtMost(0.5))
        }
    }

    /// Divergence-age bound: feed the age of the oldest unresolved Merkle
    /// root mismatch on every stats tick; fires when replicas stay
    /// divergent longer than `max_age_micros`.
    pub fn divergence_age(name: &'static str, help: &'static str, max_age_micros: u64) -> SloSpec {
        SloSpec {
            min_samples: 4,
            ..SloSpec::base(name, help, Objective::AtMost(max_age_micros as f64))
        }
    }

    /// Zero-tolerance objective: any single bad sample burns (used for
    /// "this must never happen" signals like checker-visible lost writes).
    pub fn zero_tolerance(name: &'static str, help: &'static str) -> SloSpec {
        SloSpec {
            burn_threshold: 0.0,
            min_samples: 1,
            pending_for_micros: 0,
            ..SloSpec::base(name, help, Objective::AtMost(0.5))
        }
    }
}

/// One recorded phase transition (bounded log, newest kept).
#[derive(Clone, Debug)]
pub struct AlertTransition {
    /// When the transition happened.
    pub at: Micros,
    /// Which SLO.
    pub slo: &'static str,
    /// Phase before.
    pub from: AlertPhase,
    /// Phase after.
    pub to: AlertPhase,
    /// Bad-sample fraction in the short window at transition time.
    pub short_burn: f64,
    /// Bad-sample fraction in the long window at transition time.
    pub long_burn: f64,
    /// Most recent breaching sample's value.
    pub last_value: f64,
    /// Most recent breaching sample's trace (0 when untraced).
    pub trace: u64,
}

/// Point-in-time view of one SLO, for `/alerts` and `/health`.
#[derive(Clone, Debug)]
pub struct AlertView {
    /// Which SLO.
    pub slo: &'static str,
    /// The spec's one-line description.
    pub help: &'static str,
    /// The declared objective.
    pub objective: Objective,
    /// Current phase.
    pub phase: AlertPhase,
    /// When the current phase was entered (0 = never left Ok).
    pub since: Micros,
    /// Bad fraction in the short window.
    pub short_burn: f64,
    /// Bad fraction in the long window.
    pub long_burn: f64,
    /// Samples currently in the long window.
    pub samples: u64,
    /// Most recent breaching sample's value.
    pub last_value: f64,
    /// Most recent breaching sample's trace (0 when untraced).
    pub trace: u64,
    /// Times this alert has fired since process start.
    pub fired_total: u64,
}

struct SloState {
    phase: AlertPhase,
    phase_since: Micros,
    /// Last evaluation time at which the burn condition did NOT hold.
    last_clear: Micros,
    /// Last evaluation time at which the burn condition held.
    last_burning: Micros,
    last_value: f64,
    trace: u64,
    fired_total: u64,
}

struct SloEntry {
    spec: SloSpec,
    short: WindowedHistogram,
    long: WindowedHistogram,
    state: Mutex<SloState>,
}

/// How many sub-windows each rolling window is divided into: finer
/// subdivision makes the window roll smoothly instead of resetting on
/// window boundaries.
const SUB_WINDOWS: usize = 5;

/// Minimum spacing between full evaluations — callers may invoke
/// [`AlertEngine::evaluate`] from every stats tick of every node; the
/// engine coalesces them.
const EVAL_INTERVAL_MICROS: u64 = 50_000;

/// Retained transitions (oldest evicted).
const TRANSITION_CAP: usize = 256;

/// The engine: a fixed set of SLOs fed by observation calls and advanced
/// by periodic evaluation. One engine is shared per cluster.
pub struct AlertEngine {
    slos: Vec<SloEntry>,
    enabled: AtomicBool,
    last_eval: AtomicU64,
    transitions: Mutex<Vec<AlertTransition>>,
    journal: Option<Arc<EventJournal>>,
}

impl AlertEngine {
    /// Engine over `specs`; alert transitions will also be appended to
    /// `journal` when one is supplied.
    pub fn new(specs: Vec<SloSpec>, journal: Option<Arc<EventJournal>>) -> AlertEngine {
        let slos = specs
            .into_iter()
            .map(|spec| {
                let sub = |w: u64| (w / SUB_WINDOWS as u64).max(1);
                SloEntry {
                    short: WindowedHistogram::new(sub(spec.short_window_micros), SUB_WINDOWS),
                    long: WindowedHistogram::new(sub(spec.long_window_micros), SUB_WINDOWS),
                    state: Mutex::new(SloState {
                        phase: AlertPhase::Ok,
                        phase_since: 0,
                        last_clear: 0,
                        last_burning: 0,
                        last_value: 0.0,
                        trace: 0,
                        fired_total: 0,
                    }),
                    spec,
                }
            })
            .collect();
        AlertEngine {
            slos,
            enabled: AtomicBool::new(true),
            last_eval: AtomicU64::new(0),
            transitions: Mutex::new(Vec::new()),
            journal,
        }
    }

    /// The default Sedna SLO set; bounds are generous enough that a healthy
    /// cluster under the stock nemesis profile never burns.
    pub fn default_specs() -> Vec<SloSpec> {
        vec![
            SloSpec::p99_latency("read_p99", "p99 read latency within 50ms", 50_000),
            SloSpec::p99_latency("write_p99", "p99 write latency within 50ms", 50_000),
            SloSpec::staleness_age(
                "staleness_age",
                "detected replica lag younger than 10s",
                10_000_000,
            ),
            SloSpec::degraded_ratio(
                "degraded_reads",
                "session-floor degraded reads below 5% of reads",
                0.05,
            ),
            SloSpec::divergence_age(
                "divergence_age",
                "oldest unresolved merkle root mismatch younger than 15s",
                15_000_000,
            ),
            // Timestamp-shadowed client writes: a replica answering
            // `Outdated` to a fresh client write means a concurrent update
            // was silently dominated by wall-clock order — the lost-update
            // signature of legacy (non-DVV) timestamps under skew. DVV
            // clusters only produce these on duplicate deliveries, so a
            // small budget separates the two cleanly.
            SloSpec::degraded_ratio(
                "lost_writes",
                "timestamp-shadowed (potentially lost) writes below 2% of writes",
                0.02,
            ),
        ]
    }

    /// Turns recording and evaluation on/off (off: observes and evaluates
    /// become near-no-ops; existing state freezes).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the engine is recording.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn entry(&self, slo: &str) -> Option<&SloEntry> {
        self.slos.iter().find(|e| e.spec.name == slo)
    }

    /// Records one measured sample for `slo`. Unknown names are ignored
    /// (callers may observe into engines configured without that SLO).
    pub fn observe(&self, now: Micros, slo: &str, value: f64) {
        self.observe_traced(now, slo, value, 0);
    }

    /// [`observe`](AlertEngine::observe) carrying the trace of the
    /// operation behind the sample, kept as the alert's exemplar when the
    /// sample breaches.
    pub fn observe_traced(&self, now: Micros, slo: &str, value: f64, trace: u64) {
        if !self.enabled() {
            return;
        }
        let Some(e) = self.entry(slo) else { return };
        let bad = e.spec.objective.is_bad(value);
        let sample = u64::from(bad);
        e.short.record(now, sample);
        e.long.record(now, sample);
        if bad {
            let mut st = e.state.lock().unwrap();
            st.last_value = value;
            if trace != 0 {
                st.trace = trace;
            }
        }
    }

    /// Advances every SLO's state machine. Cheap to call often — full
    /// evaluations are spaced at least [`EVAL_INTERVAL_MICROS`] apart.
    /// Returns the transitions that happened in this evaluation.
    pub fn evaluate(&self, now: Micros) -> Vec<AlertTransition> {
        if !self.enabled() {
            return Vec::new();
        }
        let last = self.last_eval.load(Ordering::Relaxed);
        if now < last.saturating_add(EVAL_INTERVAL_MICROS)
            || self
                .last_eval
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            return Vec::new();
        }
        let mut out = Vec::new();
        for e in &self.slos {
            if let Some(t) = self.eval_one(e, now) {
                out.push(t);
            }
        }
        if !out.is_empty() {
            let mut log = self.transitions.lock().unwrap();
            for t in &out {
                if log.len() == TRANSITION_CAP {
                    log.remove(0);
                }
                log.push(t.clone());
            }
        }
        out
    }

    fn burns(&self, e: &SloEntry, now: Micros) -> (f64, f64, u64) {
        let s = e.short.merged(now);
        let l = e.long.merged(now);
        let frac = |sum: u64, count: u64| {
            if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            }
        };
        (frac(s.sum, s.count), frac(l.sum, l.count), l.count)
    }

    fn eval_one(&self, e: &SloEntry, now: Micros) -> Option<AlertTransition> {
        let (short_burn, long_burn, samples) = self.burns(e, now);
        let burning = samples >= e.spec.min_samples
            && short_burn > e.spec.burn_threshold
            && long_burn > e.spec.burn_threshold;
        let mut st = e.state.lock().unwrap();
        if burning {
            st.last_burning = now;
        } else {
            st.last_clear = now;
        }
        let next = match st.phase {
            AlertPhase::Ok if burning => Some(AlertPhase::Pending),
            AlertPhase::Pending if !burning => Some(AlertPhase::Ok),
            AlertPhase::Pending
                if now.saturating_sub(st.phase_since) >= e.spec.pending_for_micros =>
            {
                Some(AlertPhase::Firing)
            }
            AlertPhase::Firing
                if !burning
                    && now.saturating_sub(st.last_burning) >= e.spec.resolve_after_micros =>
            {
                Some(AlertPhase::Ok)
            }
            _ => None,
        }?;
        let from = st.phase;
        st.phase = next;
        st.phase_since = now;
        if next == AlertPhase::Firing {
            st.fired_total += 1;
        }
        let t = AlertTransition {
            at: now,
            slo: e.spec.name,
            from,
            to: next,
            short_burn,
            long_burn,
            last_value: st.last_value,
            trace: st.trace,
        };
        drop(st);
        if let Some(j) = &self.journal {
            j.push(
                now,
                EventKind::Alert {
                    slo: t.slo,
                    from: t.from.name(),
                    to: t.to.name(),
                    trace: t.trace,
                },
            );
        }
        if next == AlertPhase::Firing {
            // Freeze the hot-path rings: a fired SLO is an anomaly worth a
            // black-box dump, keyed by the breaching sample's trace.
            flight::note_anomaly(&format!("alert:{}", t.slo), t.trace);
        }
        Some(t)
    }

    /// Point-in-time view of every SLO.
    pub fn alerts(&self, now: Micros) -> Vec<AlertView> {
        self.slos
            .iter()
            .map(|e| {
                let (short_burn, long_burn, samples) = self.burns(e, now);
                let st = e.state.lock().unwrap();
                AlertView {
                    slo: e.spec.name,
                    help: e.spec.help,
                    objective: e.spec.objective,
                    phase: st.phase,
                    since: st.phase_since,
                    short_burn,
                    long_burn,
                    samples,
                    last_value: st.last_value,
                    trace: st.trace,
                    fired_total: st.fired_total,
                }
            })
            .collect()
    }

    /// The bounded transition log, oldest first.
    pub fn transitions(&self) -> Vec<AlertTransition> {
        self.transitions.lock().unwrap().clone()
    }

    /// Total times any alert has entered Firing.
    pub fn fired_total(&self) -> u64 {
        self.slos
            .iter()
            .map(|e| e.state.lock().unwrap().fired_total)
            .sum()
    }

    /// Names of currently-firing alerts.
    pub fn firing(&self, now: Micros) -> Vec<&'static str> {
        self.alerts(now)
            .into_iter()
            .filter(|a| a.phase == AlertPhase::Firing)
            .map(|a| a.slo)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> SloSpec {
        SloSpec {
            short_window_micros: 1_000_000,
            long_window_micros: 4_000_000,
            burn_threshold: 0.5,
            min_samples: 4,
            pending_for_micros: 500_000,
            resolve_after_micros: 1_000_000,
            ..SloSpec::base("lat", "test latency", Objective::AtMost(100.0))
        }
    }

    /// Steps time past the internal evaluation rate limit.
    fn step(engine: &AlertEngine, mut now: Micros, until: Micros) -> Vec<AlertTransition> {
        let mut out = Vec::new();
        while now <= until {
            out.extend(engine.evaluate(now));
            now += EVAL_INTERVAL_MICROS;
        }
        out
    }

    #[test]
    fn healthy_signal_never_leaves_ok() {
        let engine = AlertEngine::new(vec![quick_spec()], None);
        for i in 0..100u64 {
            engine.observe(i * 10_000, "lat", 50.0);
        }
        let trans = step(&engine, 0, 1_000_000);
        assert!(trans.is_empty(), "{trans:?}");
        assert_eq!(engine.alerts(1_000_000)[0].phase, AlertPhase::Ok);
    }

    #[test]
    fn sustained_breach_walks_ok_pending_firing_then_resolves() {
        let engine = AlertEngine::new(vec![quick_spec()], None);
        let mut now = 0u64;
        // Sustained breach: every sample above target.
        while now < 2_000_000 {
            engine.observe_traced(now, "lat", 500.0, 0xBEEF);
            engine.evaluate(now);
            now += EVAL_INTERVAL_MICROS;
        }
        let a = &engine.alerts(now)[0];
        assert_eq!(a.phase, AlertPhase::Firing, "{a:?}");
        assert_eq!(a.trace, 0xBEEF);
        assert_eq!(a.fired_total, 1);
        // Recovery: good samples until the short window drains and the
        // resolve hold-down passes.
        while now < 12_000_000 {
            engine.observe(now, "lat", 10.0);
            engine.evaluate(now);
            now += EVAL_INTERVAL_MICROS;
        }
        assert_eq!(engine.alerts(now)[0].phase, AlertPhase::Ok);
        let trans = engine.transitions();
        let phases: Vec<(AlertPhase, AlertPhase)> = trans.iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            phases,
            vec![
                (AlertPhase::Ok, AlertPhase::Pending),
                (AlertPhase::Pending, AlertPhase::Firing),
                (AlertPhase::Firing, AlertPhase::Ok),
            ]
        );
    }

    #[test]
    fn short_blip_clears_from_pending_without_firing() {
        let engine = AlertEngine::new(vec![quick_spec()], None);
        // One burst of bad samples, then silence: the short window drains
        // and Pending must fall back to Ok, never Firing.
        for i in 0..10u64 {
            engine.observe(i * 1_000, "lat", 500.0);
        }
        engine.evaluate(100_000);
        assert_eq!(engine.alerts(100_000)[0].phase, AlertPhase::Pending);
        // Good samples dilute both windows below the threshold well before
        // the pending_for deadline (500ms): Pending must clear to Ok.
        let mut now = 110_000u64;
        while now < 6_000_000 {
            engine.observe(now, "lat", 10.0);
            engine.evaluate(now);
            now += 10_000;
        }
        assert_eq!(engine.alerts(now)[0].phase, AlertPhase::Ok);
        assert_eq!(engine.fired_total(), 0);
    }

    #[test]
    fn min_samples_gate_blocks_startup_noise() {
        let engine = AlertEngine::new(vec![quick_spec()], None);
        engine.observe(0, "lat", 10_000.0); // one terrible sample
        engine.evaluate(60_000);
        assert_eq!(engine.alerts(60_000)[0].phase, AlertPhase::Ok);
    }

    #[test]
    fn degraded_ratio_burn_equals_bad_fraction() {
        let spec = SloSpec {
            short_window_micros: 1_000_000,
            long_window_micros: 2_000_000,
            ..SloSpec::degraded_ratio("deg", "test", 0.05)
        };
        let engine = AlertEngine::new(vec![spec], None);
        // 10% degraded over 100 reads: above the 5% budget.
        for i in 0..100u64 {
            let v = if i % 10 == 0 { 1.0 } else { 0.0 };
            engine.observe(i * 1_000, "deg", v);
        }
        engine.evaluate(150_000);
        let a = &engine.alerts(150_000)[0];
        assert!((a.long_burn - 0.10).abs() < 1e-9, "{a:?}");
        assert_eq!(a.phase, AlertPhase::Pending);
    }

    #[test]
    fn firing_appends_to_journal_and_dumps_flight() {
        let _g = crate::flight::test_lock();
        let journal = Arc::new(EventJournal::new(16));
        let spec = SloSpec {
            pending_for_micros: 0,
            ..quick_spec()
        };
        let engine = AlertEngine::new(vec![spec], Some(Arc::clone(&journal)));
        crate::flight::set_enabled(true);
        crate::flight::reset_anomaly();
        let mut now = 0u64;
        while now < 1_000_000 {
            engine.observe_traced(now, "lat", 999.0, 0xCAFE);
            engine.evaluate(now);
            now += EVAL_INTERVAL_MICROS;
        }
        assert!(!engine.firing(now).is_empty());
        let text = journal.render_text();
        assert!(text.contains("alert lat"), "{text}");
        assert!(text.contains("firing"), "{text}");
        let dump = crate::flight::last_anomaly().expect("firing dumps flight");
        assert!(dump.reason.contains("alert:lat"), "{}", dump.reason);
    }

    #[test]
    fn disabled_engine_is_inert() {
        let engine = AlertEngine::new(vec![quick_spec()], None);
        engine.set_enabled(false);
        for i in 0..100u64 {
            engine.observe(i * 10_000, "lat", 9_999.0);
        }
        assert!(step(&engine, 0, 3_000_000).is_empty());
        assert_eq!(engine.alerts(3_000_000)[0].phase, AlertPhase::Ok);
    }

    #[test]
    fn unknown_slo_names_are_ignored() {
        let engine = AlertEngine::new(vec![quick_spec()], None);
        engine.observe(0, "nope", 1.0); // must not panic
        assert_eq!(engine.alerts(0).len(), 1);
    }
}
