//! Per-operation trace spans.
//!
//! Every client op is assigned a [`TraceId`](sedna_common::ids::TraceId)
//! that rides in the replica frames (including `Batch` sub-ops), so one
//! quorum write/read becomes a reconstructable span tree:
//!
//! ```text
//! issue ─┬─ rpc(replica a) ── node-apply(a) ┐
//!        ├─ rpc(replica b) ── node-apply(b) ┼─ quorum-assembly ── read-repair*
//!        └─ rpc(replica c) ── node-apply(c) ┘
//! ```
//!
//! The client owns the tree: it opens an RPC span per replica send, closes
//! it on the ack (which carries the node's measured shard-lock hold time),
//! marks the assembly point when the quorum decides, and appends a repair
//! span per read-recovery push. Traces whose total latency crosses the
//! configured slow-op threshold are promoted — spans and all — into the
//! [`EventJournal`](crate::journal::EventJournal).

use std::collections::HashMap;

use sedna_common::ids::{NodeId, TraceId};
use sedna_common::time::Micros;

/// What a span measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// The client issued the op (instantaneous).
    Issue,
    /// One replica round trip: frame send → ack receipt.
    ReplicaRpc {
        /// The replica this leg targeted.
        replica: NodeId,
    },
    /// The node-side apply inside the RPC; `nanos` is the measured
    /// shard-lock hold time reported back in the ack, `lock_nanos` how
    /// long the apply *waited* for contended shard locks before that.
    NodeApply {
        /// The replica that applied.
        replica: NodeId,
        /// Wall-clock nanoseconds the shard lock was held.
        nanos: u64,
        /// Wall-clock nanoseconds spent waiting on contended shard locks
        /// within the apply (0 when every acquisition was uncontended).
        lock_nanos: u64,
    },
    /// The quorum decision point (R or W acks assembled).
    QuorumAssembly,
    /// A read-recovery push sent to a lagging replica.
    ReadRepair {
        /// The replica being repaired.
        replica: NodeId,
    },
}

/// One timed span within a trace. Times are the runtime's clock (virtual
/// micros on the simulator, wall micros on the threaded runtime).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// What this span measures.
    pub kind: SpanKind,
    /// Span start.
    pub start: Micros,
    /// Span end (equal to `start` for instantaneous marks).
    pub end: Micros,
}

struct ActiveTrace {
    issued_at: Micros,
    spans: Vec<Span>,
    open_rpc: HashMap<NodeId, Micros>,
}

/// A completed trace: the full span tree plus its end-to-end latency.
#[derive(Clone, Debug)]
pub struct FinishedTrace {
    /// The trace.
    pub trace: TraceId,
    /// End-to-end client latency.
    pub total_micros: Micros,
    /// All recorded spans, in recording order.
    pub spans: Vec<Span>,
}

/// Client-side trace bookkeeping: assigns ids, accumulates spans, and
/// watches for duplicate completions (a correctness invariant checked by
/// the chaos test).
pub struct TraceTracker {
    origin: u64,
    next_seq: u64,
    active: HashMap<TraceId, ActiveTrace>,
    completed: u64,
    duplicates: u64,
    seen: std::collections::HashSet<TraceId>,
}

impl TraceTracker {
    /// Tracker for a client whose actor id is `origin` (folded into the
    /// high bits of every issued [`TraceId`] for cluster-wide uniqueness).
    pub fn new(origin: u64) -> TraceTracker {
        TraceTracker {
            origin,
            next_seq: 0,
            active: HashMap::new(),
            completed: 0,
            duplicates: 0,
            seen: std::collections::HashSet::new(),
        }
    }

    /// Starts a new trace at `now`, recording the issue mark.
    pub fn begin(&mut self, now: Micros) -> TraceId {
        let trace = TraceId::compose(self.origin, self.next_seq);
        self.next_seq += 1;
        self.active.insert(
            trace,
            ActiveTrace {
                issued_at: now,
                spans: vec![Span {
                    kind: SpanKind::Issue,
                    start: now,
                    end: now,
                }],
                open_rpc: HashMap::new(),
            },
        );
        trace
    }

    /// Marks a frame sent to `replica` (opens the RPC span).
    pub fn sent(&mut self, trace: TraceId, replica: NodeId, now: Micros) {
        if let Some(t) = self.active.get_mut(&trace) {
            t.open_rpc.insert(replica, now);
        }
    }

    /// Marks the ack from `replica` (closes the RPC span and records the
    /// node's reported apply and lock-wait times).
    pub fn acked(
        &mut self,
        trace: TraceId,
        replica: NodeId,
        now: Micros,
        apply_nanos: u64,
        lock_nanos: u64,
    ) {
        if let Some(t) = self.active.get_mut(&trace) {
            let start = t.open_rpc.remove(&replica).unwrap_or(now);
            t.spans.push(Span {
                kind: SpanKind::ReplicaRpc { replica },
                start,
                end: now,
            });
            t.spans.push(Span {
                kind: SpanKind::NodeApply {
                    replica,
                    nanos: apply_nanos,
                    lock_nanos,
                },
                start: now,
                end: now,
            });
        }
    }

    /// Marks the quorum decision point.
    pub fn assembled(&mut self, trace: TraceId, now: Micros) {
        if let Some(t) = self.active.get_mut(&trace) {
            t.spans.push(Span {
                kind: SpanKind::QuorumAssembly,
                start: now,
                end: now,
            });
        }
    }

    /// Marks a read-recovery push to `replica`.
    pub fn repaired(&mut self, trace: TraceId, replica: NodeId, now: Micros) {
        if let Some(t) = self.active.get_mut(&trace) {
            t.spans.push(Span {
                kind: SpanKind::ReadRepair { replica },
                start: now,
                end: now,
            });
        }
    }

    /// Completes the trace and returns its span tree. Double completion is
    /// counted (never panics) — the chaos test asserts it stays at zero.
    pub fn finish(&mut self, trace: TraceId, now: Micros) -> Option<FinishedTrace> {
        if !self.seen.insert(trace) {
            self.duplicates += 1;
            return None;
        }
        // An orphan finish (no matching begin) is a no-op that must not
        // inflate the completed count — it still claims the id in `seen`
        // so a duplicate of the orphan is detected as such.
        let t = self.active.remove(&trace)?;
        self.completed += 1;
        Some(FinishedTrace {
            trace,
            total_micros: now.saturating_sub(t.issued_at),
            spans: t.spans,
        })
    }

    /// Number of traces completed exactly once.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Number of duplicate completions observed (should stay 0).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Traces issued but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_across_origins() {
        let mut a = TraceTracker::new(1);
        let mut b = TraceTracker::new(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(a.begin(0)));
            assert!(seen.insert(b.begin(0)));
        }
    }

    #[test]
    fn span_tree_covers_the_quorum_round_trip() {
        let mut t = TraceTracker::new(7);
        let id = t.begin(100);
        t.sent(id, NodeId(0), 101);
        t.sent(id, NodeId(1), 102);
        t.acked(id, NodeId(1), 350, 4_000, 0);
        t.acked(id, NodeId(0), 420, 2_500, 700);
        t.assembled(id, 420);
        t.repaired(id, NodeId(2), 421);
        let fin = t.finish(id, 425).expect("finished");
        assert_eq!(fin.total_micros, 325);
        assert_eq!(fin.spans.len(), 7); // issue + 2×(rpc+apply) + assembly + repair
        let rpc1 = fin
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::ReplicaRpc { replica: NodeId(1) })
            .unwrap();
        assert_eq!((rpc1.start, rpc1.end), (102, 350));
        assert!(fin.spans.iter().any(|s| matches!(
            s.kind,
            SpanKind::NodeApply {
                replica: NodeId(0),
                nanos: 2_500,
                lock_nanos: 700
            }
        )));
    }

    #[test]
    fn duplicate_finish_is_counted_not_fatal() {
        let mut t = TraceTracker::new(0);
        let id = t.begin(0);
        assert!(t.finish(id, 10).is_some());
        assert!(t.finish(id, 11).is_none());
        assert_eq!(t.completed(), 1);
        assert_eq!(t.duplicates(), 1);
    }

    #[test]
    fn orphan_span_marks_are_silent_noops() {
        // Marks for a trace that was never begun (or already finished)
        // must neither panic nor leave partial state behind — acks can
        // arrive after a deadline already closed the trace.
        let mut t = TraceTracker::new(3);
        let ghost = TraceId::compose(99, 12345);
        t.sent(ghost, NodeId(0), 10);
        t.acked(ghost, NodeId(0), 20, 1_000, 0);
        t.assembled(ghost, 21);
        t.repaired(ghost, NodeId(1), 22);
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.completed(), 0);
        // A real trace issued afterwards is unaffected.
        let id = t.begin(100);
        let fin = t.finish(id, 150).expect("real trace finishes");
        assert_eq!(fin.total_micros, 50);
        // Late marks after the finish are orphans too.
        t.acked(id, NodeId(0), 200, 5_000, 0);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn orphan_finish_does_not_inflate_completed() {
        let mut t = TraceTracker::new(4);
        let ghost = TraceId::compose(98, 7);
        assert!(t.finish(ghost, 10).is_none());
        assert_eq!(t.completed(), 0);
        assert_eq!(t.duplicates(), 0);
        // Finishing the same orphan again is a duplicate, not a second
        // orphan — the id was claimed by the first finish.
        assert!(t.finish(ghost, 11).is_none());
        assert_eq!(t.duplicates(), 1);
    }

    #[test]
    fn ack_without_sent_records_a_zero_length_rpc_span() {
        // A replica ack whose send mark was lost (e.g. the op was staged
        // and the send callback raced a routing refresh) still closes into
        // the tree: the RPC span starts at the ack instant, zero-length,
        // rather than being dropped or panicking.
        let mut t = TraceTracker::new(5);
        let id = t.begin(0);
        t.acked(id, NodeId(2), 40, 900, 0);
        let fin = t.finish(id, 50).expect("finishes");
        let rpc = fin
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::ReplicaRpc { replica: NodeId(2) })
            .expect("rpc span present");
        assert_eq!((rpc.start, rpc.end), (40, 40));
        assert!(fin.spans.iter().any(|s| matches!(
            s.kind,
            SpanKind::NodeApply {
                replica: NodeId(2),
                nanos: 900,
                lock_nanos: 0
            }
        )));
    }
}
