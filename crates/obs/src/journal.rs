//! Bounded structured event journal.
//!
//! Rare-but-important cluster-health events — a quorum read observing a
//! stale replica, an op crossing the slow-op threshold, an election, a
//! rebalance move — are pushed here as typed records rather than log lines,
//! so tests and operators can assert on *which* replica lagged or *where*
//! a slow op spent its time. The journal is a fixed-capacity ring: old
//! events are evicted (and counted) instead of growing without bound.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sedna_common::ids::{NodeId, TraceId, VNodeId};
use sedna_common::time::Micros;

use crate::trace::Span;

/// What happened.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// A quorum read observed a replica returning stale or missing data;
    /// read recovery was scheduled for it (paper Sec. III-C).
    StaleReplica {
        /// Trace of the read that detected the lag.
        trace: TraceId,
        /// VNode the key hashes to.
        vnode: VNodeId,
        /// The replica that returned stale/missing data.
        lagging: NodeId,
        /// True when the replica had no copy at all (vs. an old version).
        missing: bool,
        /// Timestamp delta between the freshest version observed and the
        /// replica's newest version (0 when missing — no version to diff).
        lag_micros: u64,
        /// Wall-clock age of the freshest version the replica is missing,
        /// measured at detection time.
        age_micros: u64,
    },
    /// An op's end-to-end latency crossed the slow-op threshold; the full
    /// span tree is preserved.
    SlowOp {
        /// The slow trace.
        trace: TraceId,
        /// End-to-end client latency.
        total_micros: Micros,
        /// The reconstructed span tree.
        spans: Vec<Span>,
    },
    /// A quorum could not be assembled before the deadline.
    QuorumFailed {
        /// The failed trace.
        trace: TraceId,
        /// `"read"` or `"write"`.
        op: &'static str,
    },
    /// A coordination replica won (or started) an election.
    Election {
        /// Coordination replica index.
        replica: u32,
        /// The epoch it now leads.
        epoch: u64,
    },
    /// The manager moved a vnode between real nodes (imbalance table).
    Rebalance {
        /// The vnode that moved.
        vnode: VNodeId,
        /// Previous owner.
        from: NodeId,
        /// New owner.
        to: NodeId,
    },
    /// A data node joined or left the live membership.
    Membership {
        /// The node in question.
        node: NodeId,
        /// True on join, false on leave/expiry.
        joined: bool,
    },
    /// An SLO alert changed phase (pending → firing → resolved); fired by
    /// the in-process alert engine's burn-rate evaluation.
    Alert {
        /// Name of the SLO (`read_p99`, `divergence_age`, …).
        slo: &'static str,
        /// Phase before the transition (`ok`, `pending`, `firing`).
        from: &'static str,
        /// Phase after the transition.
        to: &'static str,
        /// Trace of the most recent breaching sample (0 when untraced);
        /// joins with the flight-recorder dump the transition triggered.
        trace: u64,
    },
    /// An anti-entropy exchange repaired divergence on a vnode: Merkle
    /// diffing localized `leaves` differing leaf buckets and merging the
    /// peer's rows changed `merged` local rows.
    AntiEntropy {
        /// The vnode repaired.
        vnode: VNodeId,
        /// The peer the rows came from.
        peer: NodeId,
        /// Differing Merkle leaf buckets in this exchange.
        leaves: u32,
        /// Rows whose local state changed by merging.
        merged: u32,
    },
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::StaleReplica {
                trace,
                vnode,
                lagging,
                missing,
                lag_micros,
                age_micros,
            } => write!(
                f,
                "stale-replica {trace:?} {vnode:?} lagging={lagging:?} {} \
                 lag={lag_micros}µs age={age_micros}µs",
                if *missing { "missing" } else { "outdated" }
            ),
            EventKind::SlowOp {
                trace,
                total_micros,
                spans,
            } => write!(
                f,
                "slow-op {trace:?} {total_micros}µs {} spans",
                spans.len()
            ),
            EventKind::QuorumFailed { trace, op } => {
                write!(f, "quorum-failed {trace:?} op={op}")
            }
            EventKind::Election { replica, epoch } => {
                write!(f, "election replica={replica} epoch={epoch}")
            }
            EventKind::Rebalance { vnode, from, to } => {
                write!(f, "rebalance {vnode:?} {from:?} -> {to:?}")
            }
            EventKind::Alert {
                slo,
                from,
                to,
                trace,
            } => {
                write!(f, "alert {slo} {from}->{to} trace={trace:#x}")
            }
            EventKind::AntiEntropy {
                vnode,
                peer,
                leaves,
                merged,
            } => {
                write!(
                    f,
                    "anti-entropy {vnode:?} peer={peer:?} leaves={leaves} merged={merged}"
                )
            }
            EventKind::Membership { node, joined } => {
                write!(
                    f,
                    "membership {node:?} {}",
                    if *joined { "up" } else { "down" }
                )
            }
        }
    }
}

/// One journal entry.
#[derive(Clone, Debug)]
pub struct Event {
    /// Runtime clock when the event was recorded.
    pub at: Micros,
    /// The event.
    pub kind: EventKind,
}

/// Fixed-capacity ring of [`Event`]s; evictions are counted. Every pushed
/// event gets a monotone sequence number (0-based, never reused), so
/// scrape cursors (`/journal?since=<seq>`) survive ring eviction: a
/// client that remembers the last seq it saw only receives newer events.
pub struct EventJournal {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
    /// Events ever pushed; the seq of buf[i] is `pushed - len + i`.
    /// Updated inside the buffer lock so seq assignment is consistent.
    pushed: AtomicU64,
    evicted: AtomicU64,
}

impl EventJournal {
    /// Journal keeping at most `cap` events (`cap == 0` keeps none).
    pub fn new(cap: usize) -> EventJournal {
        EventJournal {
            cap,
            buf: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
            pushed: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Appends an event, evicting the oldest entry when full.
    pub fn push(&self, at: Micros, kind: EventKind) {
        if self.cap == 0 {
            // Rejected events still consume a seq so `next_seq` keeps
            // meaning "events ever offered to the journal".
            let _buf = self.buf.lock().unwrap();
            self.pushed.fetch_add(1, Ordering::Relaxed);
            self.evicted.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.cap {
            buf.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        self.pushed.fetch_add(1, Ordering::Relaxed);
        buf.push_back(Event { at, kind });
    }

    /// Copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// The seq the *next* pushed event will receive; equivalently, the
    /// number of events ever pushed. A scraper that resumes from this
    /// value sees exactly the events pushed after its last scrape.
    pub fn next_seq(&self) -> u64 {
        let _buf = self.buf.lock().unwrap();
        self.pushed.load(Ordering::Relaxed)
    }

    /// Retained events with seq ≥ `since`, as `(seq, event)` oldest first.
    /// Events already evicted from the ring are gone regardless of the
    /// cursor — compare the first returned seq against `since` to detect
    /// a gap.
    pub fn events_since(&self, since: u64) -> Vec<(u64, Event)> {
        let buf = self.buf.lock().unwrap();
        let first = self.pushed.load(Ordering::Relaxed) - buf.len() as u64;
        buf.iter()
            .enumerate()
            .map(|(i, ev)| (first + i as u64, ev.clone()))
            .filter(|(seq, _)| *seq >= since)
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted (or rejected by a zero-capacity journal) so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// One line per retained event, for the REPL / text dumps.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for ev in self.buf.lock().unwrap().iter() {
            out.push_str(&format!("[{:>10}µs] {}\n", ev.at, ev.kind));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_is_bounded_and_counts_evictions() {
        let j = EventJournal::new(3);
        for i in 0..5u64 {
            j.push(
                i,
                EventKind::Election {
                    replica: i as u32,
                    epoch: i,
                },
            );
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.evicted(), 2);
        let evs = j.events();
        assert_eq!(evs[0].at, 2); // oldest two evicted
        assert_eq!(evs[2].at, 4);
    }

    #[test]
    fn events_render_human_readable_lines() {
        let j = EventJournal::new(8);
        j.push(
            10,
            EventKind::StaleReplica {
                trace: TraceId(0xAB),
                vnode: VNodeId(3),
                lagging: NodeId(2),
                missing: true,
                lag_micros: 0,
                age_micros: 1_500,
            },
        );
        let text = j.render_text();
        assert!(text.contains("stale-replica"));
        assert!(text.contains("v3"));
        assert!(text.contains("n2"));
        assert!(text.contains("missing"));
        assert!(text.contains("age=1500µs"));
    }

    #[test]
    fn zero_capacity_journal_rejects_everything() {
        let j = EventJournal::new(0);
        j.push(
            1,
            EventKind::Membership {
                node: NodeId(0),
                joined: true,
            },
        );
        assert!(j.is_empty());
        assert_eq!(j.evicted(), 1);
        assert_eq!(j.next_seq(), 1);
        assert!(j.events_since(0).is_empty());
    }

    #[test]
    fn seq_cursor_survives_eviction() {
        let j = EventJournal::new(3);
        for i in 0..5u64 {
            j.push(
                i,
                EventKind::Election {
                    replica: i as u32,
                    epoch: i,
                },
            );
        }
        // Seqs 0 and 1 were evicted; the ring holds 2, 3, 4.
        assert_eq!(j.next_seq(), 5);
        let all: Vec<u64> = j.events_since(0).iter().map(|(s, _)| *s).collect();
        assert_eq!(all, vec![2, 3, 4]);
        // A cursor from a previous scrape only receives newer events.
        let tail = j.events_since(4);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].0, 4);
        assert_eq!(tail[0].1.at, 4);
        assert!(j.events_since(5).is_empty());
    }

    #[test]
    fn alert_events_render() {
        let j = EventJournal::new(4);
        j.push(
            7,
            EventKind::Alert {
                slo: "read_p99",
                from: "pending",
                to: "firing",
                trace: 0xAB,
            },
        );
        let text = j.render_text();
        assert!(
            text.contains("alert read_p99 pending->firing trace=0xab"),
            "{text}"
        );
    }
}
