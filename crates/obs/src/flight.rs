//! The hot-path flight recorder: per-thread fixed-size rings of compact
//! low-level engine events, dumped on anomaly.
//!
//! Aggregated metrics (counters, histograms) say *that* the p99 moved;
//! they cannot say *what the engine was doing* in the microseconds around
//! the spike. The flight recorder fills that gap the way an aircraft
//! black box does: every thread that touches the engine appends tiny
//! events (epoch pin/unpin, shard-lock acquire/wait, rehash, eviction,
//! batch apply) into its own fixed-size ring. Recording costs a handful
//! of relaxed stores into thread-owned cache lines — no shared-write
//! contention, no allocation after the first event — so it stays on even
//! in production.
//!
//! When an anomaly fires (a slow-op journal promotion, a nemesis checker
//! violation, a panic), [`note_anomaly`] freezes a copy of every ring
//! into the last-anomaly slot, which the `/flight` admin endpoint and the
//! nemesis `RunReport` expose. Reads of a live ring are racy by design:
//! the owner thread keeps writing while a dump walks the slots, so the
//! slots adjacent to the head may tear. A black box does not stop the
//! plane; a dump is evidence, not a linearizable snapshot.
//!
//! Event timestamps come from a process-global coarse clock
//! ([`set_clock`]) that tick handlers refresh — one relaxed load per
//! event instead of a syscall or TSC read, at the price of tick-level
//! resolution. Per-thread ordering is exact regardless (ring order).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events retained per thread (power of two; the ring keeps the newest).
pub const RING_EVENTS: usize = 1024;

/// Minimum coarse-clock distance between two anomaly captures, so a
/// storm of slow ops does not turn the recorder into a copy loop.
const ANOMALY_MIN_GAP_MICROS: u64 = 1_000_000;

/// Compact event kinds. The discriminants are stable wire/dump codes —
/// the epoch shim emits some of them through a plain `fn(u8, u64)` hook
/// without depending on this crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// Epoch guard pinned (arg: global epoch).
    EpochPin = 1,
    /// Outermost epoch guard dropped (arg: deferred-bag length).
    EpochUnpin = 2,
    /// An object was retired into the deferred bag (arg: bag length).
    EpochRetire = 3,
    /// Deferred destructors ran (arg: objects freed).
    EpochFree = 4,
    /// The global epoch advanced (arg: new epoch).
    EpochAdvance = 5,
    /// Shard writer mutex acquired uncontended (arg: shard index).
    ShardLock = 6,
    /// Shard writer mutex was contended (arg: wait nanos).
    ShardLockWait = 7,
    /// A shard's table was rehashed (arg: new capacity).
    Rehash = 8,
    /// A row was evicted (arg: live rows sampled).
    Evict = 9,
    /// A replica batch was applied (arg: ops in the batch).
    BatchApply = 10,
    /// Slow-op promotion fired (arg: trace id).
    SlowOp = 11,
    /// Nemesis checker violation (arg: seed).
    Violation = 12,
    /// Panic hook fired (arg: 0).
    Panic = 13,
    /// Critical-path decomposition of a slow op (arg: the four attributed
    /// segments packed by `critpath::Segments::pack` — queue, lock, apply,
    /// net µs, 16 bits each).
    CritPath = 14,
}

/// Human label for a dump code (stable even for hook-emitted raw codes).
pub fn kind_name(code: u8) -> &'static str {
    match code {
        1 => "epoch_pin",
        2 => "epoch_unpin",
        3 => "epoch_retire",
        4 => "epoch_free",
        5 => "epoch_advance",
        6 => "shard_lock",
        7 => "shard_lock_wait",
        8 => "rehash",
        9 => "evict",
        10 => "batch_apply",
        11 => "slow_op",
        12 => "violation",
        13 => "panic",
        14 => "crit_path",
        _ => "unknown",
    }
}

/// One thread's ring. The owner thread is the only writer; dumpers read
/// racily.
struct Ring {
    label: String,
    /// Total events ever recorded by the owner (monotonic; the ring slot
    /// for event `n` is `n % RING_EVENTS`).
    head: AtomicU64,
    /// `2 * RING_EVENTS` words: `[meta, arg]` pairs, where
    /// `meta = clock_micros << 8 | kind`.
    slots: Box<[AtomicU64]>,
}

impl Ring {
    fn new(label: String) -> Ring {
        Ring {
            label,
            head: AtomicU64::new(0),
            slots: (0..RING_EVENTS * 2).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    fn push(&self, kind: u8, arg: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let i = (h as usize & (RING_EVENTS - 1)) * 2;
        let meta = (CLOCK.load(Ordering::Relaxed) << 8) | u64::from(kind);
        self.slots[i].store(meta, Ordering::Relaxed);
        self.slots[i + 1].store(arg, Ordering::Relaxed);
        // Publish last so a dump never reports an event it has not seen
        // both words of (modulo wrap-around tearing, documented above).
        self.head.store(h + 1, Ordering::Release);
    }

    fn dump(&self) -> ThreadDump {
        let head = self.head.load(Ordering::Acquire);
        let first = head.saturating_sub(RING_EVENTS as u64);
        let mut events = Vec::with_capacity((head - first) as usize);
        for seq in first..head {
            let i = (seq as usize & (RING_EVENTS - 1)) * 2;
            let meta = self.slots[i].load(Ordering::Relaxed);
            let arg = self.slots[i + 1].load(Ordering::Relaxed);
            events.push(FlightEvent {
                seq,
                micros: meta >> 8,
                kind: (meta & 0xFF) as u8,
                arg,
            });
        }
        ThreadDump {
            label: self.label.clone(),
            recorded: head,
            events,
        }
    }
}

/// One decoded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Per-thread sequence number (monotonic since thread start).
    pub seq: u64,
    /// Coarse-clock timestamp at record time.
    pub micros: u64,
    /// Event code (see [`FlightKind`] / [`kind_name`]).
    pub kind: u8,
    /// Kind-specific argument.
    pub arg: u64,
}

/// One thread's decoded ring contents.
#[derive(Clone, Debug)]
pub struct ThreadDump {
    /// Thread label (its name, or `thread-N`).
    pub label: String,
    /// Total events the thread ever recorded (the ring keeps the newest
    /// [`RING_EVENTS`] of them).
    pub recorded: u64,
    /// The retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

/// A frozen anomaly capture: why, when, and every ring at that moment.
#[derive(Clone, Debug)]
pub struct AnomalyDump {
    /// What triggered the capture (`slow-op`, `violation`, `panic`, …).
    pub reason: String,
    /// The trace or seed associated with the trigger (0 when none).
    pub trace: u64,
    /// Coarse-clock time of the capture.
    pub at_micros: u64,
    /// All per-thread rings, frozen.
    pub threads: Vec<ThreadDump>,
}

static ENABLED: AtomicBool = AtomicBool::new(true);
static CLOCK: AtomicU64 = AtomicU64::new(0);
static LAST_ANOMALY_AT: AtomicU64 = AtomicU64::new(u64::MAX);
static ANOMALIES: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static R: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

fn last_anomaly_slot() -> &'static Mutex<Option<AnomalyDump>> {
    static S: OnceLock<Mutex<Option<AnomalyDump>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(None))
}

thread_local! {
    static RING: Arc<Ring> = {
        let label = std::thread::current()
            .name()
            .map(String::from)
            .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id()));
        let ring = Arc::new(Ring::new(label));
        registry().lock().expect("flight registry").push(Arc::clone(&ring));
        ring
    };
}

/// Globally enables/disables recording (the bench ablation's off switch).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when recording is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Refreshes the coarse event clock (call from tick handlers; cheap).
pub fn set_clock(micros: u64) {
    CLOCK.fetch_max(micros, Ordering::Relaxed);
}

/// The current coarse clock reading.
pub fn clock() -> u64 {
    CLOCK.load(Ordering::Relaxed)
}

/// Records one event into the calling thread's ring.
#[inline]
pub fn record(kind: FlightKind, arg: u64) {
    record_raw(kind as u8, arg);
}

/// Records by raw code — the signature the epoch shim's event hook uses
/// (a plain `fn(u8, u64)`, so the shim stays dependency-free).
#[inline]
pub fn record_raw(kind: u8, arg: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    RING.with(|r| r.push(kind, arg));
}

/// Decodes every registered ring (live, racy near each head).
pub fn dump() -> Vec<ThreadDump> {
    let rings: Vec<Arc<Ring>> = registry().lock().expect("flight registry").clone();
    rings.iter().map(|r| r.dump()).collect()
}

/// Freezes the current rings into the last-anomaly slot. Rate-limited to
/// one capture per coarse-clock second so anomaly storms stay cheap;
/// returns true when a capture actually happened.
pub fn note_anomaly(reason: &str, trace: u64) -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    ANOMALIES.fetch_add(1, Ordering::Relaxed);
    let now = clock();
    let last = LAST_ANOMALY_AT.load(Ordering::Relaxed);
    if last != u64::MAX && now.saturating_sub(last) < ANOMALY_MIN_GAP_MICROS {
        return false;
    }
    LAST_ANOMALY_AT.store(now, Ordering::Relaxed);
    let capture = AnomalyDump {
        reason: reason.to_string(),
        trace,
        at_micros: now,
        threads: dump(),
    };
    *last_anomaly_slot().lock().expect("anomaly slot") = Some(capture);
    true
}

/// The most recent anomaly capture, if any.
pub fn last_anomaly() -> Option<AnomalyDump> {
    last_anomaly_slot().lock().expect("anomaly slot").clone()
}

/// Total anomaly triggers seen (captures may be fewer: rate limiting).
pub fn anomalies() -> u64 {
    ANOMALIES.load(Ordering::Relaxed)
}

/// Clears the anomaly slot and rate limiter (tests and fresh runs).
pub fn reset_anomaly() {
    LAST_ANOMALY_AT.store(u64::MAX, Ordering::Relaxed);
    *last_anomaly_slot().lock().expect("anomaly slot") = None;
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_thread_json(out: &mut String, t: &ThreadDump, max_events: usize) {
    use std::fmt::Write as _;
    let skip = t.events.len().saturating_sub(max_events);
    let _ = write!(
        out,
        "{{\"thread\":\"{}\",\"recorded\":{},\"events\":[",
        escape(&t.label),
        t.recorded
    );
    for (i, e) in t.events[skip..].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"seq\":{},\"at\":{},\"kind\":\"{}\",\"arg\":{}}}",
            e.seq,
            e.micros,
            kind_name(e.kind),
            e.arg
        );
    }
    out.push_str("]}");
}

/// Renders the live rings plus the last anomaly capture as JSON — the
/// `/flight` admin endpoint's body. `max_events` bounds the per-thread
/// tail included (the ring itself always holds [`RING_EVENTS`]).
pub fn render_json(max_events: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"enabled\":{},\"clock_micros\":{},\"anomalies\":{},\"ring_events\":{},\"threads\":[",
        enabled(),
        clock(),
        anomalies(),
        RING_EVENTS
    );
    for (i, t) in dump().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_thread_json(&mut out, t, max_events);
    }
    out.push_str("],\"last_anomaly\":");
    match last_anomaly() {
        None => out.push_str("null"),
        Some(a) => {
            let _ = write!(
                out,
                "{{\"reason\":\"{}\",\"trace\":{},\"at\":{},\"threads\":[",
                escape(&a.reason),
                a.trace,
                a.at_micros
            );
            for (i, t) in a.threads.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_thread_json(&mut out, t, max_events);
            }
            out.push_str("]}");
        }
    }
    out.push('}');
    out
}

/// Renders a compact text tail (panic output, repl).
pub fn render_text(max_events: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for t in dump() {
        let skip = t.events.len().saturating_sub(max_events);
        let _ = writeln!(
            out,
            "== {} ({} recorded, showing {})",
            t.label,
            t.recorded,
            t.events.len() - skip
        );
        for e in &t.events[skip..] {
            let _ = writeln!(
                out,
                "  [{:>10}µs #{:<8}] {:<16} {}",
                e.micros,
                e.seq,
                kind_name(e.kind),
                e.arg
            );
        }
    }
    out
}

/// Installs a panic hook (once) that records a [`FlightKind::Panic`]
/// event, freezes an anomaly capture, and prints the ring tails to
/// stderr before the default hook runs.
pub fn install_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            record(FlightKind::Panic, 0);
            // Ignore the rate limiter: a panic always deserves a capture.
            LAST_ANOMALY_AT.store(u64::MAX, Ordering::Relaxed);
            note_anomaly("panic", 0);
            eprintln!("flight recorder (last 32 events per thread):");
            eprintln!("{}", render_text(32));
            default(info);
        }));
    });
}

/// The recorder is process-global state; tests (here and in `alert`) that
/// flip the enable switch or the anomaly slot serialize on this.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static L: OnceLock<Mutex<()>> = OnceLock::new();
    L.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_dumps_in_order() {
        let _g = test_lock();
        set_clock(42);
        record(FlightKind::Rehash, 64);
        record(FlightKind::Evict, 9);
        let dumps = dump();
        let me = std::thread::current();
        let label = me.name().unwrap_or_default();
        let mine = dumps
            .iter()
            .find(|t| t.label == label)
            .expect("own ring registered");
        let tail: Vec<_> = mine
            .events
            .iter()
            .rev()
            .take(2)
            .map(|e| (e.kind, e.arg))
            .collect();
        assert_eq!(tail[0], (FlightKind::Evict as u8, 9));
        assert_eq!(tail[1], (FlightKind::Rehash as u8, 64));
        // Events in one thread's dump are seq-ordered and clocked.
        for w in mine.events.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        assert!(mine.events.last().unwrap().micros >= 42);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let ring = Ring::new("wrap-test".into());
        for i in 0..(RING_EVENTS as u64 + 100) {
            let h = ring.head.load(Ordering::Relaxed);
            let idx = (h as usize & (RING_EVENTS - 1)) * 2;
            ring.slots[idx].store(u64::from(FlightKind::EpochPin as u8), Ordering::Relaxed);
            ring.slots[idx + 1].store(i, Ordering::Relaxed);
            ring.head.store(h + 1, Ordering::Relaxed);
        }
        let d = ring.dump();
        assert_eq!(d.recorded, RING_EVENTS as u64 + 100);
        assert_eq!(d.events.len(), RING_EVENTS);
        assert_eq!(d.events.first().unwrap().arg, 100);
        assert_eq!(d.events.last().unwrap().arg, RING_EVENTS as u64 + 99);
    }

    #[test]
    fn other_threads_rings_are_visible() {
        let _g = test_lock();
        std::thread::Builder::new()
            .name("flight-worker".into())
            .spawn(|| {
                for i in 0..10 {
                    record(FlightKind::BatchApply, i);
                }
            })
            .unwrap()
            .join()
            .unwrap();
        let dumps = dump();
        let worker = dumps
            .iter()
            .find(|t| t.label == "flight-worker")
            .expect("worker ring survives thread death");
        assert!(worker.recorded >= 10);
        assert!(worker
            .events
            .iter()
            .any(|e| e.kind == FlightKind::BatchApply as u8));
    }

    #[test]
    fn anomaly_capture_freezes_and_rate_limits() {
        let _g = test_lock();
        reset_anomaly();
        set_clock(10_000_000);
        record(FlightKind::SlowOp, 777);
        assert!(note_anomaly("slow-op", 777));
        let a = last_anomaly().expect("captured");
        assert_eq!(a.reason, "slow-op");
        assert_eq!(a.trace, 777);
        assert!(a
            .threads
            .iter()
            .any(|t| t.events.iter().any(|e| e.arg == 777)));
        // Within the gap: trigger counted, capture suppressed.
        let before = anomalies();
        assert!(!note_anomaly("slow-op", 778));
        assert_eq!(anomalies(), before + 1);
        assert_eq!(last_anomaly().unwrap().trace, 777);
        // After the gap: captured again.
        set_clock(clock() + ANOMALY_MIN_GAP_MICROS + 1);
        assert!(note_anomaly("violation", 779));
        assert_eq!(last_anomaly().unwrap().trace, 779);
        reset_anomaly();
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _g = test_lock();
        set_enabled(false);
        let before = RING.with(|r| r.head.load(Ordering::Relaxed));
        record(FlightKind::Rehash, 1);
        assert_eq!(RING.with(|r| r.head.load(Ordering::Relaxed)), before);
        assert!(!note_anomaly("slow-op", 1));
        set_enabled(true);
    }

    #[test]
    fn json_is_well_formed_ish() {
        let _g = test_lock();
        record(FlightKind::ShardLockWait, 1500);
        let j = render_json(16);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"threads\":["));
        assert!(j.contains("\"ring_events\":"));
        assert!(j.contains("shard_lock_wait"));
        let text = render_text(8);
        assert!(text.contains("shard_lock_wait"));
    }
}
