//! Continuous profiling: scope-stack statistical sampling plus lock and
//! allocation attribution.
//!
//! The observability plane so far can say *that* a tail burned (alerts,
//! exemplars, flight dumps) but not *where the time went*. This module is
//! the attribution layer, built from three always-on pieces:
//!
//! * **Scope stacks** — instrumented code brackets its work with
//!   [`prof_scope!`](crate::prof_scope), a RAII guard that pushes an
//!   interned scope id onto a compact per-thread stack published through a
//!   thread-local [`Slot`] registered in a global table (the same idiom as
//!   the flight recorder's rings). Enter/exit is a handful of relaxed
//!   stores into thread-owned cache lines — no locks, no allocation after
//!   the first scope on a thread.
//! * **A statistical sampler** — one background thread wakes ~[`SAMPLER_HZ`]
//!   times a second, reads every slot lock-free, and accumulates
//!   `(stack → count)` into a sharded table holding both a cumulative
//!   tally and a rotating last-10-seconds window. The table renders as
//!   collapsed-stack flamegraph text (`frame;frame;frame count`) and as
//!   JSON — the `/profile` admin endpoint's body.
//! * **Lock + allocation attribution** — the parking_lot shim reports
//!   contended acquisitions through a plain-`fn` hook (wait time plus the
//!   *holder's* scope tag, recorded at acquire), which lands in a wait
//!   histogram and a per-holder-scope top-K here. [`ProfAlloc`] is a
//!   counting global allocator (generalized from the bench harness) that
//!   charges every heap allocation to the allocating thread's current
//!   scope, so `/profile` can report allocs by subsystem.
//!
//! # Sampling safety
//!
//! The sampler reads other threads' slots while they mutate them. Reads
//! are safe (everything is atomics) but *racy*: a worker can pop and push
//! between the sampler's depth read and its frame reads, so an individual
//! sample may blend two stacks. The sampler reads `depth` with `Acquire`
//! (pairing with the worker's `Release` publish after a frame store), so a
//! frame *below* the observed depth is never unwritten — at worst it is
//! one scope transition stale. A statistical profile tolerates a torn
//! sample per transition; what it must never do is crash, lock, or stall
//! a worker — and nothing in this path can: workers never wait on the
//! sampler, the sampler never waits on workers, and slots of dead threads
//! simply sit at depth 0.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::Histogram;

/// Published stack frames per thread; deeper nesting still balances but is
/// truncated to this many leading frames in samples.
pub const MAX_DEPTH: usize = 12;

/// Distinct scope names the profiler can track; [`intern`] beyond this
/// folds into the reserved overflow id 0 (rendered as `?`).
pub const MAX_SCOPES: usize = 256;

/// Target sampling rate. Prime, so the sampler does not phase-lock with
/// millisecond-periodic work and systematically over- or under-count it.
pub const SAMPLER_HZ: u64 = 997;

/// Seconds of history the windowed view covers.
pub const WINDOW_SECS: u64 = 10;

/// Shards of the stack-accumulation table (sampler writes and renderers
/// read concurrently; sharding bounds any single lock hold).
const TABLE_SHARDS: usize = 8;

/// Entries reported in the contended-lock top-K.
const LOCK_TOP_K: usize = 10;

// ---------------------------------------------------------------------------
// Scope-name interning
// ---------------------------------------------------------------------------

fn names() -> &'static Mutex<Vec<&'static str>> {
    static N: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    // Id 0 is the reserved "no scope / overflow" bucket.
    N.get_or_init(|| Mutex::new(vec!["?"]))
}

/// Interns a scope name, returning its stable id. Called once per call
/// site (the [`prof_scope!`](crate::prof_scope) expansion caches the id in
/// a `OnceLock`), so a linear scan is fine. Returns 0 when the scope table
/// is full.
pub fn intern(name: &'static str) -> u16 {
    let mut v = names().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = v.iter().position(|n| *n == name) {
        return i as u16;
    }
    if v.len() >= MAX_SCOPES {
        return 0;
    }
    v.push(name);
    (v.len() - 1) as u16
}

/// Resolves a scope id back to its name (`?` for unknown ids).
pub fn scope_name(id: u16) -> &'static str {
    let v = names().lock().unwrap_or_else(|e| e.into_inner());
    v.get(id as usize).copied().unwrap_or("?")
}

// ---------------------------------------------------------------------------
// Per-thread published scope stack
// ---------------------------------------------------------------------------

/// One thread's published scope stack. The owner thread is the only
/// writer; the sampler reads racily (see the module docs).
struct Slot {
    /// Live nesting depth (may exceed [`MAX_DEPTH`]; frames beyond are
    /// counted but not published).
    depth: AtomicUsize,
    /// The interned scope ids, root first.
    frames: [AtomicU16; MAX_DEPTH],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            depth: AtomicUsize::new(0),
            frames: [const { AtomicU16::new(0) }; MAX_DEPTH],
        }
    }
}

fn slot_registry() -> &'static Mutex<Vec<Arc<Slot>>> {
    static R: OnceLock<Mutex<Vec<Arc<Slot>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// The published slot (registered globally on first scope entry).
    static SLOT: Arc<Slot> = {
        let slot = Arc::new(Slot::new());
        slot_registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&slot));
        slot
    };
    /// The current (leaf) scope id, const-initialized so reading it never
    /// allocates — [`ProfAlloc`] and the lock shim's holder probe read it
    /// from inside an allocation / under a lock acquire.
    static CURRENT: std::cell::Cell<u16> = const { std::cell::Cell::new(0) };
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables/disables scope publication and sampling accumulation
/// (the overhead ablation's off switch). Guards opened while enabled
/// still unwind correctly after a disable.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when profiling is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The calling thread's current scope id (0 when none). This is the
/// holder tag the lock shim stores at acquire time and the bucket
/// [`ProfAlloc`] charges allocations to.
#[inline]
pub fn current_scope() -> u16 {
    CURRENT.try_with(std::cell::Cell::get).unwrap_or(0)
}

/// RAII scope bracket: pushes on construction, pops on drop. Construct
/// through [`prof_scope!`](crate::prof_scope), which interns the name once
/// per call site.
pub struct ScopeGuard {
    pushed: bool,
    parent: u16,
}

impl ScopeGuard {
    /// Enters scope `id`. A disabled profiler returns an inert guard.
    #[inline]
    pub fn enter(id: u16) -> ScopeGuard {
        if !ENABLED.load(Ordering::Relaxed) {
            return ScopeGuard {
                pushed: false,
                parent: 0,
            };
        }
        let parent = current_scope();
        let _ = CURRENT.try_with(|c| c.set(id));
        let pushed = SLOT
            .try_with(|s| {
                let d = s.depth.load(Ordering::Relaxed);
                if d < MAX_DEPTH {
                    s.frames[d].store(id, Ordering::Relaxed);
                }
                // Release-publish the new depth so the sampler never reads
                // an unwritten frame below it.
                s.depth.store(d + 1, Ordering::Release);
            })
            .is_ok();
        ScopeGuard { pushed, parent }
    }
}

impl Drop for ScopeGuard {
    #[inline]
    fn drop(&mut self) {
        if !self.pushed {
            return;
        }
        let _ = SLOT.try_with(|s| {
            let d = s.depth.load(Ordering::Relaxed);
            s.depth.store(d.saturating_sub(1), Ordering::Release);
        });
        let _ = CURRENT.try_with(|c| c.set(self.parent));
    }
}

/// Brackets the rest of the enclosing block as a profiler scope.
///
/// ```ignore
/// sedna_obs::prof_scope!("store.write");
/// ```
///
/// The name must be a `&'static str`; it is interned once per call site.
#[macro_export]
macro_rules! prof_scope {
    ($name:expr) => {
        let _prof_scope_guard = {
            static __PROF_SCOPE_ID: ::std::sync::OnceLock<u16> = ::std::sync::OnceLock::new();
            $crate::prof::ScopeGuard::enter(
                *__PROF_SCOPE_ID.get_or_init(|| $crate::prof::intern($name)),
            )
        };
    };
}

// ---------------------------------------------------------------------------
// The sampler and its stack table
// ---------------------------------------------------------------------------

/// A sampled stack: the published frames, truncated to [`MAX_DEPTH`].
type StackKey = Box<[u16]>;

/// One stack's tallies: a cumulative count plus a ring of per-second
/// buckets covering the rolling window.
#[derive(Clone, Default)]
struct StackCell {
    cumulative: u64,
    /// `(second, count)` ring indexed by `second % WINDOW_SECS`.
    window: [(u64, u64); WINDOW_SECS as usize],
}

impl StackCell {
    fn bump(&mut self, sec: u64) {
        self.cumulative += 1;
        let b = &mut self.window[(sec % WINDOW_SECS) as usize];
        if b.0 != sec {
            *b = (sec, 0);
        }
        b.1 += 1;
    }

    /// Samples within the last [`WINDOW_SECS`] seconds ending at `now_sec`.
    fn window_count(&self, now_sec: u64) -> u64 {
        self.window
            .iter()
            .filter(|(s, _)| now_sec.saturating_sub(*s) < WINDOW_SECS)
            .map(|(_, c)| c)
            .sum()
    }
}

struct StackTable {
    shards: Vec<Mutex<HashMap<StackKey, StackCell>>>,
}

impl StackTable {
    fn new() -> StackTable {
        StackTable {
            shards: (0..TABLE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard_of(&self, key: &[u16]) -> &Mutex<HashMap<StackKey, StackCell>> {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for f in key {
            h = (h ^ u64::from(*f)).wrapping_mul(0x1_0000_01b3);
        }
        &self.shards[(h as usize) & (TABLE_SHARDS - 1)]
    }

    fn bump(&self, key: &[u16], sec: u64) {
        let mut m = self.shard_of(key).lock().unwrap_or_else(|e| e.into_inner());
        match m.get_mut(key) {
            Some(cell) => cell.bump(sec),
            None => {
                let mut cell = StackCell::default();
                cell.bump(sec);
                m.insert(key.into(), cell);
            }
        }
    }

    /// `(stack, cumulative, windowed)` rows, unsorted.
    fn rows(&self, now_sec: u64) -> Vec<(Vec<u16>, u64, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let m = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (k, cell) in m.iter() {
                out.push((k.to_vec(), cell.cumulative, cell.window_count(now_sec)));
            }
        }
        out
    }
}

fn stack_table() -> &'static StackTable {
    static T: OnceLock<StackTable> = OnceLock::new();
    T.get_or_init(StackTable::new)
}

static SAMPLES_TOTAL: AtomicU64 = AtomicU64::new(0);
static SAMPLES_IDLE: AtomicU64 = AtomicU64::new(0);
static SAMPLER_TICKS: AtomicU64 = AtomicU64::new(0);

fn epoch() -> &'static std::time::Instant {
    static E: OnceLock<std::time::Instant> = OnceLock::new();
    E.get_or_init(std::time::Instant::now)
}

/// Seconds since the profiler's process epoch (the windowed view's clock).
pub fn now_sec() -> u64 {
    epoch().elapsed().as_secs()
}

/// Takes one sampling pass over every registered slot, accumulating into
/// the stack table at second `sec`. Factored out of the sampler loop so
/// tests (and the repl's synchronous capture) can drive it directly.
pub fn sample_once(sec: u64) {
    if !enabled() {
        return;
    }
    SAMPLER_TICKS.fetch_add(1, Ordering::Relaxed);
    let slots: Vec<Arc<Slot>> = slot_registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let mut key = [0u16; MAX_DEPTH];
    for slot in &slots {
        let depth = slot.depth.load(Ordering::Acquire).min(MAX_DEPTH);
        if depth == 0 {
            SAMPLES_IDLE.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        for (i, f) in key.iter_mut().enumerate().take(depth) {
            *f = slot.frames[i].load(Ordering::Relaxed);
        }
        SAMPLES_TOTAL.fetch_add(1, Ordering::Relaxed);
        stack_table().bump(&key[..depth], sec);
    }
}

/// Starts the background sampler thread (idempotent). The thread runs for
/// the life of the process at ~[`SAMPLER_HZ`]; a disabled profiler keeps
/// the thread parked on its sleep with zero table traffic.
pub fn start_sampler() {
    static STARTED: OnceLock<()> = OnceLock::new();
    STARTED.get_or_init(|| {
        let _ = epoch();
        let _ = std::thread::Builder::new()
            .name("sedna-prof-sampler".into())
            .spawn(|| {
                let period = std::time::Duration::from_nanos(1_000_000_000 / SAMPLER_HZ);
                loop {
                    std::thread::sleep(period);
                    sample_once(now_sec());
                }
            });
    });
}

/// Total non-idle samples accumulated since process start.
pub fn samples_total() -> u64 {
    SAMPLES_TOTAL.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Lock-contention attribution
// ---------------------------------------------------------------------------

static LOCK_WAITS: [AtomicU64; MAX_SCOPES] = [const { AtomicU64::new(0) }; MAX_SCOPES];
static LOCK_WAIT_NANOS: [AtomicU64; MAX_SCOPES] = [const { AtomicU64::new(0) }; MAX_SCOPES];

fn lock_wait_hist() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(Histogram::new)
}

/// The lock shim's scope probe: `fn() -> u32` so the shim stays
/// dependency-free. Returns the acquiring thread's current scope id.
pub fn scope_probe() -> u32 {
    u32::from(current_scope())
}

/// The lock shim's contention hook: called once per *contended* mutex
/// acquisition with the measured wait and the holder's scope tag (what the
/// previous owner stored at its own acquire).
pub fn on_contended_lock(wait_nanos: u64, holder: u32) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    lock_wait_hist().record(wait_nanos);
    let idx = (holder as usize).min(MAX_SCOPES - 1);
    LOCK_WAITS[idx].fetch_add(1, Ordering::Relaxed);
    LOCK_WAIT_NANOS[idx].fetch_add(wait_nanos, Ordering::Relaxed);
}

/// The contended-lock top-K: `(holder scope name, waits, total wait ns)`,
/// descending by total wait.
pub fn contended_top() -> Vec<(&'static str, u64, u64)> {
    let mut rows: Vec<(&'static str, u64, u64)> = (0..MAX_SCOPES)
        .filter_map(|i| {
            let waits = LOCK_WAITS[i].load(Ordering::Relaxed);
            if waits == 0 {
                return None;
            }
            Some((
                scope_name(i as u16),
                waits,
                LOCK_WAIT_NANOS[i].load(Ordering::Relaxed),
            ))
        })
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    rows.truncate(LOCK_TOP_K);
    rows
}

// ---------------------------------------------------------------------------
// Allocation attribution
// ---------------------------------------------------------------------------

static SCOPE_ALLOCS: [AtomicU64; MAX_SCOPES] = [const { AtomicU64::new(0) }; MAX_SCOPES];
static ALLOCS_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Counting global allocator with per-scope attribution — the bench
/// harness's counting allocator generalized into the profiler. Install in
/// a binary (or test) with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: sedna_obs::prof::ProfAlloc = sedna_obs::prof::ProfAlloc;
/// ```
///
/// Every allocation charges one count to the allocating thread's current
/// scope (bucket 0 when outside any scope). The counting path is
/// allocation-free by construction: the scope cell is a const-initialized
/// thread-local and the counters are static atomics.
pub struct ProfAlloc;

// SAFETY: delegates to `System`; the counters are relaxed side effects.
unsafe impl std::alloc::GlobalAlloc for ProfAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        count_alloc();
        std::alloc::System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        count_alloc();
        std::alloc::System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        count_alloc();
        std::alloc::System.realloc(ptr, layout, new_size)
    }
}

#[inline]
fn count_alloc() {
    ALLOCS_TOTAL.fetch_add(1, Ordering::Relaxed);
    let scope = current_scope() as usize;
    SCOPE_ALLOCS[scope.min(MAX_SCOPES - 1)].fetch_add(1, Ordering::Relaxed);
}

/// Total allocations counted (0 unless a [`ProfAlloc`] is installed).
pub fn allocs_total() -> u64 {
    ALLOCS_TOTAL.load(Ordering::Relaxed)
}

/// Per-scope allocation counts, `(scope name, allocs)` descending, only
/// scopes that allocated. Bucket 0 (outside any scope) reports as `?`.
pub fn allocs_by_scope() -> Vec<(&'static str, u64)> {
    let mut rows: Vec<(&'static str, u64)> = (0..MAX_SCOPES)
        .filter_map(|i| {
            let n = SCOPE_ALLOCS[i].load(Ordering::Relaxed);
            if n == 0 {
                return None;
            }
            Some((scope_name(i as u16), n))
        })
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    rows
}

// ---------------------------------------------------------------------------
// Export: collapsed-stack text and JSON
// ---------------------------------------------------------------------------

/// Which tally a rendering reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum View {
    /// Counts since process start.
    Cumulative,
    /// Counts from the rolling last-[`WINDOW_SECS`] window.
    Windowed,
}

fn sorted_rows(view: View) -> Vec<(String, u64)> {
    let now = now_sec();
    let mut rows: Vec<(String, u64)> = stack_table()
        .rows(now)
        .into_iter()
        .filter_map(|(stack, cumulative, windowed)| {
            let count = match view {
                View::Cumulative => cumulative,
                View::Windowed => windowed,
            };
            if count == 0 {
                return None;
            }
            let frames: Vec<&str> = stack.iter().map(|&id| scope_name(id)).collect();
            Some((frames.join(";"), count))
        })
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows
}

/// Renders the profile as collapsed-stack flamegraph text: one
/// `frame;frame;frame count` line per distinct stack, hottest first.
/// Feed straight into `flamegraph.pl` / `inferno-flamegraph`.
pub fn render_collapsed(view: View) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (stack, count) in sorted_rows(view) {
        let _ = writeln!(out, "{stack} {count}");
    }
    out
}

/// Renders the full profile as JSON: both stack views plus the lock and
/// allocation attribution — the `/profile` admin endpoint's default body.
pub fn render_json() -> String {
    use std::fmt::Write as _;
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn stacks_json(out: &mut String, view: View) {
        out.push('[');
        for (i, (stack, count)) in sorted_rows(view).into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"stack\":\"{}\",\"count\":{count}}}", esc(&stack));
        }
        out.push(']');
    }
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"enabled\":{},\"sampler_hz\":{SAMPLER_HZ},\"window_secs\":{WINDOW_SECS},\
         \"now_sec\":{},\"samples_total\":{},\"samples_idle\":{},\"sampler_ticks\":{},",
        enabled(),
        now_sec(),
        SAMPLES_TOTAL.load(Ordering::Relaxed),
        SAMPLES_IDLE.load(Ordering::Relaxed),
        SAMPLER_TICKS.load(Ordering::Relaxed),
    );
    out.push_str("\"cumulative\":");
    stacks_json(&mut out, View::Cumulative);
    out.push_str(",\"window\":");
    stacks_json(&mut out, View::Windowed);
    // Lock-contention attribution.
    let h = lock_wait_hist().snapshot();
    let _ = write!(
        out,
        ",\"lock_contention\":{{\"waits\":{},\"wait_p50_nanos\":{},\"wait_p99_nanos\":{},\
         \"wait_max_nanos\":{},\"top\":[",
        h.count,
        h.percentile(0.50),
        h.percentile(0.99),
        h.max,
    );
    for (i, (scope, waits, nanos)) in contended_top().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"holder\":\"{}\",\"waits\":{waits},\"total_wait_nanos\":{nanos}}}",
            esc(scope)
        );
    }
    out.push_str("]}");
    // Allocation attribution (all zero unless a ProfAlloc is installed).
    let _ = write!(out, ",\"allocs_total\":{},\"allocs\":[", allocs_total());
    for (i, (scope, n)) in allocs_by_scope().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"scope\":\"{}\",\"allocs\":{n}}}", esc(scope));
    }
    out.push_str("]}");
    out
}

/// The profiler is process-global state; tests that flip the enable
/// switch or assert on table contents serialize on this.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static L: OnceLock<Mutex<()>> = OnceLock::new();
    L.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_bounded() {
        let a = intern("test.scope.a");
        let b = intern("test.scope.b");
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_eq!(intern("test.scope.a"), a);
        assert_eq!(scope_name(a), "test.scope.a");
        assert_eq!(scope_name(u16::MAX), "?");
    }

    #[test]
    fn scope_guards_nest_and_unwind() {
        let _g = test_lock();
        set_enabled(true);
        assert_eq!(current_scope(), 0);
        {
            crate::prof_scope!("test.outer");
            let outer = current_scope();
            assert_eq!(scope_name(outer), "test.outer");
            {
                crate::prof_scope!("test.inner");
                assert_eq!(scope_name(current_scope()), "test.inner");
            }
            assert_eq!(current_scope(), outer);
        }
        assert_eq!(current_scope(), 0);
    }

    #[test]
    fn sampling_sees_published_stacks() {
        let _g = test_lock();
        set_enabled(true);
        crate::prof_scope!("test.sampled.root");
        crate::prof_scope!("test.sampled.leaf");
        sample_once(now_sec());
        let collapsed = render_collapsed(View::Cumulative);
        let line = collapsed
            .lines()
            .find(|l| l.contains("test.sampled.root;test.sampled.leaf"))
            .expect("own stack sampled");
        // Collapsed-stack shape: `frame;frame count`.
        let (stack, count) = line.rsplit_once(' ').expect("count field");
        assert!(stack.ends_with("test.sampled.leaf"));
        assert!(count.parse::<u64>().unwrap() >= 1);
        // The sample is also in the rolling window right now.
        assert!(render_collapsed(View::Windowed).contains("test.sampled.leaf"));
    }

    #[test]
    fn windowed_counts_expire_cumulative_do_not() {
        let mut cell = StackCell::default();
        cell.bump(100);
        cell.bump(100);
        cell.bump(105);
        assert_eq!(cell.cumulative, 3);
        assert_eq!(cell.window_count(105), 3);
        // 100 has aged out at second 110; 105 is still inside.
        assert_eq!(cell.window_count(110), 1);
        // Everything aged out.
        assert_eq!(cell.window_count(200), 0);
        assert_eq!(cell.cumulative, 3);
        // The ring reuses slots across wraps without double counting.
        cell.bump(200);
        assert_eq!(cell.window_count(200), 1);
        assert_eq!(cell.cumulative, 4);
    }

    #[test]
    fn disabled_profiler_is_inert() {
        let _g = test_lock();
        set_enabled(false);
        let before = samples_total();
        {
            crate::prof_scope!("test.disabled");
            assert_eq!(current_scope(), 0);
            sample_once(now_sec());
        }
        assert_eq!(samples_total(), before);
        assert!(!render_collapsed(View::Cumulative).contains("test.disabled"));
        set_enabled(true);
    }

    #[test]
    fn contended_lock_attribution_ranks_holders() {
        let _g = test_lock();
        set_enabled(true);
        let hot = intern("test.lock.hot");
        let cold = intern("test.lock.cold");
        on_contended_lock(5_000, u32::from(hot));
        on_contended_lock(7_000, u32::from(hot));
        on_contended_lock(1_000, u32::from(cold));
        let top = contended_top();
        let hot_row = top.iter().find(|r| r.0 == "test.lock.hot").expect("hot");
        let cold_row = top.iter().find(|r| r.0 == "test.lock.cold").expect("cold");
        assert!(hot_row.1 >= 2 && hot_row.2 >= 12_000);
        assert!(cold_row.1 >= 1);
        // Hot holder sorts before cold (more total wait).
        let hi = top.iter().position(|r| r.0 == "test.lock.hot").unwrap();
        let ci = top.iter().position(|r| r.0 == "test.lock.cold").unwrap();
        assert!(hi < ci);
        // An out-of-range holder tag folds into the overflow bucket
        // instead of indexing out of bounds.
        on_contended_lock(1, u32::MAX);
    }

    #[test]
    fn render_json_is_well_formed_ish() {
        let _g = test_lock();
        set_enabled(true);
        {
            crate::prof_scope!("test.json");
            sample_once(now_sec());
        }
        let j = render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"sampler_hz\":997"));
        assert!(j.contains("\"cumulative\":["));
        assert!(j.contains("\"window\":["));
        assert!(j.contains("\"lock_contention\":{"));
        assert!(j.contains("\"allocs\":["));
        assert!(j.contains("test.json"));
    }

    #[test]
    fn deep_nesting_truncates_but_balances() {
        let _g = test_lock();
        set_enabled(true);
        fn recurse(n: usize) {
            if n == 0 {
                sample_once(now_sec());
                return;
            }
            crate::prof_scope!("test.deep");
            recurse(n - 1);
        }
        recurse(MAX_DEPTH + 4);
        assert_eq!(current_scope(), 0);
        let collapsed = render_collapsed(View::Cumulative);
        let line = collapsed
            .lines()
            .find(|l| l.contains("test.deep"))
            .expect("deep stack sampled");
        let (stack, _) = line.rsplit_once(' ').unwrap();
        assert!(stack.split(';').count() <= MAX_DEPTH);
    }
}
