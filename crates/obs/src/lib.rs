//! Cluster-wide observability: metrics registry, latency histograms,
//! per-op trace spans, and a bounded structured event journal.
//!
//! The paper's operations story leans on *measured* behaviour — per-vnode
//! read/write frequency feeds the imbalance table (Sec. III-B), quorum reads
//! detect stale replicas and trigger read recovery (Sec. III-C) — but until
//! this crate the repo only had scattered ad-hoc counters. `sedna-obs` is the
//! shared substrate every layer records into:
//!
//! * [`Histogram`] — log-bucketed latency histogram with p50/p95/p99
//!   extraction, shared by the datapath and the bench harnesses so reported
//!   percentiles come from the same code production would use;
//! * [`Registry`] — lock-cheap named counters/gauges/histograms with a
//!   Prometheus-style text exposition and a JSON snapshot; a disabled
//!   registry short-circuits every record call on one relaxed atomic load;
//! * [`EventJournal`] — bounded ring of structured cluster-health events
//!   (stale quorum members, slow-op span trees, elections, rebalances);
//! * [`trace`] — the span model: every client op carries a `TraceId` through
//!   the replica frames and becomes a reconstructable span tree;
//! * [`window`] — rolling-window histograms and counter-rate tracking, the
//!   time-local layer behind the admin surface's `/staleness` view;
//! * [`flight`] — the hot-path flight recorder: per-thread fixed-size rings
//!   of compact engine events (epoch pin/unpin, shard-lock waits, rehash,
//!   eviction), frozen into a black-box dump when an anomaly fires;
//! * [`alert`] — the in-process SLO engine: declarative objectives,
//!   multi-window burn-rate evaluation, and a pending → firing → resolved
//!   state machine that journals transitions and dumps the flight recorder;
//! * [`health`] — the red/amber/green rollup over the alert engine, the
//!   payload behind the admin surface's `/health`;
//! * [`prof`] — the continuous profiler: scope-stack statistical sampling
//!   ([`prof_scope!`] + a ~997 Hz sampler thread), lock-contention and
//!   allocation attribution, exported as collapsed-stack flamegraph text
//!   and JSON behind the admin surface's `/profile`;
//! * [`critpath`] — tail critical-path decomposition: a finished span tree
//!   split into queue / lock / apply / net segments, aggregated into the
//!   tail attribution the nemesis reports carry.
//!
//! The crate has no external dependencies (offline-shim policy) and only
//! leans on `sedna-common` for the id newtypes.

pub mod alert;
pub mod critpath;
pub mod flight;
pub mod health;
pub mod hist;
pub mod journal;
pub mod prof;
pub mod registry;
pub mod trace;
pub mod window;

pub use alert::{AlertEngine, AlertPhase, AlertTransition, AlertView, Objective, SloSpec};
pub use critpath::{Segments, TailAttribution, TailSnapshot};
pub use flight::{AnomalyDump, FlightEvent, FlightKind, ThreadDump};
pub use health::{HealthReport, Rag};
pub use hist::{HistSnapshot, Histogram};
pub use journal::{Event, EventJournal, EventKind};
pub use registry::{
    escape_help, escape_label_value, Counter, Gauge, Hist, MetricsSnapshot, Registry,
};
pub use trace::{Span, SpanKind, TraceTracker};
pub use window::{RateTracker, WindowedHistogram};
