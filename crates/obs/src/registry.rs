//! Named metrics registry with Prometheus-style text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], and `Arc<Histogram>`) are cheap clones
//! holding the underlying atomic plus the registry's shared enabled flag, so
//! the datapath records without touching the registry lock. A disabled
//! registry short-circuits every record on one relaxed atomic load — the
//! bench ablation (`mixed_workload --ablation`) verifies this stays within
//! noise of not instrumenting at all.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{HistSnapshot, Histogram};

/// Monotone counter handle.
#[derive(Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    v: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while the registry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Point-in-time gauge handle.
#[derive(Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    v: Arc<AtomicU64>,
}

impl Gauge {
    /// Overwrites the value (no-op while the registry is disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.v.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Histogram handle gated on the registry's enabled flag (unlike a bare
/// `Arc<Histogram>`, which always records).
#[derive(Clone)]
pub struct Hist {
    enabled: Arc<AtomicBool>,
    h: Arc<Histogram>,
}

impl Hist {
    /// Records one sample (no-op while the registry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.h.record(v);
        }
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistSnapshot {
        self.h.snapshot()
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    hists: BTreeMap<String, Arc<Histogram>>,
}

/// Lock-cheap metrics registry. Registration takes the lock once per unique
/// name; recording through the returned handles never does.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(true)
    }
}

impl Registry {
    /// New registry; `enabled = false` turns every handle into a no-op.
    pub fn new(enabled: bool) -> Registry {
        Registry {
            enabled: Arc::new(AtomicBool::new(enabled)),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether handles currently record.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips recording on or off for every handle already vended.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        let v = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter {
            enabled: self.enabled.clone(),
            v,
        }
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        let v = inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Gauge {
            enabled: self.enabled.clone(),
            v,
        }
    }

    /// Returns (registering on first use) the histogram named `name`.
    /// Recording through the histogram is unconditional; callers on hot
    /// paths should pair it with [`Registry::enabled`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .hists
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Like [`Registry::histogram`] but returns a handle that respects the
    /// enabled flag — what the datapath uses.
    pub fn hist(&self, name: &str) -> Hist {
        Hist {
            enabled: self.enabled.clone(),
            h: self.histogram(name),
        }
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            hists: inner
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Plain copy of a registry's metrics; mergeable across nodes.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters and gauges sum, histograms merge
    /// bucket-wise. Summing gauges is the cluster-wide reading for the
    /// per-node gauges we export (store bytes, keys, journal depth).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Prometheus text exposition (counters, gauges, and summary-style
    /// quantiles for each histogram).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("# TYPE {k} counter\n{k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("# TYPE {k} gauge\n{k} {v}\n"));
        }
        for (k, h) in &self.hists {
            out.push_str(&format!("# TYPE {k} summary\n"));
            for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                out.push_str(&format!(
                    "{k}{{quantile=\"{label}\"}} {}\n",
                    h.percentile(q)
                ));
            }
            out.push_str(&format!("{k}_sum {}\n{k}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// JSON rendering (hand-rolled; no serde in the offline image).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_map(&mut out, self.counters.iter().map(|(k, v)| (k, *v)));
        out.push_str("},\"gauges\":{");
        push_map(&mut out, self.gauges.iter().map(|(k, v)| (k, *v)));
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (k, h) in &self.hists {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{k}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count,
                h.sum,
                h.max,
                h.percentile(0.50),
                h.percentile(0.95),
                h.percentile(0.99)
            ));
        }
        out.push_str("}}");
        out
    }
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, u64)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{k}\":{v}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_record_and_snapshot() {
        let reg = Registry::new(true);
        let c = reg.counter("ops_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same underlying cell.
        reg.counter("ops_total").inc();
        assert_eq!(reg.snapshot().counter("ops_total"), 6);
    }

    #[test]
    fn disabled_registry_drops_records() {
        let reg = Registry::new(false);
        let c = reg.counter("x");
        let g = reg.gauge("y");
        c.inc();
        g.set(9);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        reg.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let a = Registry::new(true);
        let b = Registry::new(true);
        a.counter("ops").add(3);
        b.counter("ops").add(4);
        b.counter("only_b").inc();
        a.histogram("lat").record(10);
        b.histogram("lat").record(30);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("ops"), 7);
        assert_eq!(m.counter("only_b"), 1);
        assert_eq!(m.hists["lat"].count, 2);
        assert_eq!(m.hists["lat"].sum, 40);
    }

    #[test]
    fn prometheus_and_json_render() {
        let reg = Registry::new(true);
        reg.counter("sedna_ops_total").add(2);
        reg.gauge("sedna_keys").set(7);
        reg.histogram("sedna_latency_micros").record(100);
        let snap = reg.snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE sedna_ops_total counter"));
        assert!(text.contains("sedna_ops_total 2"));
        assert!(text.contains("sedna_keys 7"));
        assert!(text.contains("sedna_latency_micros{quantile=\"0.99\"}"));
        assert!(text.contains("sedna_latency_micros_count 1"));
        let json = snap.to_json();
        assert!(json.contains("\"sedna_ops_total\":2"));
        assert!(json.contains("\"p99\":"));
    }
}
