//! Named metrics registry with Prometheus-style text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], and `Arc<Histogram>`) are cheap clones
//! holding the underlying atomic plus the registry's shared enabled flag, so
//! the datapath records without touching the registry lock. A disabled
//! registry short-circuits every record on one relaxed atomic load — the
//! bench ablation (`mixed_workload --ablation`) verifies this stays within
//! noise of not instrumenting at all.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{HistSnapshot, Histogram};

/// Monotone counter handle.
#[derive(Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    v: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while the registry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Point-in-time gauge handle.
#[derive(Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    v: Arc<AtomicU64>,
}

impl Gauge {
    /// Overwrites the value (no-op while the registry is disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.v.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Histogram handle gated on the registry's enabled flag (unlike a bare
/// `Arc<Histogram>`, which always records).
#[derive(Clone)]
pub struct Hist {
    enabled: Arc<AtomicBool>,
    h: Arc<Histogram>,
}

impl Hist {
    /// Records one sample (no-op while the registry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.h.record(v);
        }
    }

    /// Records one sample tagged with a trace id, captured as the
    /// bucket's exemplar (no-op while the registry is disabled).
    #[inline]
    pub fn record_traced(&self, v: u64, trace: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.h.record_traced(v, trace);
        }
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistSnapshot {
        self.h.snapshot()
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    hists: BTreeMap<String, Arc<Histogram>>,
    help: BTreeMap<String, String>,
}

/// Lock-cheap metrics registry. Registration takes the lock once per unique
/// name; recording through the returned handles never does.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(true)
    }
}

impl Registry {
    /// New registry; `enabled = false` turns every handle into a no-op.
    pub fn new(enabled: bool) -> Registry {
        Registry {
            enabled: Arc::new(AtomicBool::new(enabled)),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether handles currently record.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips recording on or off for every handle already vended.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        let v = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter {
            enabled: self.enabled.clone(),
            v,
        }
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        let v = inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Gauge {
            enabled: self.enabled.clone(),
            v,
        }
    }

    /// Returns (registering on first use) the histogram named `name`.
    /// Recording through the histogram is unconditional; callers on hot
    /// paths should pair it with [`Registry::enabled`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .hists
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Like [`Registry::histogram`] but returns a handle that respects the
    /// enabled flag — what the datapath uses.
    pub fn hist(&self, name: &str) -> Hist {
        Hist {
            enabled: self.enabled.clone(),
            h: self.histogram(name),
        }
    }

    /// Attaches a `# HELP` description to the metric family `name`. Carried
    /// through snapshots and merges; last registration wins locally, first
    /// wins across a merge.
    pub fn describe(&self, name: &str, help: &str) {
        let mut inner = self.inner.lock().unwrap();
        inner.help.insert(name.to_string(), help.to_string());
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            hists: inner
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            help: inner.help.clone(),
        }
    }
}

/// Escapes a label *value* for the Prometheus text exposition: backslash,
/// double quote, and newline must be backslash-escaped inside `label="…"`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a `# HELP` text: backslash and newline must be escaped (quotes
/// are legal in help text).
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The metric *family* of a series name: everything before the label braces.
fn family(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Plain copy of a registry's metrics; mergeable across nodes.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, HistSnapshot>,
    /// `# HELP` text by metric family.
    pub help: BTreeMap<String, String>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters and gauges sum, histograms merge
    /// bucket-wise. Summing gauges is the cluster-wide reading for the
    /// per-node gauges we export (store bytes, keys, journal depth).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
        for (k, v) in &other.help {
            self.help.entry(k.clone()).or_insert_with(|| v.clone());
        }
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Prometheus text exposition. Emits one `# HELP`/`# TYPE` pair per
    /// metric family (series sharing a name up to the label braces), then
    /// every series of that family; histograms render as summaries with
    /// `quantile` labels plus `_sum`/`_count`. The output is what a real
    /// Prometheus scraper parses — label values must already be escaped by
    /// the producer via [`escape_label_value`].
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        self.render_section(&mut out, &self.counters, "counter");
        self.render_section(&mut out, &self.gauges, "gauge");
        let mut last_family = "";
        for (k, h) in &self.hists {
            let fam = family(k);
            if fam != last_family {
                self.push_header(&mut out, fam, "summary");
                last_family = fam;
            }
            for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                let v = h.percentile(q);
                // OpenMetrics-style exemplars on the tail quantiles: the
                // scraped p95/p99 line names a traced operation that
                // landed in (or nearest) that bucket, so a dashboard
                // spike links straight to a span tree in the journal.
                let exemplar = if q >= 0.95 { h.exemplar_near(q) } else { None };
                match exemplar {
                    Some((trace, ev)) => out.push_str(&format!(
                        "{k}{{quantile=\"{label}\"}} {v} # {{trace_id=\"{trace:#x}\"}} {ev}\n"
                    )),
                    None => out.push_str(&format!("{k}{{quantile=\"{label}\"}} {v}\n")),
                }
            }
            out.push_str(&format!("{k}_sum {}\n{k}_count {}\n", h.sum, h.count));
        }
        out
    }

    fn render_section(&self, out: &mut String, series: &BTreeMap<String, u64>, kind: &str) {
        // Group by family first so a family's HELP/TYPE header is emitted
        // exactly once even when labelled series interleave with other
        // names in the BTreeMap order.
        let mut grouped: BTreeMap<&str, Vec<(&String, u64)>> = BTreeMap::new();
        for (k, v) in series {
            grouped.entry(family(k)).or_default().push((k, *v));
        }
        for (fam, entries) in grouped {
            self.push_header(out, fam, kind);
            for (k, v) in entries {
                out.push_str(&format!("{k} {v}\n"));
            }
        }
    }

    fn push_header(&self, out: &mut String, fam: &str, kind: &str) {
        let help = self
            .help
            .get(fam)
            .map(|h| escape_help(h))
            .unwrap_or_else(|| format!("Sedna metric {fam}."));
        out.push_str(&format!("# HELP {fam} {help}\n# TYPE {fam} {kind}\n"));
    }

    /// JSON rendering (hand-rolled; no serde in the offline image).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_map(&mut out, self.counters.iter().map(|(k, v)| (k, *v)));
        out.push_str("},\"gauges\":{");
        push_map(&mut out, self.gauges.iter().map(|(k, v)| (k, *v)));
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (k, h) in &self.hists {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{k}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
                 \"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.95),
                h.percentile(0.99)
            ));
        }
        out.push_str("}}");
        out
    }
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, u64)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{k}\":{v}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_record_and_snapshot() {
        let reg = Registry::new(true);
        let c = reg.counter("ops_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same underlying cell.
        reg.counter("ops_total").inc();
        assert_eq!(reg.snapshot().counter("ops_total"), 6);
    }

    #[test]
    fn disabled_registry_drops_records() {
        let reg = Registry::new(false);
        let c = reg.counter("x");
        let g = reg.gauge("y");
        c.inc();
        g.set(9);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        reg.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let a = Registry::new(true);
        let b = Registry::new(true);
        a.counter("ops").add(3);
        b.counter("ops").add(4);
        b.counter("only_b").inc();
        a.histogram("lat").record(10);
        b.histogram("lat").record(30);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("ops"), 7);
        assert_eq!(m.counter("only_b"), 1);
        assert_eq!(m.hists["lat"].count, 2);
        assert_eq!(m.hists["lat"].sum, 40);
    }

    #[test]
    fn prometheus_and_json_render() {
        let reg = Registry::new(true);
        reg.counter("sedna_ops_total").add(2);
        reg.gauge("sedna_keys").set(7);
        reg.histogram("sedna_latency_micros").record(100);
        let snap = reg.snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE sedna_ops_total counter"));
        assert!(text.contains("sedna_ops_total 2"));
        assert!(text.contains("sedna_keys 7"));
        assert!(text.contains("sedna_latency_micros{quantile=\"0.99\"}"));
        assert!(text.contains("sedna_latency_micros_count 1"));
        let json = snap.to_json();
        assert!(json.contains("\"sedna_ops_total\":2"));
        assert!(json.contains("\"p99\":"));
        assert!(json.contains("\"mean\":100"));
        assert!(json.contains("\"min\":100"));
    }

    #[test]
    fn exposition_attaches_exemplars_to_tail_quantiles() {
        let reg = Registry::new(true);
        let h = reg.hist("sedna_latency_micros");
        for v in 1..=100u64 {
            h.record(v);
        }
        h.record_traced(95, 0xABC);
        let text = reg.snapshot().to_prometheus();
        assert!(
            text.contains("quantile=\"0.99\"} ") && text.contains("# {trace_id=\"0xabc\"}"),
            "missing exemplar:\n{text}"
        );
        // The median line never carries an exemplar.
        for line in text.lines() {
            if line.contains("quantile=\"0.5\"") {
                assert!(!line.contains("trace_id"), "exemplar on median: {line}");
            }
        }
        // Disabled registries do not capture exemplars.
        let off = Registry::new(false);
        off.hist("x").record_traced(5, 0x1);
        assert!(!off.snapshot().to_prometheus().contains("trace_id"));
    }

    #[test]
    fn exposition_emits_help_and_one_header_per_family() {
        let reg = Registry::new(true);
        reg.counter("sedna_reqs_total{node=\"0\"}").add(1);
        reg.counter("sedna_reqs_total{node=\"1\"}").add(2);
        reg.counter("sedna_reqs_aborted").inc();
        reg.describe("sedna_reqs_total", "Requests handled per node.");
        let text = reg.snapshot().to_prometheus();
        assert_eq!(
            text.matches("# TYPE sedna_reqs_total counter").count(),
            1,
            "one TYPE header per family:\n{text}"
        );
        assert!(text.contains("# HELP sedna_reqs_total Requests handled per node.\n"));
        // Undescribed families still get a HELP line.
        assert!(text.contains("# HELP sedna_reqs_aborted "));
        assert!(text.contains("sedna_reqs_total{node=\"0\"} 1\n"));
    }

    #[test]
    fn label_and_help_escaping() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(escape_help("x\ny\\z"), "x\\ny\\\\z");
        let reg = Registry::new(true);
        let name = format!("k{{key=\"{}\"}}", escape_label_value("we\"ird\nkey"));
        reg.counter(&name).inc();
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("k{key=\"we\\\"ird\\nkey\"} 1\n"));
    }

    #[test]
    fn help_survives_merge() {
        let a = Registry::new(true);
        let b = Registry::new(true);
        a.counter("x").inc();
        b.counter("x").inc();
        b.describe("x", "described only on b");
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert!(m.to_prometheus().contains("# HELP x described only on b\n"));
    }
}
