//! Tail critical-path decomposition: where a traced op's latency went.
//!
//! A span tree ([`trace`](crate::trace)) says what happened; this module
//! says what it *cost*. Each finished trace decomposes into disjoint
//! segments that sum (with a remainder) to the end-to-end latency:
//!
//! * **queue** — issue to the first replica frame leaving the client
//!   (client-side staging and batch coalescing delay);
//! * **lock** — shard-lock wait on the critical replica (the replica whose
//!   ack completed the quorum), reported back in the ack;
//! * **apply** — the critical replica's store apply, *excluding* its lock
//!   wait;
//! * **net** — the critical replica's RPC round trip minus its apply (wire
//!   time plus the replica's actor-queue delay);
//! * **other** — everything else: quorum assembly bookkeeping, repair
//!   sends, and client completion.
//!
//! Per-op segments feed per-segment latency histograms (whose tail
//! quantiles carry trace exemplars on `/metrics`), a packed flight-recorder
//! event on slow-op promotion, and the [`TailAttribution`] accumulator the
//! nemesis `RunReport` snapshots — so a sweep can answer "crash-restart
//! p99 regressions are 80% lock-wait".

use std::sync::Mutex;

use crate::trace::{Span, SpanKind};

/// One op's latency split into critical-path segments, µs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Segments {
    /// End-to-end client latency.
    pub total_micros: u64,
    /// Issue → first replica frame sent.
    pub queue_micros: u64,
    /// Shard-lock wait on the critical replica.
    pub lock_micros: u64,
    /// Store apply on the critical replica, excluding lock wait.
    pub apply_micros: u64,
    /// Critical replica RPC minus its apply: wire + remote queueing.
    pub net_micros: u64,
    /// Remainder (assembly, repair sends, client completion).
    pub other_micros: u64,
}

impl Segments {
    /// Packs the four attributed segments into one `u64` for a compact
    /// flight-recorder event: `queue << 48 | lock << 32 | apply << 16 |
    /// net`, each saturated at 16 bits of µs.
    pub fn pack(&self) -> u64 {
        fn sat(v: u64) -> u64 {
            v.min(u16::MAX as u64)
        }
        sat(self.queue_micros) << 48
            | sat(self.lock_micros) << 32
            | sat(self.apply_micros) << 16
            | sat(self.net_micros)
    }

    /// Renders the segments as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"total_micros\":{},\"queue_micros\":{},\"lock_micros\":{},\
             \"apply_micros\":{},\"net_micros\":{},\"other_micros\":{}}}",
            self.total_micros,
            self.queue_micros,
            self.lock_micros,
            self.apply_micros,
            self.net_micros,
            self.other_micros
        )
    }
}

/// Decomposes a finished trace's spans. `total_micros` is the client's
/// end-to-end latency for the op (the spans alone cannot recover it when
/// the op timed out before any ack).
pub fn decompose(spans: &[Span], total_micros: u64) -> Segments {
    let issued = spans
        .iter()
        .find(|s| matches!(s.kind, SpanKind::Issue))
        .map(|s| s.start)
        .unwrap_or(0);
    let first_send = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::ReplicaRpc { .. }))
        .map(|s| s.start)
        .min();
    let queue = first_send
        .map(|f| f.saturating_sub(issued))
        .unwrap_or(0)
        .min(total_micros);
    // The critical replica: the RPC leg that closed last among those that
    // closed at or before the quorum decision — its ack is what completed
    // the quorum. Without an assembly mark (timeouts), the latest leg.
    let assembled_at = spans
        .iter()
        .find(|s| matches!(s.kind, SpanKind::QuorumAssembly))
        .map(|s| s.end);
    let critical = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::ReplicaRpc { .. }))
        .filter(|s| assembled_at.is_none_or(|at| s.end <= at))
        .max_by_key(|s| s.end)
        .or_else(|| {
            spans
                .iter()
                .filter(|s| matches!(s.kind, SpanKind::ReplicaRpc { .. }))
                .max_by_key(|s| s.end)
        });
    let (mut lock, mut apply, mut net) = (0, 0, 0);
    if let Some(rpc) = critical {
        let SpanKind::ReplicaRpc { replica } = rpc.kind else {
            unreachable!("filtered to rpc spans");
        };
        let rpc_micros = rpc.end.saturating_sub(rpc.start);
        // The paired apply span for the same replica, recorded at ack.
        let (apply_nanos, lock_nanos) = spans
            .iter()
            .filter_map(|s| match s.kind {
                SpanKind::NodeApply {
                    replica: r,
                    nanos,
                    lock_nanos,
                } if r == replica && s.end == rpc.end => Some((nanos, lock_nanos)),
                _ => None,
            })
            .next_back()
            .unwrap_or((0, 0));
        let apply_total = (apply_nanos / 1_000).min(rpc_micros);
        lock = (lock_nanos / 1_000).min(apply_total);
        apply = apply_total - lock;
        net = rpc_micros - apply_total;
    }
    let attributed = queue + lock + apply + net;
    // Clamp against clock artifacts so the segments never overshoot the
    // measured total; `other` absorbs what is left.
    let scale_down = attributed > total_micros;
    let (queue, lock, apply, net) = if scale_down {
        // Degenerate (skewed clocks): keep proportions, cap at total.
        let cap = |v: u64| (v as u128 * total_micros as u128 / attributed.max(1) as u128) as u64;
        (cap(queue), cap(lock), cap(apply), cap(net))
    } else {
        (queue, lock, apply, net)
    };
    Segments {
        total_micros,
        queue_micros: queue,
        lock_micros: lock,
        apply_micros: apply,
        net_micros: net,
        other_micros: total_micros.saturating_sub(queue + lock + apply + net),
    }
}

/// Per-segment sums over a population of ops.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentSums {
    /// Ops accumulated.
    pub ops: u64,
    /// Σ total.
    pub total_micros: u64,
    /// Σ queue.
    pub queue_micros: u64,
    /// Σ lock.
    pub lock_micros: u64,
    /// Σ apply.
    pub apply_micros: u64,
    /// Σ net.
    pub net_micros: u64,
    /// Σ other.
    pub other_micros: u64,
}

impl SegmentSums {
    fn add(&mut self, s: &Segments) {
        self.ops += 1;
        self.total_micros += s.total_micros;
        self.queue_micros += s.queue_micros;
        self.lock_micros += s.lock_micros;
        self.apply_micros += s.apply_micros;
        self.net_micros += s.net_micros;
        self.other_micros += s.other_micros;
    }

    fn merge(&mut self, o: &SegmentSums) {
        self.ops += o.ops;
        self.total_micros += o.total_micros;
        self.queue_micros += o.queue_micros;
        self.lock_micros += o.lock_micros;
        self.apply_micros += o.apply_micros;
        self.net_micros += o.net_micros;
        self.other_micros += o.other_micros;
    }

    /// Fraction of Σ total each segment accounts for, as
    /// `(queue, lock, apply, net, other)` in `[0, 1]` (zeros when empty).
    pub fn shares(&self) -> (f64, f64, f64, f64, f64) {
        if self.total_micros == 0 {
            return (0.0, 0.0, 0.0, 0.0, 0.0);
        }
        let t = self.total_micros as f64;
        (
            self.queue_micros as f64 / t,
            self.lock_micros as f64 / t,
            self.apply_micros as f64 / t,
            self.net_micros as f64 / t,
            self.other_micros as f64 / t,
        )
    }

    fn to_json(self) -> String {
        format!(
            "{{\"ops\":{},\"total_micros\":{},\"queue_micros\":{},\"lock_micros\":{},\
             \"apply_micros\":{},\"net_micros\":{},\"other_micros\":{}}}",
            self.ops,
            self.total_micros,
            self.queue_micros,
            self.lock_micros,
            self.apply_micros,
            self.net_micros,
            self.other_micros
        )
    }
}

/// Point-in-time copy of a [`TailAttribution`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TailSnapshot {
    /// Every decomposed op.
    pub all: SegmentSums,
    /// Ops at or above the tail threshold (the slow-op threshold).
    pub tail: SegmentSums,
}

impl TailSnapshot {
    /// Folds another snapshot in (cluster-wide merge across clients).
    pub fn merge(&mut self, o: &TailSnapshot) {
        self.all.merge(&o.all);
        self.tail.merge(&o.tail);
    }

    /// JSON body: `{"all":{...},"tail":{...}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"all\":{},\"tail\":{}}}",
            self.all.to_json(),
            self.tail.to_json()
        )
    }
}

/// Accumulates per-segment sums over every decomposed op, split into an
/// all-ops population and the tail (ops at/above the slow threshold).
/// One per client core; snapshots merge cluster-wide.
#[derive(Default)]
pub struct TailAttribution {
    inner: Mutex<TailSnapshot>,
}

impl TailAttribution {
    /// Accumulates one op's segments. `is_tail` marks ops at or above the
    /// caller's tail threshold.
    pub fn observe(&self, seg: &Segments, is_tail: bool) {
        let mut t = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        t.all.add(seg);
        if is_tail {
            t.tail.add(seg);
        }
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> TailSnapshot {
        *self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_common::NodeId;

    fn span(kind: SpanKind, start: u64, end: u64) -> Span {
        Span { kind, start, end }
    }

    fn quorum_trace() -> Vec<Span> {
        // Issue at 100; sends at 110; replica 1 acks at 150 (apply 20µs of
        // which 5µs lock wait), replica 0 acks at 180 (apply 30µs, 12µs
        // lock); quorum assembled at 180; finish at 200 → total 100.
        vec![
            span(SpanKind::Issue, 100, 100),
            span(SpanKind::ReplicaRpc { replica: NodeId(1) }, 110, 150),
            span(
                SpanKind::NodeApply {
                    replica: NodeId(1),
                    nanos: 20_000,
                    lock_nanos: 5_000,
                },
                150,
                150,
            ),
            span(SpanKind::ReplicaRpc { replica: NodeId(0) }, 110, 180),
            span(
                SpanKind::NodeApply {
                    replica: NodeId(0),
                    nanos: 30_000,
                    lock_nanos: 12_000,
                },
                180,
                180,
            ),
            span(SpanKind::QuorumAssembly, 180, 180),
        ]
    }

    #[test]
    fn decomposes_along_the_critical_replica() {
        let seg = decompose(&quorum_trace(), 100);
        // Critical leg is replica 0 (last ack before assembly): 70µs RPC,
        // 30µs apply of which 12µs lock → net 40, apply 18, lock 12.
        assert_eq!(seg.total_micros, 100);
        assert_eq!(seg.queue_micros, 10);
        assert_eq!(seg.lock_micros, 12);
        assert_eq!(seg.apply_micros, 18);
        assert_eq!(seg.net_micros, 40);
        // Remainder: 100 - 10 - 12 - 18 - 40 = 20 (assembly → finish).
        assert_eq!(seg.other_micros, 20);
        let sum = seg.queue_micros
            + seg.lock_micros
            + seg.apply_micros
            + seg.net_micros
            + seg.other_micros;
        assert_eq!(sum, seg.total_micros);
    }

    #[test]
    fn empty_and_timeout_traces_degrade_gracefully() {
        // No spans at all: everything lands in `other`.
        let seg = decompose(&[], 500);
        assert_eq!(seg.other_micros, 500);
        // Issue only (op timed out before any send).
        let seg = decompose(&[span(SpanKind::Issue, 10, 10)], 800);
        assert_eq!(seg.queue_micros, 0);
        assert_eq!(seg.other_micros, 800);
        // Send but no assembly (deadline): latest leg is the critical one.
        let spans = vec![
            span(SpanKind::Issue, 0, 0),
            span(SpanKind::ReplicaRpc { replica: NodeId(2) }, 5, 65),
            span(
                SpanKind::NodeApply {
                    replica: NodeId(2),
                    nanos: 10_000,
                    lock_nanos: 0,
                },
                65,
                65,
            ),
        ];
        let seg = decompose(&spans, 1_000);
        assert_eq!(seg.queue_micros, 5);
        assert_eq!(seg.apply_micros, 10);
        assert_eq!(seg.net_micros, 50);
        assert_eq!(seg.other_micros, 1_000 - 5 - 10 - 50);
    }

    #[test]
    fn segments_never_overshoot_the_total() {
        // Virtual-clock artifacts can make span math exceed the measured
        // total; the decomposition scales down instead of overflowing.
        let spans = vec![
            span(SpanKind::Issue, 0, 0),
            span(SpanKind::ReplicaRpc { replica: NodeId(0) }, 10, 90),
            span(
                SpanKind::NodeApply {
                    replica: NodeId(0),
                    nanos: 40_000,
                    lock_nanos: 10_000,
                },
                90,
                90,
            ),
            span(SpanKind::QuorumAssembly, 90, 90),
        ];
        let seg = decompose(&spans, 50);
        let sum = seg.queue_micros
            + seg.lock_micros
            + seg.apply_micros
            + seg.net_micros
            + seg.other_micros;
        assert!(
            sum <= seg.total_micros + 4,
            "sum={sum} vs {}",
            seg.total_micros
        );
        assert_eq!(seg.total_micros, 50);
    }

    #[test]
    fn pack_saturates_per_segment() {
        let seg = Segments {
            total_micros: 1 << 40,
            queue_micros: 3,
            lock_micros: 70_000, // > u16::MAX → saturates
            apply_micros: 5,
            net_micros: 7,
            other_micros: 0,
        };
        let p = seg.pack();
        assert_eq!(p >> 48, 3);
        assert_eq!((p >> 32) & 0xFFFF, u64::from(u16::MAX));
        assert_eq!((p >> 16) & 0xFFFF, 5);
        assert_eq!(p & 0xFFFF, 7);
    }

    #[test]
    fn tail_attribution_accumulates_and_merges() {
        let a = TailAttribution::default();
        let fast = Segments {
            total_micros: 100,
            queue_micros: 10,
            lock_micros: 0,
            apply_micros: 20,
            net_micros: 60,
            other_micros: 10,
        };
        let slow = Segments {
            total_micros: 10_000,
            queue_micros: 100,
            lock_micros: 8_000,
            apply_micros: 400,
            net_micros: 1_000,
            other_micros: 500,
        };
        a.observe(&fast, false);
        a.observe(&slow, true);
        let b = TailAttribution::default();
        b.observe(&fast, false);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.all.ops, 3);
        assert_eq!(snap.tail.ops, 1);
        assert_eq!(snap.tail.lock_micros, 8_000);
        // The tail is lock-dominated and shares() says so.
        let (_, lock_share, ..) = snap.tail.shares();
        assert!(lock_share > 0.7, "lock share {lock_share}");
        let j = snap.to_json();
        assert!(j.starts_with("{\"all\":{") && j.contains("\"tail\":{"));
        assert!(j.contains("\"lock_micros\":8000"));
    }
}
