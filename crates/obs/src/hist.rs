//! Log-bucketed latency histogram.
//!
//! Values are binned log-linearly (HdrHistogram-style): each power-of-two
//! octave is split into [`SUBS`] equal sub-buckets, bounding the relative
//! quantization error at `1/SUBS` (25%) while keeping the whole `u64` range
//! in [`BUCKETS`] fixed slots. Buckets are relaxed atomics so one histogram
//! can be recorded into from many threads and snapshotted without locking.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket bits per octave (4 sub-buckets → ≤25% quantization error).
const SUB_BITS: u32 = 2;
/// Sub-buckets per power-of-two octave.
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count covering all of `u64` (highest index is reached by
/// `u64::MAX`: group `63 - SUB_BITS + 1`, sub-bucket `SUBS - 1`).
pub const BUCKETS: usize = (64 - SUB_BITS as usize) * SUBS + SUBS;

/// Maps a value to its bucket index. Values below `SUBS` map identically.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & (SUBS as u64 - 1)) as usize;
    ((msb - SUB_BITS + 1) as usize) * SUBS + sub
}

/// Midpoint of the value range covered by bucket `idx` — the value reported
/// for any sample that landed in it.
#[inline]
fn bucket_mid(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let group = (idx / SUBS) as u32;
    let sub = (idx % SUBS) as u64;
    let msb = group + SUB_BITS - 1;
    let shift = msb - SUB_BITS;
    let low = (1u64 << msb) + (sub << shift);
    low + ((1u64 << shift) >> 1)
}

/// Concurrent log-bucketed histogram.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    /// Last trace id recorded into each bucket (0 = none) — OpenMetrics
    /// exemplars: a scraped tail bucket links back to a concrete traced
    /// operation that landed in it.
    exemplars: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// `u64::MAX` until the first sample lands.
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            exemplars: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one sample. Relaxed atomics; safe from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Records one sample carrying a trace id. Identical to
    /// [`Histogram::record`] plus one relaxed store that remembers the
    /// trace as the bucket's exemplar — whichever bucket the p99 lands in
    /// later, exposition can name a real operation that fell there.
    #[inline]
    pub fn record_traced(&self, v: u64, trace: u64) {
        let idx = bucket_index(v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        if trace != 0 {
            self.exemplars[idx].store(trace, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (exact, not bucketed; 0 when empty).
    pub fn min(&self) -> u64 {
        match self.min.load(Ordering::Relaxed) {
            u64::MAX => 0,
            m => m,
        }
    }

    /// Value at quantile `q` in `[0, 1]` (bucket midpoint; 0 when empty).
    pub fn percentile(&self, q: f64) -> u64 {
        self.snapshot().percentile(q)
    }

    /// Point-in-time copy for merging and rendering.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            exemplars: self
                .exemplars
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t.load(Ordering::Relaxed) {
                    0 => None,
                    trace => Some((i as u32, trace)),
                })
                .collect(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            min: self.min(),
        }
    }
}

/// Plain (non-atomic) copy of a histogram's state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Vec<u64>,
    /// Sparse `(bucket index, trace id)` exemplars captured by
    /// [`Histogram::record_traced`], ascending by bucket.
    exemplars: Vec<(u32, u64)>,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
}

impl HistSnapshot {
    /// Records one sample into this plain snapshot — the single-threaded
    /// counterpart of [`Histogram::record`], used by the rolling-window
    /// layer where each window is owned by one lock.
    pub fn record(&mut self, v: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        self.buckets[bucket_index(v)] += 1;
        self.min = if self.count == 0 { v } else { self.min.min(v) };
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }
    /// Value at quantile `q` in `[0, 1]` (bucket midpoint; 0 when empty).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_mid(idx).min(self.max);
            }
        }
        self.max
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The exemplar nearest quantile `q`, searching the quantile's bucket
    /// first, then upward through the tail, then downward — so a scraped
    /// p99 line names an operation at (or just around) that latency.
    /// Returns `(trace, approximate value)`.
    pub fn exemplar_near(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 || self.exemplars.is_empty() {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let mut target = self.buckets.len().saturating_sub(1);
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                target = idx;
                break;
            }
        }
        let target = target as u32;
        // `exemplars` is ascending by bucket: first at/above the target,
        // else the highest below it.
        let hit = self
            .exemplars
            .iter()
            .find(|(b, _)| *b >= target)
            .or_else(|| self.exemplars.last());
        hit.map(|&(b, trace)| (trace, bucket_mid(b as usize).min(self.max)))
    }

    /// All captured exemplars, `(bucket midpoint value, trace)` ascending.
    pub fn exemplars(&self) -> Vec<(u64, u64)> {
        self.exemplars
            .iter()
            .map(|&(b, t)| (bucket_mid(b as usize), t))
            .collect()
    }

    /// Folds `other` into `self` (bucket-wise sum; max of maxima, min of
    /// minima over non-empty sides).
    pub fn merge(&mut self, other: &HistSnapshot) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        // Exemplar union: keep ours, adopt the other side's for buckets we
        // have none in (merged order stays ascending).
        for &(b, t) in &other.exemplars {
            match self.exemplars.binary_search_by_key(&b, |e| e.0) {
                Ok(_) => {}
                Err(pos) => self.exemplars.insert(pos, (b, t)),
            }
        }
        self.min = match (self.count > 0, other.count > 0) {
            (true, true) => self.min.min(other.min),
            (false, true) => other.min,
            _ => self.min,
        };
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..4 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 6);
        assert_eq!(s.percentile(0.01), 0);
        assert_eq!(s.percentile(1.0), 3);
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut last = 0;
        for v in [0u64, 1, 2, 3, 4, 7, 8, 100, 1000, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index regressed at {v}");
            assert!(idx < BUCKETS);
            last = idx;
        }
        // Every value maps to a bucket whose midpoint is within 25%.
        for v in [10u64, 100, 999, 12_345, 1_000_000] {
            let mid = bucket_mid(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 0.25, "v={v} mid={mid} err={err}");
        }
    }

    #[test]
    fn percentiles_track_a_uniform_distribution() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        assert!((4_000..=6_500).contains(&p50), "p50={p50}");
        assert!((9_000..=10_000).contains(&p99), "p99={p99}");
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            both.record(v * 3);
        }
        for v in 0..500u64 {
            b.record(v * 7);
            both.record(v * 7);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, both.snapshot());
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.snapshot().mean(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.snapshot().min, 0);
    }

    #[test]
    fn min_max_mean_are_exact() {
        let h = Histogram::new();
        for v in [40u64, 7, 1_000, 13] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.min, 7);
        assert_eq!(s.max, 1_000);
        assert_eq!(s.mean(), (40 + 7 + 1_000 + 13) / 4);
        // Merging an empty snapshot must not disturb min.
        let mut m = s.clone();
        m.merge(&Histogram::new().snapshot());
        assert_eq!(m.min, 7);
        // Merging into an empty snapshot adopts the other side's min.
        let mut e = Histogram::new().snapshot();
        e.merge(&s);
        assert_eq!(e.min, 7);
    }

    #[test]
    fn exemplars_link_tail_buckets_to_traces() {
        let h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v); // untraced bulk
        }
        h.record_traced(950, 0xAA); // near the tail
        h.record_traced(5, 0xBB); // near the head
        h.record_traced(990, 0); // trace 0 = no exemplar
        let s = h.snapshot();
        let (trace, value) = s.exemplar_near(0.99).expect("tail exemplar");
        assert_eq!(trace, 0xAA);
        assert!((700..=1_000).contains(&value), "value={value}");
        let (head_trace, _) = s.exemplar_near(0.0).expect("head exemplar");
        assert_eq!(head_trace, 0xBB);
        assert_eq!(s.exemplars().len(), 2);
    }

    #[test]
    fn exemplar_falls_back_below_the_target_bucket() {
        let h = Histogram::new();
        h.record_traced(10, 0xCC);
        for _ in 0..100 {
            h.record(100_000); // tail mass with no exemplars
        }
        let (trace, _) = h.snapshot().exemplar_near(0.99).expect("fallback");
        assert_eq!(trace, 0xCC);
        assert_eq!(Histogram::new().snapshot().exemplar_near(0.99), None);
    }

    #[test]
    fn merge_unions_exemplars_preferring_self() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_traced(100, 1);
        b.record_traced(100, 2); // same bucket: a's kept
        b.record_traced(50_000, 3); // new bucket: adopted
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        let ex = m.exemplars();
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].1, 1);
        assert_eq!(ex[1].1, 3);
        // Ascending bucket order is preserved for binary search.
        assert!(ex[0].0 < ex[1].0);
    }

    #[test]
    fn snapshot_record_matches_atomic_record() {
        let h = Histogram::new();
        let mut s = HistSnapshot::default();
        for v in [3u64, 99, 0, 12_345, 6] {
            h.record(v);
            s.record(v);
        }
        assert_eq!(s, h.snapshot());
    }
}
