//! Deployment layout and tunables.

use sedna_common::time::Micros;
use sedna_common::NodeId;
// Re-exported so deployment-level crates (harnesses, binaries) can pick
// resolution policies without depending on the store crate directly.
pub use sedna_memstore::{ResolutionConfig, TablePolicy};
use sedna_net::actor::ActorId;
use sedna_persist::PersistMode;
use sedna_replication::QuorumConfig;
use sedna_ring::Partitioner;

/// Static description of one Sedna deployment.
///
/// Actor addressing is positional and fixed at build time:
/// `[0 .. coord)` = coordination replicas, `coord` = cluster manager,
/// `[coord+1 .. coord+1+data_nodes)` = data nodes, anything after = clients
/// and gateways. All actors derive routing from this shared layout, which is
/// the in-simulation equivalent of the paper's static cluster membership
/// list.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of coordination replicas (the paper uses a ZooKeeper
    /// sub-cluster; 3 is typical).
    pub coord_replicas: usize,
    /// Number of data nodes at maximum cluster size.
    pub data_nodes: usize,
    /// The fixed key-space partition function.
    pub partitioner: Partitioner,
    /// Replication parameters (paper: N=3, R=2, W=2).
    pub quorum: QuorumConfig,
    /// Per-node memory budget for the local store (bytes); `None` = no
    /// eviction.
    pub memory_budget: Option<usize>,
    /// Durability policy for data nodes.
    pub persist: PersistMode,
    /// Trigger-scanner period on data nodes (µs).
    pub scan_interval_micros: Micros,
    /// Coordination heartbeat the nodes ping with (µs).
    pub ping_interval_micros: Micros,
    /// Manager membership-poll period (µs).
    pub manager_poll_micros: Micros,
    /// Client/request deadline before declaring replicas failed (µs).
    pub request_deadline_micros: Micros,
    /// CPU service time for a replica read (µs) in the simulator.
    pub read_service_micros: Micros,
    /// CPU service time for a replica write (µs) in the simulator.
    pub write_service_micros: Micros,
    /// How often each node publishes its imbalance row (µs); 0 disables
    /// stats publication (and with it, load-driven rebalancing).
    pub stats_publish_interval_micros: Micros,
    /// Manager: do nothing while `max_score/mean_score` is at or below
    /// this (Sec. III-B's imbalance-table trigger).
    pub rebalance_trigger_ratio: f64,
    /// Manager: cap on vnode moves per rebalance round.
    pub rebalance_max_moves: usize,
    /// Manager: run the imbalance check every this many membership polls.
    pub rebalance_check_every: u32,
    /// Anti-entropy period (µs): each node round-robins over its vnodes,
    /// exchanging digests with peer replicas and merging diffs — healing
    /// divergence that no read happens to touch. 0 disables.
    pub sync_interval_micros: Micros,
    /// Whether an inconsistent quorum read pushes the merged freshest
    /// version back to lagging replicas (the paper's asynchronous read
    /// recovery, Sec. III-C). Disabling it is only useful to harnesses
    /// that deliberately weaken the system (the nemesis mutation test).
    pub read_repair_enabled: bool,
    /// Manager: a known member must be absent from this many *consecutive*
    /// membership polls before it is treated as having left. Rides out the
    /// blip when a restarted node's old session expires — deleting its
    /// ephemeral member znode — an instant before the node re-creates it
    /// under its new session. 1 reverts to leave-on-first-absence.
    pub leave_debounce_polls: u32,
    /// Datapath batching: at most this many replica ops are coalesced into
    /// one [`crate::messages::ReplicaOp::Batch`] frame per destination.
    /// `1` disables coalescing entirely — every op travels as its own frame,
    /// reproducing the unbatched datapath bit for bit.
    pub max_batch_ops: usize,
    /// Datapath batching: how long a staged op may wait for companions
    /// before a time-based flush (µs). `0` flushes at the end of the tick
    /// that issued the op, so only ops from the same tick coalesce; a
    /// positive window lets partial batches ride across ticks (pipelined
    /// embedders) at a bounded latency cost.
    pub max_batch_delay_micros: Micros,
    /// Observability: whether the metrics registries record. Recording
    /// never touches the virtual clock, so this cannot change simulated
    /// behavior — disabling it only removes the (small) wall-clock cost of
    /// the atomic bumps, which the `mixed_workload` ablation measures.
    pub metrics_enabled: bool,
    /// Observability: client ops whose end-to-end latency reaches this
    /// threshold (µs) get their full span tree promoted into the event
    /// journal. Well above the LAN quorum RTT (~1 ms) and below the
    /// request deadline, so it singles out genuinely struggling ops.
    pub slow_op_threshold_micros: Micros,
    /// Observability: retained capacity of each event journal (events).
    pub journal_capacity: usize,
    /// Observability: how many keys each per-vnode Space-Saving sketch
    /// monitors. `0` disables hot-key tracking entirely.
    pub hot_key_capacity: usize,
    /// Per-table sibling resolution under dotted version vectors, installed
    /// into every data node's store. The default (uniform last-writer-wins)
    /// reproduces the paper's visible semantics while still tracking causal
    /// clocks underneath.
    pub resolution: ResolutionConfig,
    /// Paper-exact bare-timestamp versioning: no causal contexts, no row
    /// clocks, `write_latest` is raw timestamp-wins. Kept selectable so the
    /// skewed-clock nemesis sweep can demonstrate the acknowledged-write
    /// loss DVV removes.
    pub legacy_timestamps: bool,
    /// Session-floor gating on quorum reads: a clean (R-equal) answer is
    /// downgraded to degraded unless the agreeing replicas' joined row
    /// clock covers every dot the client session has observed for the key.
    /// R-equality alone cannot promise session monotonicity once a vnode
    /// moves — the new replica set need not intersect the old one — so
    /// without this gate a rebalance can serve a causally stale answer as
    /// clean. Off in legacy-timestamp mode (no clocks to prove anything
    /// with) and in deliberately weakened harness configurations.
    pub session_floor_reads: bool,
}

impl ClusterConfig {
    /// The paper's evaluation cluster: 9 servers total on gigabit Ethernet
    /// (here: 3 coordination replicas + 9 data nodes so the data-path node
    /// count matches the paper's), N=3/R=2/W=2, 100 vnodes per node.
    pub fn paper() -> Self {
        ClusterConfig {
            coord_replicas: 3,
            data_nodes: 9,
            partitioner: Partitioner::for_max_nodes(9),
            quorum: QuorumConfig::PAPER,
            memory_budget: None,
            persist: PersistMode::None,
            scan_interval_micros: 20_000,
            ping_interval_micros: 200_000,
            manager_poll_micros: 100_000,
            request_deadline_micros: 50_000,
            // 2012-era dual-core Xeon serving a Java storage service over
            // TCP: per-request CPU in the low hundreds of microseconds once
            // the kernel/network stack and (de)serialization are included —
            // consistent with the paper's measured single-client rate of
            // well under 1k ops/s. This is what makes nine colocated
            // clients contend visibly (Fig. 8).
            read_service_micros: 120,
            write_service_micros: 150,
            stats_publish_interval_micros: 500_000,
            rebalance_trigger_ratio: 1.5,
            rebalance_max_moves: 4,
            rebalance_check_every: 10,
            sync_interval_micros: 2_000_000,
            read_repair_enabled: true,
            leave_debounce_polls: 3,
            // Batching off by default: the paper's datapath is one frame
            // per replica op. Deployments opt in via `with_batching`.
            max_batch_ops: 1,
            max_batch_delay_micros: 0,
            metrics_enabled: true,
            slow_op_threshold_micros: 10_000,
            journal_capacity: 256,
            hot_key_capacity: 8,
            resolution: ResolutionConfig::default(),
            legacy_timestamps: false,
            session_floor_reads: true,
        }
    }

    /// Sets the default sibling-resolution policy for every table.
    pub fn with_sibling_resolution(mut self, policy: TablePolicy) -> Self {
        self.resolution.default = policy;
        self
    }

    /// Adds a per-table resolution override (first matching prefix wins).
    pub fn with_table_policy(mut self, prefix: Vec<u8>, policy: TablePolicy) -> Self {
        self.resolution.tables.push((prefix, policy));
        self
    }

    /// Selects paper-exact bare-timestamp versioning (see
    /// [`ClusterConfig::legacy_timestamps`]).
    pub fn with_legacy_timestamps(mut self, legacy: bool) -> Self {
        self.legacy_timestamps = legacy;
        if legacy {
            // Legacy rows carry no clocks, so the clean-read session gate
            // has nothing to prove coverage with — the old scheme simply
            // does not give the guarantee.
            self.session_floor_reads = false;
        }
        self
    }

    /// Turns the clean-read session-floor gate on or off (see
    /// [`ClusterConfig::session_floor_reads`]). Only harnesses that
    /// deliberately weaken the system should turn it off.
    pub fn with_session_floor_reads(mut self, enabled: bool) -> Self {
        self.session_floor_reads = enabled;
        self
    }

    /// Sets the per-vnode hot-key sketch capacity (`0` disables).
    pub fn with_hot_keys(mut self, capacity: usize) -> Self {
        self.hot_key_capacity = capacity;
        self
    }

    /// Enables per-destination op coalescing on the replica datapath.
    pub fn with_batching(mut self, max_ops: usize, max_delay_micros: Micros) -> Self {
        self.max_batch_ops = max_ops.max(1);
        self.max_batch_delay_micros = max_delay_micros;
        self
    }

    /// Turns metric recording on or off (the registries still exist and
    /// render; handles just stop recording).
    pub fn with_metrics(mut self, enabled: bool) -> Self {
        self.metrics_enabled = enabled;
        self
    }

    /// Sets the slow-op promotion threshold (µs).
    pub fn with_slow_op_threshold(mut self, micros: Micros) -> Self {
        self.slow_op_threshold_micros = micros;
        self
    }

    /// Turns asynchronous read recovery (read repair) on or off.
    pub fn with_read_repair(mut self, enabled: bool) -> Self {
        self.read_repair_enabled = enabled;
        self
    }

    /// A small 3-data-node cluster for tests.
    pub fn small() -> Self {
        ClusterConfig {
            coord_replicas: 3,
            data_nodes: 3,
            partitioner: Partitioner::new(60),
            ..ClusterConfig::paper()
        }
    }

    /// Actor address of coordination replica `i`.
    pub fn coord_actor(&self, i: usize) -> ActorId {
        assert!(i < self.coord_replicas);
        ActorId(i as u32)
    }

    /// All coordination replica addresses.
    pub fn coord_actors(&self) -> Vec<ActorId> {
        (0..self.coord_replicas)
            .map(|i| self.coord_actor(i))
            .collect()
    }

    /// The cluster manager's address.
    pub fn manager_actor(&self) -> ActorId {
        ActorId(self.coord_replicas as u32)
    }

    /// Actor address of data node `node`.
    pub fn node_actor(&self, node: NodeId) -> ActorId {
        assert!((node.0 as usize) < self.data_nodes, "{node:?} out of range");
        ActorId(self.coord_replicas as u32 + 1 + node.0)
    }

    /// Reverse mapping: which data node answers at `actor`.
    pub fn actor_node(&self, actor: ActorId) -> Option<NodeId> {
        let base = self.coord_replicas as u32 + 1;
        if actor == ActorId::EXTERNAL {
            return None;
        }
        if actor.0 >= base && ((actor.0 - base) as usize) < self.data_nodes {
            Some(NodeId(actor.0 - base))
        } else {
            None
        }
    }

    /// First actor id available for clients/gateways.
    pub fn first_client_actor(&self) -> ActorId {
        ActorId(self.coord_replicas as u32 + 1 + self.data_nodes as u32)
    }

    /// Timestamp-origin id for external client number `i` — disjoint from
    /// data-node origins so every writer stamps uniquely.
    pub fn client_origin(&self, i: u32) -> NodeId {
        NodeId(1_000 + i)
    }
}

/// Well-known znode paths.
pub mod paths {
    /// Root of the deployment's namespace.
    pub const ROOT: &str = "/sedna";
    /// The encoded [`sedna_ring::VNodeMap`] (the vnode→real-node mapping).
    pub const RING: &str = "/sedna/ring";
    /// Parent of the per-node ephemeral member znodes.
    pub const MEMBERS: &str = "/sedna/members";
    /// Parent of the per-node imbalance rows (Sec. III-B).
    pub const IMBALANCE: &str = "/sedna/imbalance";

    /// Member znode path for a node.
    pub fn member(node: sedna_common::NodeId) -> String {
        format!("{MEMBERS}/{}", node.0)
    }

    /// Parses a member znode child name back into a node id.
    pub fn parse_member(name: &str) -> Option<sedna_common::NodeId> {
        name.parse::<u32>().ok().map(sedna_common::NodeId)
    }

    /// Imbalance-row znode path for a node.
    pub fn imbalance(node: sedna_common::NodeId) -> String {
        format!("{IMBALANCE}/{}", node.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_consistent() {
        let cfg = ClusterConfig::paper();
        assert_eq!(cfg.coord_actors(), vec![ActorId(0), ActorId(1), ActorId(2)]);
        assert_eq!(cfg.manager_actor(), ActorId(3));
        assert_eq!(cfg.node_actor(NodeId(0)), ActorId(4));
        assert_eq!(cfg.node_actor(NodeId(8)), ActorId(12));
        assert_eq!(cfg.first_client_actor(), ActorId(13));
        for n in 0..9 {
            assert_eq!(cfg.actor_node(cfg.node_actor(NodeId(n))), Some(NodeId(n)));
        }
        assert_eq!(cfg.actor_node(ActorId(0)), None);
        assert_eq!(cfg.actor_node(ActorId(3)), None);
        assert_eq!(cfg.actor_node(ActorId(13)), None);
        assert_eq!(cfg.actor_node(ActorId::EXTERNAL), None);
    }

    #[test]
    fn client_origins_disjoint_from_nodes() {
        let cfg = ClusterConfig::paper();
        for i in 0..100 {
            assert!(cfg.client_origin(i).0 >= 1_000);
        }
    }

    #[test]
    fn member_paths_roundtrip() {
        let p = paths::member(NodeId(7));
        assert_eq!(p, "/sedna/members/7");
        assert_eq!(paths::parse_member("7"), Some(NodeId(7)));
        assert_eq!(paths::parse_member("x"), None);
    }

    #[test]
    fn paper_config_matches_testbed() {
        let cfg = ClusterConfig::paper();
        assert_eq!(cfg.data_nodes, 9);
        assert_eq!(cfg.quorum, QuorumConfig::PAPER);
        assert_eq!(cfg.partitioner.vnode_count(), 900);
    }
}
