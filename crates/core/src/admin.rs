//! The scrapeable per-node admin surface.
//!
//! A deployment is only observable if an operator can point `curl` (or a
//! Prometheus scraper) at it. This module provides that: an [`AdminActor`]
//! that runs on the threaded net stack like any other actor, owns a plain
//! TCP listener, and answers minimal HTTP/1.0 `GET`s:
//!
//! * `/metrics`    — Prometheus text exposition of the cluster-merged
//!   registries, plus live hot-key gauges rendered from the per-node
//!   telemetry (they carry a `key` label, so they are rendered fresh per
//!   scrape instead of churning stale series through a registry).
//! * `/journal`    — the merged event journals as JSON.
//! * `/vnodes`     — per-node per-vnode read/write/bytes/keys rows as JSON.
//! * `/hotkeys`    — per-node Space-Saving hot-key estimates as JSON.
//! * `/staleness`  — the rolling-window staleness-lag view as JSON:
//!   windowed ts-delta / age / convergence histograms, outstanding repair
//!   pushes, and a derived cluster ops/sec rate.
//! * `/internals`  — per-node engine internals as JSON: probe lengths,
//!   writer-mutex waits, rehashes, eviction sampling quality, slab
//!   occupancy, and the epoch-reclamation stats (pins, pending backlog,
//!   retire→free latency).
//! * `/flight`     — the process-wide flight recorder: per-thread event
//!   rings plus the anomaly dumps that froze them, as JSON.
//!
//! The windowed `/staleness` histograms are *also* exposed on `/metrics`
//! under a `_10s` suffix (`sedna_staleness_age_micros_10s{quantile=…}`),
//! so they never collide with their cumulative since-boot twins in the
//! merged exposition.
//!
//! The HTTP support is deliberately tiny (request line + headers in,
//! `Connection: close` out, one request per connection) so the surface
//! stays dependency-free and boringly auditable.
//!
//! Shared state flows the same way the cluster harness already shares
//! metrics: `Arc` handles ([`NodeTelemetry`], registries, journals,
//! staleness windows) are captured *before* each actor moves into its
//! thread, and the admin actor reads them lock-lightly on demand.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sedna_common::time::Micros;
use sedna_common::{NodeId, VNodeId};
use sedna_memstore::EngineSnapshot;
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_obs::escape_label_value;
use sedna_obs::flight;
use sedna_obs::hist::HistSnapshot;
use sedna_obs::journal::EventJournal;
use sedna_obs::registry::{MetricsSnapshot, Registry};
use sedna_obs::window::RateTracker;
use sedna_ring::{HotKeyRow, VNodeStats};

use crate::client::StalenessWindows;
use crate::messages::SednaMsg;

const T_ADMIN_POLL: TimerToken = TimerToken(0xAD_01);
/// Accept-poll cadence. Short enough that `curl` feels instant, long
/// enough that an idle admin actor costs nothing measurable.
const POLL_MICROS: Micros = 25_000;
/// Upper bound on accepted connections handled per poll tick.
const MAX_CONNS_PER_POLL: usize = 32;
/// Upper bound on request bytes read before answering 400.
const MAX_REQUEST_BYTES: usize = 4096;
/// Newest events served per thread ring by `/flight`.
const FLIGHT_DUMP_EVENTS: usize = 256;

// ---------------------------------------------------------------------------
// Per-node telemetry
// ---------------------------------------------------------------------------

/// One vnode's load counters as last published by its node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VNodeRow {
    /// The vnode.
    pub vnode: VNodeId,
    /// Reads served.
    pub reads: u64,
    /// Writes applied.
    pub writes: u64,
    /// Stored payload bytes.
    pub bytes: u64,
    /// Stored keys.
    pub keys: u64,
}

#[derive(Default)]
struct TelemetryInner {
    updated_micros: Micros,
    vnodes: Vec<VNodeRow>,
    hot_keys: Vec<HotKeyRow>,
    engine: Option<EngineSnapshot>,
}

/// A node's live per-vnode load and hot-key view, shared with the admin
/// surface the way registries are: the node keeps the `Arc` and refreshes
/// it on every stats tick; the admin actor reads it on demand.
#[derive(Default)]
pub struct NodeTelemetry {
    inner: Mutex<TelemetryInner>,
}

impl NodeTelemetry {
    /// Replaces the published view (called from the node's stats tick).
    pub fn publish(
        &self,
        now: Micros,
        owned: &[VNodeId],
        stats: &[VNodeStats],
        hot_keys: Vec<HotKeyRow>,
    ) {
        let vnodes = owned
            .iter()
            .map(|&v| {
                let s = &stats[v.index()];
                VNodeRow {
                    vnode: v,
                    reads: s.reads,
                    writes: s.writes,
                    bytes: s.bytes,
                    keys: s.keys,
                }
            })
            .collect();
        let mut inner = self.inner.lock();
        inner.updated_micros = now;
        inner.vnodes = vnodes;
        inner.hot_keys = hot_keys;
    }

    /// Last publish time and the per-vnode rows.
    pub fn vnodes(&self) -> (Micros, Vec<VNodeRow>) {
        let inner = self.inner.lock();
        (inner.updated_micros, inner.vnodes.clone())
    }

    /// The node's current hot-key estimates, hottest first.
    pub fn hot_keys(&self) -> Vec<HotKeyRow> {
        self.inner.lock().hot_keys.clone()
    }

    /// Replaces the published engine-internals snapshot (called from the
    /// node's stats tick alongside [`NodeTelemetry::publish`]).
    pub fn publish_engine(&self, snap: EngineSnapshot) {
        self.inner.lock().engine = Some(snap);
    }

    /// The last published engine-internals snapshot, if any.
    pub fn engine(&self) -> Option<EngineSnapshot> {
        self.inner.lock().engine.clone()
    }
}

// ---------------------------------------------------------------------------
// Admin state + actor
// ---------------------------------------------------------------------------

/// Everything the admin surface serves, captured before the owning actors
/// moved into their threads.
#[derive(Default)]
pub struct AdminState {
    /// Metric registries (nodes, manager, gateways).
    pub registries: Vec<Arc<Registry>>,
    /// Event journals, merged and time-ordered on demand.
    pub journals: Vec<Arc<EventJournal>>,
    /// Per-node telemetry, indexed by position (node id order).
    pub telemetry: Vec<(NodeId, Arc<NodeTelemetry>)>,
    /// Staleness windows of every client/gateway in the deployment.
    pub staleness: Vec<Arc<StalenessWindows>>,
}

impl AdminState {
    fn merged_snapshot(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for reg in &self.registries {
            merged.merge(&reg.snapshot());
        }
        merged
    }
}

/// The admin actor: owns a non-blocking [`TcpListener`] and polls accepts
/// from its timer, so it coexists with the one-thread-per-actor runtime
/// without ever blocking the net stack.
pub struct AdminActor {
    listener: TcpListener,
    state: AdminState,
    /// Cluster ops/sec derived from the cumulative read+write gauges,
    /// sampled once per poll tick.
    ops_rate: RateTracker,
}

impl AdminActor {
    /// Binds the admin listener (use port 0 for an ephemeral port) and
    /// returns the actor plus the bound address.
    pub fn bind(addr: &str, state: AdminState) -> std::io::Result<(AdminActor, SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok((
            AdminActor {
                listener,
                state,
                ops_rate: RateTracker::new(1_000_000, 30),
            },
            local,
        ))
    }

    fn poll(&mut self, now: Micros) {
        let snap = self.state.merged_snapshot();
        let ops = snap.gauge("sedna_node_reads") + snap.gauge("sedna_node_writes");
        self.ops_rate.observe(now, ops);
        for _ in 0..MAX_CONNS_PER_POLL {
            match self.listener.accept() {
                Ok((stream, _)) => self.serve(stream, now),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn serve(&self, mut stream: TcpStream, now: Micros) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
        let Some(path) = read_request_path(&mut stream) else {
            respond(
                &mut stream,
                "400 Bad Request",
                "text/plain",
                "bad request\n",
            );
            return;
        };
        match path.as_str() {
            "/metrics" => {
                let body = self.render_metrics(now);
                respond(
                    &mut stream,
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    &body,
                );
            }
            "/journal" => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &self.render_journal(),
            ),
            "/vnodes" => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &self.render_vnodes(),
            ),
            "/hotkeys" => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &self.render_hotkeys(),
            ),
            "/staleness" => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &self.render_staleness(now),
            ),
            "/internals" => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &self.render_internals(),
            ),
            "/flight" => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &flight::render_json(FLIGHT_DUMP_EVENTS),
            ),
            _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
        }
    }

    /// The Prometheus exposition: every registry merged, plus hot-key
    /// gauges rendered live from telemetry. The hot-key series carry a
    /// `key` label and churn as the sketch evicts, so they are rendered per
    /// scrape rather than parked in a registry where evicted keys would
    /// linger forever.
    fn render_metrics(&self, now: Micros) -> String {
        let mut out = self.state.merged_snapshot().to_prometheus();
        let mut hot = String::new();
        for (node, telemetry) in &self.state.telemetry {
            for hk in telemetry.hot_keys() {
                let key = escape_label_value(&String::from_utf8_lossy(hk.key.as_bytes()));
                hot.push_str(&format!(
                    "sedna_hotkey_ops{{node=\"{}\",vnode=\"{}\",key=\"{}\"}} {}\n",
                    node.0, hk.vnode.0, key, hk.count
                ));
            }
        }
        if !hot.is_empty() {
            out.push_str(
                "# HELP sedna_hotkey_ops Estimated accesses per hot key (Space-Saving upper bound).\n",
            );
            out.push_str("# TYPE sedna_hotkey_ops gauge\n");
            out.push_str(&hot);
        }
        out.push_str(
            "# HELP sedna_admin_ops_per_sec Cluster read+write throughput over the rate window.\n",
        );
        out.push_str("# TYPE sedna_admin_ops_per_sec gauge\n");
        out.push_str(&format!(
            "sedna_admin_ops_per_sec {}\n",
            self.ops_rate.rate_per_sec(now)
        ));
        // The rolling-window staleness twins, suffixed `_10s` so they never
        // shadow the cumulative series of the same base name above.
        let mut ts_delta = HistSnapshot::default();
        let mut age = HistSnapshot::default();
        let mut convergence = HistSnapshot::default();
        for w in &self.state.staleness {
            ts_delta.merge(&w.ts_delta.merged(now));
            age.merge(&w.age.merged(now));
            convergence.merge(&w.convergence.merged(now));
        }
        for (name, h) in [
            ("sedna_staleness_ts_delta_micros_10s", &ts_delta),
            ("sedna_staleness_age_micros_10s", &age),
            ("sedna_staleness_convergence_micros_10s", &convergence),
        ] {
            out.push_str(&format!(
                "# HELP {name} Rolling-window (10s windows, last minute) twin of the cumulative series.\n# TYPE {name} summary\n"
            ));
            for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{label}\"}} {}\n",
                    h.percentile(q)
                ));
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }

    fn render_journal(&self) -> String {
        let mut events = Vec::new();
        for j in &self.state.journals {
            events.extend(j.events());
        }
        events.sort_by_key(|e| e.at);
        let mut out = String::from("{\"events\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"at\":{},\"event\":\"{}\"}}",
                e.at,
                json_escape(&e.kind.to_string())
            ));
        }
        out.push_str("]}");
        out
    }

    fn render_vnodes(&self) -> String {
        let mut out = String::from("{\"nodes\":[");
        for (i, (node, telemetry)) in self.state.telemetry.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (updated, rows) = telemetry.vnodes();
            out.push_str(&format!(
                "{{\"node\":{},\"updated_micros\":{},\"vnodes\":[",
                node.0, updated
            ));
            for (j, r) in rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"vnode\":{},\"reads\":{},\"writes\":{},\"bytes\":{},\"keys\":{}}}",
                    r.vnode.0, r.reads, r.writes, r.bytes, r.keys
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    fn render_hotkeys(&self) -> String {
        let mut out = String::from("{\"nodes\":[");
        for (i, (node, telemetry)) in self.state.telemetry.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"node\":{},\"hot_keys\":[", node.0));
            for (j, hk) in telemetry.hot_keys().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"vnode\":{},\"key\":\"{}\",\"count\":{}}}",
                    hk.vnode.0,
                    json_escape(&String::from_utf8_lossy(hk.key.as_bytes())),
                    hk.count
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Per-node engine internals. Note the `epoch` block is process-wide
    /// (the reclamation shim is shared by every store in this process);
    /// in-process multi-node deployments will show the same epoch figures
    /// on every node row.
    fn render_internals(&self) -> String {
        let mut out = String::from("{\"nodes\":[");
        let mut first = true;
        for (node, telemetry) in &self.state.telemetry {
            let Some(e) = telemetry.engine() else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{{\"node\":{},", node.0));
            out.push_str(&format!(
                "\"probe_len\":{},\"locks\":{},\"lock_waits\":{},\"lock_contention\":{:.6},\"lock_wait_micros\":{},",
                hist_json(&e.probe_len),
                e.locks,
                e.lock_waits,
                e.lock_contention(),
                hist_json(&e.lock_wait),
            ));
            out.push_str(&format!(
                "\"rehashes\":{},\"rehash_rows_moved\":{},\"evict_rounds\":{},\"evict_sampled\":{},\
                 \"evict_exact_rounds\":{},\"evict_sample_mean\":{:.3},\"batch_applies\":{},\"batch_ops\":{},",
                e.rehashes,
                e.rehash_rows_moved,
                e.evict_rounds,
                e.evict_sampled,
                e.evict_exact_rounds,
                e.evict_sample_mean(),
                e.batch_applies,
                e.batch_ops,
            ));
            out.push_str(&format!(
                "\"live_rows\":{},\"tombstones\":{},\"table_slots\":{},\"slab_pages\":{},\
                 \"slab_cells\":{},\"slab_free_cells\":{},\"slab_occupancy\":{:.6},",
                e.live_rows,
                e.tombstones,
                e.table_slots,
                e.slab_pages,
                e.slab_cells,
                e.slab_free_cells,
                e.slab_occupancy(),
            ));
            let ep = &e.epoch;
            out.push_str(&format!(
                "\"epoch\":{{\"epoch\":{},\"pins\":{},\"depth_hist\":{:?},\"retires\":{},\
                 \"frees\":{},\"pending\":{},\"bag_len\":{},\"bag_peak\":{},\"collects\":{},\
                 \"advances\":{},\"orphaned\":{},\"retire_free_p50\":{},\"retire_free_p99\":{},\
                 \"retire_free_max\":{}}}}}",
                ep.epoch,
                ep.pins,
                ep.depth_hist,
                ep.retires,
                ep.frees,
                ep.pending,
                ep.bag_len,
                ep.bag_peak,
                ep.collects,
                ep.advances,
                ep.orphaned,
                ep.retire_free_latency.percentile(0.5),
                ep.retire_free_latency.percentile(0.99),
                ep.retire_free_latency.max,
            ));
        }
        out.push_str("]}");
        out
    }

    fn render_staleness(&self, now: Micros) -> String {
        let mut ts_delta = HistSnapshot::default();
        let mut age = HistSnapshot::default();
        let mut convergence = HistSnapshot::default();
        let mut outstanding = 0u64;
        for w in &self.state.staleness {
            ts_delta.merge(&w.ts_delta.merged(now));
            age.merge(&w.age.merged(now));
            convergence.merge(&w.convergence.merged(now));
            outstanding += w.outstanding();
        }
        format!(
            "{{\"now_micros\":{},\"ops_per_sec\":{},\"outstanding_repairs\":{},\
             \"ts_delta_micros\":{},\"age_micros\":{},\"convergence_micros\":{}}}",
            now,
            self.ops_rate.rate_per_sec(now),
            outstanding,
            hist_json(&ts_delta),
            hist_json(&age),
            hist_json(&convergence),
        )
    }
}

impl Actor for AdminActor {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        ctx.set_timer(T_ADMIN_POLL, POLL_MICROS);
    }

    fn on_message(&mut self, _from: ActorId, _msg: SednaMsg, _ctx: &mut Ctx<'_, SednaMsg>) {
        // The admin surface speaks HTTP, not the actor protocol.
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        if token == T_ADMIN_POLL {
            self.poll(ctx.now());
            ctx.set_timer(T_ADMIN_POLL, POLL_MICROS);
        }
    }
}

// ---------------------------------------------------------------------------
// Tiny HTTP + JSON helpers
// ---------------------------------------------------------------------------

/// Reads until the header terminator and returns the request path of a
/// `GET`; `None` on anything else (oversized, non-GET, torn request).
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() > MAX_REQUEST_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let mut parts = text.lines().next()?.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let path = parts.next()?;
    // Ignore query strings: `/metrics?x=y` serves `/metrics`.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn hist_json(h: &HistSnapshot) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p95\":{}}}",
        h.count,
        h.sum,
        h.min,
        h.max,
        h.mean(),
        h.percentile(0.95)
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn telemetry_publish_and_read_back() {
        let t = NodeTelemetry::default();
        let mut stats = vec![VNodeStats::default(); 4];
        stats[2].reads = 7;
        stats[2].bytes = 128;
        t.publish(
            1_000,
            &[VNodeId(2)],
            &stats,
            vec![HotKeyRow {
                vnode: VNodeId(2),
                key: sedna_common::Key::from("k"),
                count: 7,
            }],
        );
        let (at, rows) = t.vnodes();
        assert_eq!(at, 1_000);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].reads, 7);
        assert_eq!(t.hot_keys().len(), 1);
    }
}
