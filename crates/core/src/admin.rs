//! The scrapeable per-node admin surface.
//!
//! A deployment is only observable if an operator can point `curl` (or a
//! Prometheus scraper) at it. This module provides that: an [`AdminActor`]
//! that runs on the threaded net stack like any other actor, owns a plain
//! TCP listener, and answers minimal HTTP/1.0 `GET`s:
//!
//! * `/metrics`    — Prometheus text exposition of the cluster-merged
//!   registries, plus live hot-key, per-vnode root-mismatch, and alert
//!   state gauges rendered from the per-node telemetry (they carry
//!   churning label sets, so they are rendered fresh per scrape instead
//!   of parking stale series in a registry).
//! * `/journal`    — the merged event journals as JSON. Supports a
//!   `?since=<cursor>` parameter (the previous response's `"next"` value)
//!   so pollers only receive events appended since their last scrape.
//! * `/vnodes`     — per-node per-vnode read/write/bytes/keys rows as JSON.
//! * `/hotkeys`    — per-node Space-Saving hot-key estimates as JSON.
//! * `/staleness`  — the rolling-window staleness-lag view as JSON:
//!   windowed ts-delta / age / convergence histograms, outstanding repair
//!   pushes, and a derived cluster ops/sec rate.
//! * `/internals`  — per-node engine internals as JSON: probe lengths,
//!   writer-mutex waits, rehashes, eviction sampling quality, slab
//!   occupancy, and the epoch-reclamation stats (pins, pending backlog,
//!   retire→free latency).
//! * `/flight`     — the process-wide flight recorder: per-thread event
//!   rings plus the anomaly dumps that froze them, as JSON.
//! * `/profile`    — the continuous profiler: hottest scope stacks
//!   (cumulative and last-10s windows), lock-contention attribution,
//!   per-scope allocation counts, and the merged tail critical-path
//!   attribution, as JSON. `?format=collapsed` serves collapsed-stack
//!   flamegraph text instead (`?view=window` restricts it to the
//!   rolling window) — pipe straight into `flamegraph.pl`.
//! * `/health`     — red/amber/green rollup over the SLO alert engine
//!   plus every alert's live view, firing first.
//! * `/alerts`     — the full alert surface: per-SLO burn rates, phases,
//!   exemplar traces, and the bounded phase-transition log.
//! * `/divergence` — the causal plane: per-node replica root matrices
//!   (own Merkle root + last observed peer roots per vnode), open
//!   mismatch ages, and closed divergence episodes.
//!
//! The windowed `/staleness` histograms are *also* exposed on `/metrics`
//! under a `_10s` suffix (`sedna_staleness_age_micros_10s{quantile=…}`),
//! so they never collide with their cumulative since-boot twins in the
//! merged exposition.
//!
//! The HTTP support is deliberately tiny (request line + headers in,
//! `Connection: close` out, one request per connection) so the surface
//! stays dependency-free and boringly auditable.
//!
//! Shared state flows the same way the cluster harness already shares
//! metrics: `Arc` handles ([`NodeTelemetry`], registries, journals,
//! staleness windows) are captured *before* each actor moves into its
//! thread, and the admin actor reads them lock-lightly on demand.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sedna_common::time::Micros;
use sedna_common::{NodeId, VNodeId};
use sedna_memstore::EngineSnapshot;
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_obs::critpath::{TailAttribution, TailSnapshot};
use sedna_obs::escape_label_value;
use sedna_obs::flight;
use sedna_obs::hist::HistSnapshot;
use sedna_obs::journal::EventJournal;
use sedna_obs::prof;
use sedna_obs::registry::{MetricsSnapshot, Registry};
use sedna_obs::window::RateTracker;
use sedna_ring::{HotKeyRow, VNodeStats};

use sedna_obs::{AlertEngine, HealthReport};

use crate::client::StalenessWindows;
use crate::divergence::DivergenceSnapshot;
use crate::messages::SednaMsg;

const T_ADMIN_POLL: TimerToken = TimerToken(0xAD_01);
/// Accept-poll cadence. Short enough that `curl` feels instant, long
/// enough that an idle admin actor costs nothing measurable.
const POLL_MICROS: Micros = 25_000;
/// Upper bound on accepted connections handled per poll tick.
const MAX_CONNS_PER_POLL: usize = 32;
/// Upper bound on request bytes read before answering 400.
const MAX_REQUEST_BYTES: usize = 4096;
/// Newest events served per thread ring by `/flight`.
const FLIGHT_DUMP_EVENTS: usize = 256;

// ---------------------------------------------------------------------------
// Per-node telemetry
// ---------------------------------------------------------------------------

/// One vnode's load counters as last published by its node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VNodeRow {
    /// The vnode.
    pub vnode: VNodeId,
    /// Reads served.
    pub reads: u64,
    /// Writes applied.
    pub writes: u64,
    /// Stored payload bytes.
    pub bytes: u64,
    /// Stored keys.
    pub keys: u64,
}

#[derive(Default)]
struct TelemetryInner {
    updated_micros: Micros,
    vnodes: Vec<VNodeRow>,
    hot_keys: Vec<HotKeyRow>,
    engine: Option<EngineSnapshot>,
    divergence: Option<DivergenceSnapshot>,
}

/// A node's live per-vnode load and hot-key view, shared with the admin
/// surface the way registries are: the node keeps the `Arc` and refreshes
/// it on every stats tick; the admin actor reads it on demand.
#[derive(Default)]
pub struct NodeTelemetry {
    inner: Mutex<TelemetryInner>,
}

impl NodeTelemetry {
    /// Replaces the published view (called from the node's stats tick).
    pub fn publish(
        &self,
        now: Micros,
        owned: &[VNodeId],
        stats: &[VNodeStats],
        hot_keys: Vec<HotKeyRow>,
    ) {
        let vnodes = owned
            .iter()
            .map(|&v| {
                let s = &stats[v.index()];
                VNodeRow {
                    vnode: v,
                    reads: s.reads,
                    writes: s.writes,
                    bytes: s.bytes,
                    keys: s.keys,
                }
            })
            .collect();
        let mut inner = self.inner.lock();
        inner.updated_micros = now;
        inner.vnodes = vnodes;
        inner.hot_keys = hot_keys;
    }

    /// Last publish time and the per-vnode rows.
    pub fn vnodes(&self) -> (Micros, Vec<VNodeRow>) {
        let inner = self.inner.lock();
        (inner.updated_micros, inner.vnodes.clone())
    }

    /// The node's current hot-key estimates, hottest first.
    pub fn hot_keys(&self) -> Vec<HotKeyRow> {
        self.inner.lock().hot_keys.clone()
    }

    /// Replaces the published engine-internals snapshot (called from the
    /// node's stats tick alongside [`NodeTelemetry::publish`]).
    pub fn publish_engine(&self, snap: EngineSnapshot) {
        self.inner.lock().engine = Some(snap);
    }

    /// The last published engine-internals snapshot, if any.
    pub fn engine(&self) -> Option<EngineSnapshot> {
        self.inner.lock().engine.clone()
    }

    /// Replaces the published divergence view (replica root matrix +
    /// mismatch episodes; called from the node's stats tick).
    pub fn publish_divergence(&self, snap: DivergenceSnapshot) {
        self.inner.lock().divergence = Some(snap);
    }

    /// The last published divergence view, if any.
    pub fn divergence(&self) -> Option<DivergenceSnapshot> {
        self.inner.lock().divergence.clone()
    }
}

// ---------------------------------------------------------------------------
// Admin state + actor
// ---------------------------------------------------------------------------

/// Everything the admin surface serves, captured before the owning actors
/// moved into their threads.
#[derive(Default)]
pub struct AdminState {
    /// Metric registries (nodes, manager, gateways).
    pub registries: Vec<Arc<Registry>>,
    /// Event journals, merged and time-ordered on demand.
    pub journals: Vec<Arc<EventJournal>>,
    /// Per-node telemetry, indexed by position (node id order).
    pub telemetry: Vec<(NodeId, Arc<NodeTelemetry>)>,
    /// Staleness windows of every client/gateway in the deployment.
    pub staleness: Vec<Arc<StalenessWindows>>,
    /// The cluster-shared SLO engine, when one is wired in; serves
    /// `/health` and `/alerts` and is re-evaluated on every poll tick so
    /// the surface stays live even when the data plane idles.
    pub alerts: Option<Arc<AlertEngine>>,
    /// Tail critical-path accumulators of every client/gateway; merged
    /// into the `/profile` payload's `critical_path` section.
    pub tail_attr: Vec<Arc<TailAttribution>>,
}

impl AdminState {
    fn merged_snapshot(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for reg in &self.registries {
            merged.merge(&reg.snapshot());
        }
        merged
    }
}

/// The admin actor: owns a non-blocking [`TcpListener`] and polls accepts
/// from its timer, so it coexists with the one-thread-per-actor runtime
/// without ever blocking the net stack.
pub struct AdminActor {
    listener: TcpListener,
    state: AdminState,
    /// Cluster ops/sec derived from the cumulative read+write gauges,
    /// sampled once per poll tick.
    ops_rate: RateTracker,
}

impl AdminActor {
    /// Binds the admin listener (use port 0 for an ephemeral port) and
    /// returns the actor plus the bound address.
    pub fn bind(addr: &str, state: AdminState) -> std::io::Result<(AdminActor, SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok((
            AdminActor {
                listener,
                state,
                ops_rate: RateTracker::new(1_000_000, 30),
            },
            local,
        ))
    }

    fn poll(&mut self, now: Micros) {
        let snap = self.state.merged_snapshot();
        let ops = snap.gauge("sedna_node_reads") + snap.gauge("sedna_node_writes");
        self.ops_rate.observe(now, ops);
        if let Some(alerts) = &self.state.alerts {
            // Rate-limited internally; keeps alert state advancing (and
            // firing alerts resolving) even when node ticks are sparse.
            alerts.evaluate(now);
        }
        for _ in 0..MAX_CONNS_PER_POLL {
            match self.listener.accept() {
                Ok((stream, _)) => self.serve(stream, now),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn serve(&self, mut stream: TcpStream, now: Micros) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
        // Malformed, oversized, or non-GET requests get an explicit JSON
        // 400 and a clean `Connection: close` instead of a silent drop.
        let Some((path, query)) = read_request_path(&mut stream) else {
            respond(
                &mut stream,
                "400 Bad Request",
                "application/json",
                "{\"error\":\"bad request\",\"hint\":\"GET <path> HTTP/1.x\"}",
            );
            return;
        };
        match path.as_str() {
            "/metrics" => {
                let body = self.render_metrics(now);
                respond(
                    &mut stream,
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    &body,
                );
            }
            "/journal" => {
                let since = query.as_deref().and_then(|q| query_param(q, "since"));
                respond(
                    &mut stream,
                    "200 OK",
                    "application/json",
                    &self.render_journal(since.as_deref()),
                );
            }
            "/vnodes" => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &self.render_vnodes(),
            ),
            "/hotkeys" => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &self.render_hotkeys(),
            ),
            "/staleness" => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &self.render_staleness(now),
            ),
            "/internals" => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &self.render_internals(),
            ),
            "/flight" => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &flight::render_json(FLIGHT_DUMP_EVENTS),
            ),
            "/profile" => {
                let format = query.as_deref().and_then(|q| query_param(q, "format"));
                let view = query.as_deref().and_then(|q| query_param(q, "view"));
                if format.as_deref() == Some("collapsed") {
                    let v = match view.as_deref() {
                        Some("window") => prof::View::Windowed,
                        _ => prof::View::Cumulative,
                    };
                    respond(
                        &mut stream,
                        "200 OK",
                        "text/plain; charset=utf-8",
                        &prof::render_collapsed(v),
                    );
                } else {
                    respond(
                        &mut stream,
                        "200 OK",
                        "application/json",
                        &self.render_profile(),
                    );
                }
            }
            "/health" => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &self.render_health(now),
            ),
            "/alerts" => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &self.render_alerts(now),
            ),
            "/divergence" => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &self.render_divergence(now),
            ),
            other => respond(
                &mut stream,
                "404 Not Found",
                "application/json",
                &format!(
                    "{{\"error\":\"not found\",\"path\":\"{}\"}}",
                    json_escape(other)
                ),
            ),
        }
    }

    /// The Prometheus exposition: every registry merged, plus hot-key
    /// gauges rendered live from telemetry. The hot-key series carry a
    /// `key` label and churn as the sketch evicts, so they are rendered per
    /// scrape rather than parked in a registry where evicted keys would
    /// linger forever.
    fn render_metrics(&self, now: Micros) -> String {
        sedna_obs::prof_scope!("admin.render_metrics");
        let mut out = self.state.merged_snapshot().to_prometheus();
        let mut hot = String::new();
        for (node, telemetry) in &self.state.telemetry {
            for hk in telemetry.hot_keys() {
                let key = escape_label_value(&String::from_utf8_lossy(hk.key.as_bytes()));
                hot.push_str(&format!(
                    "sedna_hotkey_ops{{node=\"{}\",vnode=\"{}\",key=\"{}\"}} {}\n",
                    node.0, hk.vnode.0, key, hk.count
                ));
            }
        }
        if !hot.is_empty() {
            out.push_str(
                "# HELP sedna_hotkey_ops Estimated accesses per hot key (Space-Saving upper bound).\n",
            );
            out.push_str("# TYPE sedna_hotkey_ops gauge\n");
            out.push_str(&hot);
        }
        // Per-vnode root-mismatch gauges from each node's divergence
        // matrix: 1 while the (node, vnode, peer) pair is root-divergent.
        // Rendered live (like the hot-key series) because the peer label
        // set churns with ring changes.
        let mut mismatch = String::new();
        for (node, telemetry) in &self.state.telemetry {
            let Some(d) = telemetry.divergence() else {
                continue;
            };
            for row in &d.rows {
                for p in &row.peers {
                    mismatch.push_str(&format!(
                        "sedna_sync_root_mismatch{{node=\"{}\",vnode=\"{}\",peer=\"{}\"}} {}\n",
                        node.0,
                        row.vnode.0,
                        p.peer.0,
                        u8::from(p.mismatch_since.is_some())
                    ));
                }
            }
        }
        if !mismatch.is_empty() {
            out.push_str(
                "# HELP sedna_sync_root_mismatch 1 while this replica pair's Merkle roots disagree for the vnode.\n",
            );
            out.push_str("# TYPE sedna_sync_root_mismatch gauge\n");
            out.push_str(&mismatch);
        }
        // Alert-engine state, rendered live so a scrape-only consumer can
        // alarm on `sedna_alert_state >= 2` without parsing `/alerts`.
        if let Some(engine) = &self.state.alerts {
            let views = engine.alerts(now);
            out.push_str(
                "# HELP sedna_alert_state SLO alert phase: 0 ok, 1 pending, 2 firing.\n# TYPE sedna_alert_state gauge\n",
            );
            for a in &views {
                let v = match a.phase {
                    sedna_obs::AlertPhase::Ok => 0,
                    sedna_obs::AlertPhase::Pending => 1,
                    sedna_obs::AlertPhase::Firing => 2,
                };
                out.push_str(&format!(
                    "sedna_alert_state{{slo=\"{}\"}} {v}\n",
                    escape_label_value(a.slo)
                ));
            }
            out.push_str(
                "# HELP sedna_alert_fired_total Times each SLO alert has entered firing since start.\n# TYPE sedna_alert_fired_total gauge\n",
            );
            for a in &views {
                out.push_str(&format!(
                    "sedna_alert_fired_total{{slo=\"{}\"}} {}\n",
                    escape_label_value(a.slo),
                    a.fired_total
                ));
            }
        }
        // Build identity as an info-style gauge: the value is a constant 1
        // and the labels carry the payload (the Prometheus convention for
        // version metadata), so dashboards can join any series against the
        // exact binary that produced it.
        out.push_str(
            "# HELP sedna_build_info Build identity; constant 1, labels carry version and profile.\n",
        );
        out.push_str("# TYPE sedna_build_info gauge\n");
        out.push_str(&format!(
            "sedna_build_info{{version=\"{}\",profile=\"{}\"}} 1\n",
            escape_label_value(env!("CARGO_PKG_VERSION")),
            if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
        ));
        out.push_str(
            "# HELP sedna_admin_ops_per_sec Cluster read+write throughput over the rate window.\n",
        );
        out.push_str("# TYPE sedna_admin_ops_per_sec gauge\n");
        out.push_str(&format!(
            "sedna_admin_ops_per_sec {}\n",
            self.ops_rate.rate_per_sec(now)
        ));
        // The rolling-window staleness twins, suffixed `_10s` so they never
        // shadow the cumulative series of the same base name above.
        let mut ts_delta = HistSnapshot::default();
        let mut age = HistSnapshot::default();
        let mut convergence = HistSnapshot::default();
        for w in &self.state.staleness {
            ts_delta.merge(&w.ts_delta.merged(now));
            age.merge(&w.age.merged(now));
            convergence.merge(&w.convergence.merged(now));
        }
        for (name, h) in [
            ("sedna_staleness_ts_delta_micros_10s", &ts_delta),
            ("sedna_staleness_age_micros_10s", &age),
            ("sedna_staleness_convergence_micros_10s", &convergence),
        ] {
            out.push_str(&format!(
                "# HELP {name} Rolling-window (10s windows, last minute) twin of the cumulative series.\n# TYPE {name} summary\n"
            ));
            for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{label}\"}} {}\n",
                    h.percentile(q)
                ));
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// The merged journals as JSON. `since` is the opaque cursor a prior
    /// response returned as `"next"`: one sequence number per underlying
    /// journal, dot-separated (a single journal yields a plain integer).
    /// Passing it back serves only events appended since that scrape, so
    /// pollers stop re-shipping the whole bounded ring. Events evicted
    /// before the cursor advanced are gone either way — the cursor skips
    /// them rather than resurrecting duplicates.
    fn render_journal(&self, since: Option<&str>) -> String {
        let cursors: Vec<u64> = since
            .map(|s| s.split('.').map(|p| p.parse().unwrap_or(0)).collect())
            .unwrap_or_default();
        let mut events = Vec::new();
        let mut next = String::new();
        for (ji, j) in self.state.journals.iter().enumerate() {
            if ji > 0 {
                next.push('.');
            }
            next.push_str(&j.next_seq().to_string());
            let from = cursors.get(ji).copied().unwrap_or(0);
            for (seq, e) in j.events_since(from) {
                events.push((e.at, ji, seq, e.kind.to_string()));
            }
        }
        events.sort();
        let mut out = format!("{{\"next\":\"{next}\",\"events\":[");
        for (i, (at, ji, seq, kind)) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"at\":{at},\"journal\":{ji},\"seq\":{seq},\"event\":\"{}\"}}",
                json_escape(kind)
            ));
        }
        out.push_str("]}");
        out
    }

    /// `/profile`: the profiler's JSON view (scope stacks, lock and alloc
    /// attribution) extended with the cluster-merged tail critical-path
    /// decomposition. The profiler renders a complete object; the
    /// `critical_path` member is spliced in before its closing brace so
    /// both stay one hand-rolled JSON document.
    fn render_profile(&self) -> String {
        let mut body = prof::render_json();
        let mut tail = TailSnapshot::default();
        for t in &self.state.tail_attr {
            tail.merge(&t.snapshot());
        }
        debug_assert!(body.ends_with('}'));
        body.truncate(body.len().saturating_sub(1));
        body.push_str(&format!(",\"critical_path\":{}}}", tail.to_json()));
        body
    }

    /// `/health`: the RAG rollup plus per-SLO detail. Without an alert
    /// engine the surface still answers — vacuously green — so probes can
    /// always distinguish "healthy" from "unreachable".
    fn render_health(&self, now: Micros) -> String {
        match &self.state.alerts {
            Some(engine) => HealthReport::from_engine(engine, now).render_json(),
            None => {
                format!("{{\"status\":\"green\",\"at_micros\":{now},\"firing\":[],\"alerts\":[]}}")
            }
        }
    }

    /// `/alerts`: every SLO's live view plus the bounded transition log.
    fn render_alerts(&self, now: Micros) -> String {
        let mut out = format!("{{\"at_micros\":{now},\"alerts\":[");
        if let Some(engine) = &self.state.alerts {
            for (i, a) in engine.alerts(now).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                sedna_obs::health::render_alert_json(&mut out, a);
            }
            out.push_str("],\"transitions\":[");
            for (i, t) in engine.transitions().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"at\":{},\"slo\":\"{}\",\"from\":\"{}\",\"to\":\"{}\",\
                     \"short_burn\":{:.6},\"long_burn\":{:.6},\"last_value\":{:.3},\"trace\":\"{:#x}\"}}",
                    t.at,
                    json_escape(t.slo),
                    t.from,
                    t.to,
                    t.short_burn,
                    t.long_burn,
                    t.last_value,
                    t.trace,
                ));
            }
        } else {
            out.push_str("],\"transitions\":[");
        }
        out.push_str("]}");
        out
    }

    /// `/divergence`: each node's replica root matrix (own root + last
    /// observed peer roots per vnode), open mismatch ages, and the
    /// bounded log of closed divergence episodes.
    fn render_divergence(&self, now: Micros) -> String {
        let mut out = format!("{{\"now_micros\":{now},\"nodes\":[");
        let mut first = true;
        for (node, telemetry) in &self.state.telemetry {
            let Some(d) = telemetry.divergence() else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"node\":{},\"at_micros\":{},\"open\":{},\"max_age_micros\":{},\"episodes_total\":{},\"vnodes\":[",
                node.0, d.at, d.open, d.max_age_micros, d.episodes_total
            ));
            for (i, row) in d.rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"vnode\":{},\"self_root\":\"{:#018x}\",\"self_at\":{},\"peers\":[",
                    row.vnode.0, row.self_root, row.self_at
                ));
                for (j, p) in row.peers.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let age = p
                        .mismatch_since
                        .map(|s| d.at.saturating_sub(s).to_string())
                        .unwrap_or_else(|| "null".into());
                    out.push_str(&format!(
                        "{{\"peer\":{},\"root\":\"{:#018x}\",\"observed_at\":{},\"mismatch_age_micros\":{age}}}",
                        p.peer.0, p.root, p.observed_at
                    ));
                }
                out.push_str("]}");
            }
            out.push_str("],\"episodes\":[");
            for (i, ep) in d.episodes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"vnode\":{},\"peer\":{},\"started\":{},\"resolved\":{},\"duration_micros\":{}}}",
                    ep.vnode.0,
                    ep.peer.0,
                    ep.started,
                    ep.resolved,
                    ep.duration()
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    fn render_vnodes(&self) -> String {
        let mut out = String::from("{\"nodes\":[");
        for (i, (node, telemetry)) in self.state.telemetry.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (updated, rows) = telemetry.vnodes();
            out.push_str(&format!(
                "{{\"node\":{},\"updated_micros\":{},\"vnodes\":[",
                node.0, updated
            ));
            for (j, r) in rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"vnode\":{},\"reads\":{},\"writes\":{},\"bytes\":{},\"keys\":{}}}",
                    r.vnode.0, r.reads, r.writes, r.bytes, r.keys
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    fn render_hotkeys(&self) -> String {
        let mut out = String::from("{\"nodes\":[");
        for (i, (node, telemetry)) in self.state.telemetry.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"node\":{},\"hot_keys\":[", node.0));
            for (j, hk) in telemetry.hot_keys().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"vnode\":{},\"key\":\"{}\",\"count\":{}}}",
                    hk.vnode.0,
                    json_escape(&String::from_utf8_lossy(hk.key.as_bytes())),
                    hk.count
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Per-node engine internals. Note the `epoch` block is process-wide
    /// (the reclamation shim is shared by every store in this process);
    /// in-process multi-node deployments will show the same epoch figures
    /// on every node row.
    fn render_internals(&self) -> String {
        let mut out = String::from("{\"nodes\":[");
        let mut first = true;
        for (node, telemetry) in &self.state.telemetry {
            let Some(e) = telemetry.engine() else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{{\"node\":{},", node.0));
            out.push_str(&format!(
                "\"probe_len\":{},\"locks\":{},\"lock_waits\":{},\"lock_contention\":{:.6},\"lock_wait_micros\":{},",
                hist_json(&e.probe_len),
                e.locks,
                e.lock_waits,
                e.lock_contention(),
                hist_json(&e.lock_wait),
            ));
            out.push_str(&format!(
                "\"rehashes\":{},\"rehash_rows_moved\":{},\"evict_rounds\":{},\"evict_sampled\":{},\
                 \"evict_exact_rounds\":{},\"evict_sample_mean\":{:.3},\"batch_applies\":{},\"batch_ops\":{},",
                e.rehashes,
                e.rehash_rows_moved,
                e.evict_rounds,
                e.evict_sampled,
                e.evict_exact_rounds,
                e.evict_sample_mean(),
                e.batch_applies,
                e.batch_ops,
            ));
            out.push_str(&format!(
                "\"live_rows\":{},\"tombstones\":{},\"table_slots\":{},\"slab_pages\":{},\
                 \"slab_cells\":{},\"slab_free_cells\":{},\"slab_occupancy\":{:.6},",
                e.live_rows,
                e.tombstones,
                e.table_slots,
                e.slab_pages,
                e.slab_cells,
                e.slab_free_cells,
                e.slab_occupancy(),
            ));
            let ep = &e.epoch;
            out.push_str(&format!(
                "\"epoch\":{{\"epoch\":{},\"pins\":{},\"depth_hist\":{:?},\"retires\":{},\
                 \"frees\":{},\"pending\":{},\"bag_len\":{},\"bag_peak\":{},\"collects\":{},\
                 \"advances\":{},\"orphaned\":{},\"retire_free_p50\":{},\"retire_free_p99\":{},\
                 \"retire_free_max\":{}}}}}",
                ep.epoch,
                ep.pins,
                ep.depth_hist,
                ep.retires,
                ep.frees,
                ep.pending,
                ep.bag_len,
                ep.bag_peak,
                ep.collects,
                ep.advances,
                ep.orphaned,
                ep.retire_free_latency.percentile(0.5),
                ep.retire_free_latency.percentile(0.99),
                ep.retire_free_latency.max,
            ));
        }
        out.push_str("]}");
        out
    }

    fn render_staleness(&self, now: Micros) -> String {
        let mut ts_delta = HistSnapshot::default();
        let mut age = HistSnapshot::default();
        let mut convergence = HistSnapshot::default();
        let mut outstanding = 0u64;
        for w in &self.state.staleness {
            ts_delta.merge(&w.ts_delta.merged(now));
            age.merge(&w.age.merged(now));
            convergence.merge(&w.convergence.merged(now));
            outstanding += w.outstanding();
        }
        format!(
            "{{\"now_micros\":{},\"ops_per_sec\":{},\"outstanding_repairs\":{},\
             \"ts_delta_micros\":{},\"age_micros\":{},\"convergence_micros\":{}}}",
            now,
            self.ops_rate.rate_per_sec(now),
            outstanding,
            hist_json(&ts_delta),
            hist_json(&age),
            hist_json(&convergence),
        )
    }
}

impl Actor for AdminActor {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        ctx.set_timer(T_ADMIN_POLL, POLL_MICROS);
    }

    fn on_message(&mut self, _from: ActorId, _msg: SednaMsg, _ctx: &mut Ctx<'_, SednaMsg>) {
        // The admin surface speaks HTTP, not the actor protocol.
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        if token == T_ADMIN_POLL {
            self.poll(ctx.now());
            ctx.set_timer(T_ADMIN_POLL, POLL_MICROS);
        }
    }
}

// ---------------------------------------------------------------------------
// Tiny HTTP + JSON helpers
// ---------------------------------------------------------------------------

/// Reads until the header terminator and returns the request path and
/// query string of a `GET`; `None` on anything else (oversized, non-GET,
/// torn request) — the caller answers those with an explicit 400.
fn read_request_path(stream: &mut TcpStream) -> Option<(String, Option<String>)> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() > MAX_REQUEST_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let mut parts = text.lines().next()?.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let target = parts.next()?;
    match target.split_once('?') {
        Some((path, query)) => Some((path.to_string(), Some(query.to_string()))),
        None => Some((target.to_string(), None)),
    }
}

/// Value of `key` in a raw query string (`a=1&b=2`); no percent-decoding —
/// the surface's parameters are plain integers and dots.
fn query_param(query: &str, key: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then(|| v.to_string())
    })
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn hist_json(h: &HistSnapshot) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p95\":{}}}",
        h.count,
        h.sum,
        h.min,
        h.max,
        h.mean(),
        h.percentile(0.95)
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn query_param_extracts_pairs() {
        assert_eq!(
            query_param("since=3.1.4", "since").as_deref(),
            Some("3.1.4")
        );
        assert_eq!(query_param("a=1&since=9", "since").as_deref(), Some("9"));
        assert_eq!(query_param("a=1&b=2", "since"), None);
        assert_eq!(query_param("since", "since"), None);
    }

    #[test]
    fn telemetry_divergence_round_trips() {
        let t = NodeTelemetry::default();
        assert!(t.divergence().is_none());
        t.publish_divergence(DivergenceSnapshot {
            at: 7,
            open: 1,
            ..DivergenceSnapshot::default()
        });
        let d = t.divergence().expect("published");
        assert_eq!(d.at, 7);
        assert_eq!(d.open, 1);
    }

    #[test]
    fn telemetry_publish_and_read_back() {
        let t = NodeTelemetry::default();
        let mut stats = vec![VNodeStats::default(); 4];
        stats[2].reads = 7;
        stats[2].bytes = 128;
        t.publish(
            1_000,
            &[VNodeId(2)],
            &stats,
            vec![HotKeyRow {
                vnode: VNodeId(2),
                key: sedna_common::Key::from("k"),
                count: 7,
            }],
        );
        let (at, rows) = t.vnodes();
        assert_eq!(at, 1_000);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].reads, 7);
        assert_eq!(t.hot_keys().len(), 1);
    }
}
