//! Sedna: a memory-based distributed key-value storage system for realtime
//! processing — the paper's primary contribution, assembled from the
//! workspace substrates.
//!
//! A deployment consists of:
//!
//! * a small **coordination ensemble** (`sedna-coord`) holding the vnode
//!   map and node liveness — the paper's "ZooKeeper sub-cluster";
//! * a **cluster manager** ([`manager::ClusterManager`]) reconciling
//!   membership into the consistent-hash assignment (`sedna-ring`);
//! * N **data nodes** ([`node::SednaNode`]) — modified-memcached local
//!   stores (`sedna-memstore`) with persistency (`sedna-persist`) and the
//!   trigger engine (`sedna-triggers`);
//! * **zero-hop clients** ([`client::ClientCore`]) that cache routing
//!   state under an adaptive lease and coordinate quorum reads/writes
//!   (`sedna-replication`) directly against the replicas.
//!
//! Build one with [`cluster::SimCluster`] (deterministic simulation — the
//! evaluation harness) or [`cluster::ThreadCluster`] (real threads — the
//! examples), both from the same actor implementations.
//!
//! # Quick start (threaded)
//!
//! ```no_run
//! use sedna_core::cluster::ThreadCluster;
//! use sedna_core::config::ClusterConfig;
//! use sedna_common::{Key, Value};
//!
//! let cluster = ThreadCluster::start(ClusterConfig::small());
//! cluster.write_latest(&Key::from("hello"), Value::from("world"));
//! let got = cluster.read_latest(&Key::from("hello"));
//! println!("{got:?}");
//! cluster.shutdown();
//! ```

pub mod admin;
pub mod client;
pub mod cluster;
pub mod config;
pub mod divergence;
pub mod fault;
pub mod history;
pub mod imbalance;
pub mod manager;
pub mod messages;
pub mod node;

pub use client::{ClientCore, ClientEvent, QuorumReader, QuorumWriter, ReadKind, ScanCoordinator};
pub use cluster::{install_profiling, Gateway, SimCluster, ThreadCluster};
pub use config::{paths, ClusterConfig};
pub use divergence::{DivergenceEpisode, DivergenceSnapshot, DivergenceTracker};
pub use fault::{ClusterFault, RestartKind, ScheduledFault};
pub use history::{ClientHistory, HistoryEvent, HistoryOp, HistoryOutcome};
pub use imbalance::{EngineSummary, ImbalanceRow};
pub use manager::ClusterManager;
pub use messages::{
    ClientFrame, ClientOp, ClientResult, ControlMsg, ReplicaOp, ReplicaReadReply, ReplicaWriteAck,
    SednaMsg, WriteKind,
};
pub use node::{NodeStats, SednaNode};
