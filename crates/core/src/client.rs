//! The zero-hop Sedna client.
//!
//! Sec. VII: "Sedna uses a zero-hop DHT that each node caches enough
//! routing information locally to route a request to the appropriate node
//! directly, and a ZooKeeper min-cluster which keeps the newest
//! information." [`ClientCore`] is that local Sedna service, embeddable in
//! any actor: it caches the vnode map (refreshed through the adaptive-lease
//! cache of Sec. III-E), stamps writes with hybrid timestamps, fans
//! requests to all N replicas in parallel, and resolves them with the
//! quorum coordinators from `sedna-replication` — issuing read-repair
//! pushes when replicas diverge.
//!
//! [`QuorumWriter`]/[`QuorumReader`] are the reusable fan-out trackers; the
//! data nodes reuse `QuorumWriter` for trigger-emitted writes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sedna_common::time::{Micros, Timestamp};
use sedna_common::{CausalContext, Key, NodeId, RequestId, TraceId, VNodeId, Value};
use sedna_coord::client::{LeaseCache, LeaseConfig, SessionClient, SessionConfig, SessionEvent};
use sedna_coord::messages::{CoordMsg, CoordOp, CoordReply};
use sedna_net::actor::ActorId;
use sedna_obs::critpath::{self, TailAttribution};
use sedna_obs::flight::{self, FlightKind};
use sedna_obs::journal::{EventJournal, EventKind};
use sedna_obs::registry::{Counter, Gauge, Hist, MetricsSnapshot, Registry};
use sedna_obs::trace::TraceTracker;
use sedna_obs::window::WindowedHistogram;
use sedna_obs::AlertEngine;
use sedna_replication::{
    plan_repair, ReadCoordinator, ReadOutcome, RepairAction, ReplicaRead, ReplicaWriteResult,
    WriteCoordinator, WriteOutcomeAgg,
};
use sedna_ring::VNodeMap;

use crate::config::{paths, ClusterConfig};
use crate::messages::{
    ClientResult, ReplicaOp, ReplicaReadReply, ReplicaWriteAck, SednaMsg, WriteKind,
};

/// Events surfaced by [`ClientCore`] to its embedding actor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientEvent {
    /// The routing cache is loaded; operations may be issued.
    Ready,
    /// An operation finished.
    Done {
        /// The id returned when the operation was issued.
        op_id: u64,
        /// Its result.
        result: ClientResult,
    },
}

/// Outbound messages produced by the client helpers.
pub type Outbox = Vec<(ActorId, SednaMsg)>;

/// Raw per-destination replica ops before framing. [`ClientCore`] turns
/// these into wire frames — one frame per op, or coalesced
/// [`ReplicaOp::Batch`] frames when batching is enabled.
pub type ReplicaOutbox = Vec<(ActorId, ReplicaOp)>;

// ---------------------------------------------------------------------------
// QuorumWriter
// ---------------------------------------------------------------------------

struct PendingWrite {
    op_id: u64,
    coord: WriteCoordinator,
    deadline: Micros,
    trace: TraceId,
}

/// Tracks fan-out writes; reusable by clients and by data nodes (trigger
/// emits).
#[derive(Default)]
pub struct QuorumWriter {
    next_req: u64,
    pending: HashMap<RequestId, PendingWrite>,
}

impl QuorumWriter {
    /// Starts a write of `(key, ts, value)` to `replicas`, needing `w`
    /// acks by `deadline`. `ctx` is the causal context the writer has
    /// observed for this key (empty when unknown — e.g. trigger emits).
    /// Returns the messages to send.
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        &mut self,
        cfg: &ClusterConfig,
        op_id: u64,
        replicas: &[NodeId],
        w: usize,
        key: &Key,
        ts: Timestamp,
        value: &Value,
        ctx: &CausalContext,
        kind: WriteKind,
        deadline: Micros,
        trace: TraceId,
    ) -> ReplicaOutbox {
        self.next_req += 1;
        let req = RequestId(self.next_req);
        self.pending.insert(
            req,
            PendingWrite {
                op_id,
                coord: WriteCoordinator::new(replicas.to_vec(), w.min(replicas.len()).max(1)),
                deadline,
                trace,
            },
        );
        replicas
            .iter()
            .map(|&n| {
                (
                    cfg.node_actor(n),
                    ReplicaOp::Write {
                        req,
                        key: key.clone(),
                        ts,
                        value: value.clone(),
                        ctx: ctx.clone(),
                        kind,
                        trace,
                    },
                )
            })
            .collect()
    }

    /// Trace of the in-flight write keyed by `req` (None once decided).
    pub fn trace_of(&self, req: RequestId) -> Option<TraceId> {
        self.pending.get(&req).map(|p| p.trace)
    }

    /// Feeds an ack; returns the finished op and whether any replica
    /// refused (stale routing).
    pub fn on_ack(
        &mut self,
        cfg: &ClusterConfig,
        from: ActorId,
        req: RequestId,
        ack: ReplicaWriteAck,
    ) -> (Option<(u64, WriteOutcomeAgg)>, bool) {
        let Some(node) = cfg.actor_node(from) else {
            return (None, false);
        };
        let Some(p) = self.pending.get_mut(&req) else {
            return (None, false);
        };
        let refused = matches!(ack, ReplicaWriteAck::Refused);
        let result = match ack {
            ReplicaWriteAck::Ok => ReplicaWriteResult::Ok,
            ReplicaWriteAck::Outdated => ReplicaWriteResult::Outdated,
            ReplicaWriteAck::Refused => ReplicaWriteResult::Failed,
        };
        let agg = p.coord.on_reply(node, result);
        let finished = !matches!(agg, WriteOutcomeAgg::Pending);
        let out = if finished {
            let op_id = p.op_id;
            self.pending.remove(&req);
            Some((op_id, agg))
        } else {
            None
        };
        (out, refused)
    }

    /// Expires overdue writes; returns their outcomes and traces.
    pub fn on_tick(&mut self, now: Micros) -> Vec<(u64, WriteOutcomeAgg, TraceId)> {
        let overdue: Vec<RequestId> = self
            .pending
            .iter()
            .filter(|(_, p)| now >= p.deadline)
            .map(|(r, _)| *r)
            .collect();
        overdue
            .into_iter()
            .filter_map(|req| {
                let mut p = self.pending.remove(&req)?;
                Some((p.op_id, p.coord.on_deadline(), p.trace))
            })
            .collect()
    }

    /// Writes still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

// ---------------------------------------------------------------------------
// QuorumReader
// ---------------------------------------------------------------------------

/// Which read API an operation belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadKind {
    /// `read_latest`.
    Latest,
    /// `read_all`.
    All,
}

struct PendingRead {
    op_id: u64,
    kind: ReadKind,
    key: Key,
    coord: ReadCoordinator,
    deadline: Micros,
    trace: TraceId,
    /// The session's causal context for the key when the read started:
    /// every dot this client had already observed. A clean answer whose
    /// row clocks do not cover this floor is reported degraded — see
    /// [`QuorumReader::begin`].
    floor: CausalContext,
    /// Row clock per replying replica (joined for the floor check).
    clocks: HashMap<NodeId, CausalContext>,
}

/// One replica a quorum read observed behind the merged view, with how far
/// behind it was (paper Sec. III-C's read-recovery trigger, quantified).
#[derive(Clone, Copy, Debug)]
pub struct StaleLag {
    /// The lagging replica.
    pub node: NodeId,
    /// True when the replica had no copy at all (vs. an old version).
    pub missing: bool,
    /// Timestamp delta between the freshest merged version and the
    /// replica's newest version (0 when missing — nothing to diff).
    pub ts_delta_micros: u64,
    /// Timestamp of the freshest merged version — the update the replica
    /// has not yet seen; its wall-clock age is derived at detection time.
    pub freshest_micros: u64,
}

/// A finished read plus any repair traffic it generated.
pub struct FinishedRead {
    /// The op id.
    pub op_id: u64,
    /// The key that was read.
    pub key: Key,
    /// The client-visible result.
    pub result: ClientResult,
    /// Read-repair pushes to send.
    pub repairs: ReplicaOutbox,
    /// True when failures indicate the routing cache may be stale.
    pub saw_failure: bool,
    /// Trace of the op.
    pub trace: TraceId,
    /// VNode the key hashes to (for journal events).
    pub vnode: VNodeId,
    /// Replicas that answered stale or missing while a fresher version
    /// exists elsewhere, with their measured lag.
    pub lagging: Vec<StaleLag>,
    /// True when the quorum did not reach clean R-agreement (the merged
    /// answer or an outright failure was returned instead).
    pub degraded: bool,
}

/// Tracks fan-out reads with read-repair planning.
#[derive(Default)]
pub struct QuorumReader {
    next_req: u64,
    pending: HashMap<RequestId, PendingRead>,
}

impl QuorumReader {
    /// Starts a read of `key` from `replicas`, needing `r` equal replies.
    ///
    /// `floor` is the session's causal context for the key — the dots the
    /// client has observed through earlier acked writes and reads. R
    /// equal replies alone cannot promise session monotonicity once a
    /// vnode moves (the new replica set need not intersect the old one),
    /// so a clean answer is downgraded to `degraded` unless the agreeing
    /// replicas' joined row clock covers the floor: every dot the session
    /// knows is then either live in the answer or causally overwritten.
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        &mut self,
        cfg: &ClusterConfig,
        op_id: u64,
        replicas: &[NodeId],
        r: usize,
        key: &Key,
        kind: ReadKind,
        deadline: Micros,
        trace: TraceId,
        floor: CausalContext,
    ) -> ReplicaOutbox {
        self.next_req += 1;
        let req = RequestId(self.next_req);
        self.pending.insert(
            req,
            PendingRead {
                op_id,
                kind,
                key: key.clone(),
                coord: ReadCoordinator::new(replicas.to_vec(), r.min(replicas.len()).max(1)),
                deadline,
                trace,
                floor,
                clocks: HashMap::new(),
            },
        );
        replicas
            .iter()
            .map(|&n| {
                (
                    cfg.node_actor(n),
                    ReplicaOp::Read {
                        req,
                        key: key.clone(),
                        trace,
                    },
                )
            })
            .collect()
    }

    /// Trace of the in-flight read keyed by `req` (None once decided).
    pub fn trace_of(&self, req: RequestId) -> Option<TraceId> {
        self.pending.get(&req).map(|p| p.trace)
    }

    /// Feeds a reply; returns the finished read when decided.
    pub fn on_reply(
        &mut self,
        cfg: &ClusterConfig,
        from: ActorId,
        req: RequestId,
        reply: ReplicaReadReply,
    ) -> Option<FinishedRead> {
        let node = cfg.actor_node(from)?;
        let p = self.pending.get_mut(&req)?;
        let rr = match reply {
            ReplicaReadReply::Values { versions, clock } => {
                p.clocks.insert(node, clock);
                ReplicaRead::Values(versions)
            }
            ReplicaReadReply::Missing => ReplicaRead::Missing,
            ReplicaReadReply::Refused => ReplicaRead::Failed,
        };
        let outcome = p.coord.on_reply(node, rr);
        self.finish_if_decided(cfg, req, outcome)
    }

    /// Expires overdue reads.
    pub fn on_tick(&mut self, cfg: &ClusterConfig, now: Micros) -> Vec<FinishedRead> {
        let overdue: Vec<RequestId> = self
            .pending
            .iter()
            .filter(|(_, p)| now >= p.deadline)
            .map(|(r, _)| *r)
            .collect();
        overdue
            .into_iter()
            .filter_map(|req| {
                let outcome = self.pending.get_mut(&req)?.coord.on_deadline();
                self.finish_if_decided(cfg, req, outcome)
            })
            .collect()
    }

    /// Reads still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn finish_if_decided(
        &mut self,
        cfg: &ClusterConfig,
        req: RequestId,
        outcome: ReadOutcome,
    ) -> Option<FinishedRead> {
        if matches!(outcome, ReadOutcome::Pending) {
            return None;
        }
        let p = self.pending.remove(&req).expect("pending read");
        let mut repairs: ReplicaOutbox = Vec::new();
        let mut saw_failure = false;
        let mut lagging: Vec<StaleLag> = Vec::new();
        let mut degraded = false;
        let result = match outcome {
            ReadOutcome::Ok(values) => {
                // Session-floor gate: R replicas agreed, but agreement is
                // only as good as the replicas — after a vnode move the
                // new set can unanimously hold a stale row. The answer
                // counts as clean only when the agreeing replicas' joined
                // row clock covers every dot this session has observed
                // for the key (a causally-pruned dot is covered by its
                // overwriter's clock; a merely-unseen dot is not).
                if cfg.session_floor_reads {
                    let mut witnessed = CausalContext::EMPTY;
                    for (node, reply) in p.coord.replies() {
                        if matches!(reply, ReplicaRead::Values(v) if *v == values) {
                            if let Some(c) = p.clocks.get(node) {
                                witnessed.join(c);
                            }
                        }
                    }
                    if !witnessed.dominates(&p.floor) {
                        degraded = true;
                    }
                }
                render(p.kind, Some(values))
            }
            ReadOutcome::NotFound => {
                // A unanimous "no such key" cannot cover a session that
                // has already seen dots for it: stale quorum.
                degraded = cfg.session_floor_reads && !p.floor.is_empty();
                render(p.kind, None)
            }
            ReadOutcome::Inconsistent { merged } => {
                degraded = true;
                // Which replicas lag behind the merged view (for the
                // quorum-health journal and the staleness-lag histograms):
                // Missing = no copy at all, otherwise an older version than
                // the freshest seen — recording *how far* behind either way.
                if let Some(freshest) = merged.iter().map(|v| v.ts).max() {
                    for (node, reply) in p.coord.replies() {
                        match reply {
                            ReplicaRead::Missing => lagging.push(StaleLag {
                                node: *node,
                                missing: true,
                                ts_delta_micros: 0,
                                freshest_micros: freshest.micros,
                            }),
                            ReplicaRead::Values(v)
                                if v.iter().map(|x| x.ts).max() < Some(freshest) =>
                            {
                                let newest = v.iter().map(|x| x.ts.micros).max().unwrap_or(0);
                                lagging.push(StaleLag {
                                    node: *node,
                                    missing: false,
                                    ts_delta_micros: freshest.micros.saturating_sub(newest),
                                    freshest_micros: freshest.micros,
                                });
                            }
                            _ => {}
                        }
                    }
                }
                // Sec. III-C: read recovery runs asynchronously; the client
                // answers with the freshest merged view it could assemble.
                if cfg.read_repair_enabled {
                    for action in plan_repair(p.coord.replies(), &merged) {
                        let (to, versions) = match action {
                            RepairAction::Push { to, versions }
                            | RepairAction::Duplicate { to, versions, .. } => (to, versions),
                        };
                        // Repair pushes draw correlation ids from the same
                        // sequence as reads; their acks feed the
                        // outstanding-repair / convergence tracker.
                        self.next_req += 1;
                        repairs.push((
                            cfg.node_actor(to),
                            ReplicaOp::Push {
                                req: RequestId(self.next_req),
                                key: p.key.clone(),
                                versions,
                            },
                        ));
                    }
                }
                saw_failure = p.coord.failed_nodes().next().is_some();
                if merged.is_empty() {
                    render(p.kind, None)
                } else {
                    render(p.kind, Some(merged))
                }
            }
            ReadOutcome::Failed { .. } => {
                saw_failure = true;
                degraded = true;
                ClientResult::Failed
            }
            ReadOutcome::Pending => unreachable!(),
        };
        let vnode = cfg.partitioner.locate(&p.key);
        Some(FinishedRead {
            op_id: p.op_id,
            key: p.key,
            result,
            repairs,
            saw_failure,
            trace: p.trace,
            vnode,
            lagging,
            degraded,
        })
    }
}

fn render(kind: ReadKind, values: Option<Vec<sedna_memstore::VersionedValue>>) -> ClientResult {
    match kind {
        ReadKind::Latest => {
            ClientResult::Latest(values.and_then(|v| v.into_iter().max_by_key(|x| x.ts)))
        }
        ReadKind::All => ClientResult::All(values.filter(|v| !v.is_empty())),
    }
}

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

struct PendingScan {
    op_id: u64,
    awaiting: std::collections::BTreeSet<NodeId>,
    rows: Vec<(Key, sedna_memstore::VersionedValue)>,
    deadline: Micros,
}

/// Tracks scatter–gather table scans (extension API).
#[derive(Default)]
pub struct ScanCoordinator {
    next_req: u64,
    pending: HashMap<RequestId, PendingScan>,
}

impl ScanCoordinator {
    /// Starts a scan of `prefix` across `members`.
    pub fn begin(
        &mut self,
        cfg: &ClusterConfig,
        op_id: u64,
        members: &[NodeId],
        prefix: Vec<u8>,
        deadline: Micros,
    ) -> ReplicaOutbox {
        self.next_req += 1;
        let req = RequestId(self.next_req);
        self.pending.insert(
            req,
            PendingScan {
                op_id,
                awaiting: members.iter().copied().collect(),
                rows: Vec::new(),
                deadline,
            },
        );
        members
            .iter()
            .map(|&n| {
                (
                    cfg.node_actor(n),
                    ReplicaOp::Scan {
                        req,
                        prefix: prefix.clone(),
                    },
                )
            })
            .collect()
    }

    /// Feeds one node's reply; returns the finished scan when all members
    /// (still awaited) have answered.
    pub fn on_reply(
        &mut self,
        cfg: &ClusterConfig,
        from: ActorId,
        req: RequestId,
        rows: Vec<(Key, sedna_memstore::VersionedValue)>,
    ) -> Option<(u64, Vec<(Key, sedna_memstore::VersionedValue)>)> {
        let node = cfg.actor_node(from)?;
        let p = self.pending.get_mut(&req)?;
        if p.awaiting.remove(&node) {
            p.rows.extend(rows);
        }
        if p.awaiting.is_empty() {
            let mut p = self.pending.remove(&req).expect("present");
            p.rows.sort_by(|a, b| a.0.cmp(&b.0));
            return Some((p.op_id, p.rows));
        }
        None
    }

    /// Deadline expiry: return whatever arrived (best-effort scan).
    pub fn on_tick(
        &mut self,
        now: Micros,
    ) -> Vec<(u64, Vec<(Key, sedna_memstore::VersionedValue)>)> {
        let overdue: Vec<RequestId> = self
            .pending
            .iter()
            .filter(|(_, p)| now >= p.deadline)
            .map(|(r, _)| *r)
            .collect();
        overdue
            .into_iter()
            .filter_map(|req| {
                let mut p = self.pending.remove(&req)?;
                p.rows.sort_by(|a, b| a.0.cmp(&b.0));
                Some((p.op_id, p.rows))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// ClientObs
// ---------------------------------------------------------------------------

/// Width of one staleness window (10 s) and how many the ring retains (6,
/// i.e. the `/staleness` view covers the last minute).
const STALENESS_WINDOW_MICROS: u64 = 10_000_000;
const STALENESS_WINDOWS_KEPT: usize = 6;

/// Rolling-window view of replica staleness, shared (via `Arc`) with the
/// admin surface so `/staleness` serves time-local percentiles instead of
/// since-boot aggregates.
pub struct StalenessWindows {
    /// Freshest-vs-replica timestamp deltas (outdated replicas only).
    pub ts_delta: WindowedHistogram,
    /// Wall-clock age of the missed update at detection time (all lagging
    /// replicas, missing included).
    pub age: WindowedHistogram,
    /// Detection → repair-ack convergence times.
    pub convergence: WindowedHistogram,
    outstanding: AtomicU64,
}

impl Default for StalenessWindows {
    fn default() -> Self {
        StalenessWindows {
            ts_delta: WindowedHistogram::new(STALENESS_WINDOW_MICROS, STALENESS_WINDOWS_KEPT),
            age: WindowedHistogram::new(STALENESS_WINDOW_MICROS, STALENESS_WINDOWS_KEPT),
            convergence: WindowedHistogram::new(STALENESS_WINDOW_MICROS, STALENESS_WINDOWS_KEPT),
            outstanding: AtomicU64::new(0),
        }
    }
}

impl StalenessWindows {
    /// Repair pushes sent but not yet acknowledged (or expired).
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Relaxed)
    }
}

/// The client's observability surface: quorum-outcome counters, latency
/// histograms, the per-op trace tracker, and the event journal that
/// receives stale-replica and slow-op records.
pub struct ClientObs {
    registry: Arc<Registry>,
    journal: Arc<EventJournal>,
    tracker: TraceTracker,
    slow_threshold: Micros,
    writes_ok: Counter,
    writes_outdated: Counter,
    writes_failed: Counter,
    reads_total: Counter,
    reads_ok: Counter,
    reads_degraded: Counter,
    ring_refreshes: Counter,
    repairs_sent: Counter,
    stale_replicas_seen: Counter,
    batch_flush_full: Counter,
    batch_flush_window: Counter,
    batch_flush_immediate: Counter,
    write_latency: Hist,
    read_latency: Hist,
    ping_rtt: Hist,
    // Tail critical-path decomposition (tentpole): every finished span
    // tree is split into queue/lock/apply/net segments; the per-segment
    // histograms carry TraceId exemplars on their tail buckets, and the
    // shared [`TailAttribution`] accumulates all-vs-tail segment shares
    // for the admin surface and the nemesis reports.
    critpath_queue: Hist,
    critpath_lock: Hist,
    critpath_apply: Hist,
    critpath_net: Hist,
    tail_attr: Arc<TailAttribution>,
    // Staleness-lag tracking (tentpole): how far behind stale replicas are
    // and how long repairs take to land.
    stale_ts_delta: Hist,
    stale_age: Hist,
    repair_convergence: Hist,
    outstanding_repairs: Gauge,
    repair_acks: Counter,
    repairs_expired: Counter,
    staleness: Arc<StalenessWindows>,
    /// Repair pushes in flight: correlation id → detection time.
    pending_repairs: HashMap<RequestId, Micros>,
    /// Cluster-shared SLO engine; op completions feed latency, staleness
    /// and degraded-read samples (with TraceId exemplars) into its
    /// burn-rate windows.
    alerts: Option<Arc<AlertEngine>>,
}

impl ClientObs {
    fn new(cfg: &ClusterConfig, origin: NodeId) -> ClientObs {
        let registry = Arc::new(Registry::new(cfg.metrics_enabled));
        let journal = Arc::new(EventJournal::new(cfg.journal_capacity));
        registry.describe(
            "sedna_staleness_ts_delta_micros",
            "Timestamp delta between the freshest merged version and a stale replica's newest.",
        );
        registry.describe(
            "sedna_staleness_age_micros",
            "Wall-clock age of the update a lagging replica had not yet seen, at detection.",
        );
        registry.describe(
            "sedna_staleness_convergence_micros",
            "Stale-replica detection to repair-ack time (read recovery convergence).",
        );
        registry.describe(
            "sedna_client_outstanding_repairs",
            "Read-repair pushes sent but not yet acknowledged.",
        );
        registry.describe(
            "sedna_client_stale_replicas_total",
            "Stale or missing replicas observed by quorum reads.",
        );
        registry.describe(
            "sedna_client_read_repairs_total",
            "Read-repair pushes issued (paper Sec. III-C read recovery).",
        );
        registry.describe(
            "sedna_critpath_queue_micros",
            "Critical-path time between issue and the first replica send (client queueing).",
        );
        registry.describe(
            "sedna_critpath_lock_micros",
            "Critical-path time the quorum-deciding replica waited on contended shard locks.",
        );
        registry.describe(
            "sedna_critpath_apply_micros",
            "Critical-path store-apply time on the quorum-deciding replica (lock wait excluded).",
        );
        registry.describe(
            "sedna_critpath_net_micros",
            "Critical-path network + node turnaround time of the quorum-deciding RPC.",
        );
        ClientObs {
            tracker: TraceTracker::new(origin.0 as u64),
            slow_threshold: cfg.slow_op_threshold_micros,
            writes_ok: registry.counter("sedna_client_writes_ok_total"),
            writes_outdated: registry.counter("sedna_client_writes_outdated_total"),
            writes_failed: registry.counter("sedna_client_writes_failed_total"),
            reads_total: registry.counter("sedna_client_reads_total"),
            reads_ok: registry.counter("sedna_client_reads_ok_total"),
            reads_degraded: registry.counter("sedna_client_reads_degraded_total"),
            ring_refreshes: registry.counter("sedna_client_ring_refreshes_total"),
            repairs_sent: registry.counter("sedna_client_read_repairs_total"),
            stale_replicas_seen: registry.counter("sedna_client_stale_replicas_total"),
            batch_flush_full: registry.counter("sedna_client_batch_flush_full_total"),
            batch_flush_window: registry.counter("sedna_client_batch_flush_window_total"),
            batch_flush_immediate: registry.counter("sedna_client_batch_flush_immediate_total"),
            write_latency: registry.hist("sedna_client_write_latency_micros"),
            read_latency: registry.hist("sedna_client_read_latency_micros"),
            ping_rtt: registry.hist("sedna_coord_ping_rtt_micros"),
            critpath_queue: registry.hist("sedna_critpath_queue_micros"),
            critpath_lock: registry.hist("sedna_critpath_lock_micros"),
            critpath_apply: registry.hist("sedna_critpath_apply_micros"),
            critpath_net: registry.hist("sedna_critpath_net_micros"),
            tail_attr: Arc::new(TailAttribution::default()),
            stale_ts_delta: registry.hist("sedna_staleness_ts_delta_micros"),
            stale_age: registry.hist("sedna_staleness_age_micros"),
            repair_convergence: registry.hist("sedna_staleness_convergence_micros"),
            outstanding_repairs: registry.gauge("sedna_client_outstanding_repairs"),
            repair_acks: registry.counter("sedna_client_repair_acks_total"),
            repairs_expired: registry.counter("sedna_client_repairs_expired_total"),
            staleness: Arc::new(StalenessWindows::default()),
            pending_repairs: HashMap::new(),
            alerts: None,
            registry,
            journal,
        }
    }

    /// Attaches the cluster-shared SLO engine. Completed operations then
    /// feed `read_p99`/`write_p99` latency, `staleness_age`, and
    /// `degraded_reads` samples into its burn-rate windows.
    pub fn set_alert_engine(&mut self, engine: Arc<AlertEngine>) {
        self.alerts = Some(engine);
    }

    /// The client's metrics registry (shareable across threads).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The client's event journal (shareable across threads).
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.journal
    }

    /// Snapshot of the client's metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Traces completed exactly once.
    pub fn traces_completed(&self) -> u64 {
        self.tracker.completed()
    }

    /// Duplicate trace completions observed (must stay 0).
    pub fn trace_duplicates(&self) -> u64 {
        self.tracker.duplicates()
    }

    /// Closes a write's trace: quorum-assembly mark, outcome counters,
    /// latency sample, and slow-op/failure journal promotion.
    fn write_done(&mut self, trace: TraceId, agg: &WriteOutcomeAgg, now: Micros) {
        match agg {
            WriteOutcomeAgg::Ok => self.writes_ok.inc(),
            WriteOutcomeAgg::Outdated => self.writes_outdated.inc(),
            WriteOutcomeAgg::Failed { .. } | WriteOutcomeAgg::Pending => self.writes_failed.inc(),
        }
        self.tracker.assembled(trace, now);
        if let Some(fin) = self.tracker.finish(trace, now) {
            // Traced sample: tail buckets keep the TraceId as an exemplar,
            // so a scraped p99 bucket links back to this op's span tree.
            self.write_latency.record_traced(fin.total_micros, trace.0);
            self.observe_critpath(&fin.spans, fin.total_micros, trace);
            if let Some(alerts) = &self.alerts {
                alerts.observe_traced(now, "write_p99", fin.total_micros as f64, trace.0);
                alerts.evaluate(now);
            }
            if matches!(agg, WriteOutcomeAgg::Failed { .. }) {
                self.journal
                    .push(now, EventKind::QuorumFailed { trace, op: "write" });
            }
            if fin.total_micros >= self.slow_threshold {
                flight::note_anomaly("slow-op:write", trace.0);
                self.journal.push(
                    now,
                    EventKind::SlowOp {
                        trace,
                        total_micros: fin.total_micros,
                        spans: fin.spans,
                    },
                );
            }
        }
    }

    /// Closes a read's trace: records lagging replicas into the journal,
    /// repair spans, outcome counters, latency, and slow-op promotion.
    fn read_done(&mut self, fin: &FinishedRead, cfg: &ClusterConfig, now: Micros) {
        self.reads_total.inc();
        if fin.degraded {
            self.reads_degraded.inc();
        } else {
            self.reads_ok.inc();
        }
        if let Some(alerts) = &self.alerts {
            alerts.observe_traced(
                now,
                "degraded_reads",
                f64::from(u8::from(fin.degraded)),
                fin.trace.0,
            );
        }
        for lag in &fin.lagging {
            self.stale_replicas_seen.inc();
            // How far behind: the ts delta to the replica's newest version
            // (when it had one) and the wall-clock age of the update it
            // missed. Windowed copies feed the admin /staleness view.
            let age = now.saturating_sub(lag.freshest_micros);
            if !lag.missing {
                self.stale_ts_delta.record(lag.ts_delta_micros);
            }
            self.stale_age.record(age);
            if let Some(alerts) = &self.alerts {
                alerts.observe_traced(now, "staleness_age", age as f64, fin.trace.0);
            }
            if self.registry.enabled() {
                if !lag.missing {
                    self.staleness.ts_delta.record(now, lag.ts_delta_micros);
                }
                self.staleness.age.record(now, age);
            }
            self.journal.push(
                now,
                EventKind::StaleReplica {
                    trace: fin.trace,
                    vnode: fin.vnode,
                    lagging: lag.node,
                    missing: lag.missing,
                    lag_micros: lag.ts_delta_micros,
                    age_micros: age,
                },
            );
        }
        for (to, op) in &fin.repairs {
            self.repairs_sent.inc();
            if let Some(node) = cfg.actor_node(*to) {
                self.tracker.repaired(fin.trace, node, now);
            }
            if let ReplicaOp::Push { req, .. } = op {
                self.pending_repairs.insert(*req, now);
            }
        }
        if !fin.repairs.is_empty() {
            self.sync_outstanding();
        }
        self.tracker.assembled(fin.trace, now);
        if let Some(done) = self.tracker.finish(fin.trace, now) {
            self.read_latency
                .record_traced(done.total_micros, fin.trace.0);
            self.observe_critpath(&done.spans, done.total_micros, fin.trace);
            if let Some(alerts) = &self.alerts {
                alerts.observe_traced(now, "read_p99", done.total_micros as f64, fin.trace.0);
                alerts.evaluate(now);
            }
            if matches!(fin.result, ClientResult::Failed) {
                self.journal.push(
                    now,
                    EventKind::QuorumFailed {
                        trace: fin.trace,
                        op: "read",
                    },
                );
            }
            if done.total_micros >= self.slow_threshold {
                flight::note_anomaly("slow-op:read", fin.trace.0);
                self.journal.push(
                    now,
                    EventKind::SlowOp {
                        trace: fin.trace,
                        total_micros: done.total_micros,
                        spans: done.spans,
                    },
                );
            }
        }
    }

    /// Decomposes a finished trace into critical-path segments: feeds the
    /// per-segment histograms (tail buckets keep the TraceId exemplar),
    /// accumulates all-vs-tail attribution, and — for tail ops — drops a
    /// packed [`FlightKind::CritPath`] event so anomaly dumps carry the
    /// decomposition alongside the raw engine events.
    fn observe_critpath(
        &mut self,
        spans: &[sedna_obs::Span],
        total_micros: Micros,
        trace: TraceId,
    ) {
        if !self.registry.enabled() {
            return;
        }
        let seg = critpath::decompose(spans, total_micros);
        self.critpath_queue.record_traced(seg.queue_micros, trace.0);
        self.critpath_lock.record_traced(seg.lock_micros, trace.0);
        self.critpath_apply.record_traced(seg.apply_micros, trace.0);
        self.critpath_net.record_traced(seg.net_micros, trace.0);
        let is_tail = total_micros >= self.slow_threshold;
        self.tail_attr.observe(&seg, is_tail);
        if is_tail {
            flight::record(FlightKind::CritPath, seg.pack());
        }
    }

    /// The shared tail critical-path accumulator (snapshot + merge
    /// cluster-wide; embedded in nemesis `RunReport`s).
    pub fn tail_attribution(&self) -> &Arc<TailAttribution> {
        &self.tail_attr
    }

    /// The rolling-window staleness view (share with an admin surface).
    pub fn staleness(&self) -> &Arc<StalenessWindows> {
        &self.staleness
    }

    fn sync_outstanding(&self) {
        let n = self.pending_repairs.len() as u64;
        self.outstanding_repairs.set(n);
        self.staleness.outstanding.store(n, Ordering::Relaxed);
    }

    /// A replica acknowledged a repair push: close the convergence window.
    fn repair_acked(&mut self, req: RequestId, now: Micros) {
        if let Some(detected) = self.pending_repairs.remove(&req) {
            self.repair_acks.inc();
            let took = now.saturating_sub(detected);
            self.repair_convergence.record(took);
            if self.registry.enabled() {
                self.staleness.convergence.record(now, took);
            }
            self.sync_outstanding();
        }
    }

    /// Drops repair pushes that never got acknowledged (lost on a lossy or
    /// partitioned link) so the outstanding depth converges back to zero —
    /// anti-entropy will heal the replica instead.
    fn expire_repairs(&mut self, now: Micros, ttl: Micros) {
        let before = self.pending_repairs.len();
        self.pending_repairs
            .retain(|_, detected| now.saturating_sub(*detected) < ttl);
        let dropped = before - self.pending_repairs.len();
        if dropped > 0 {
            self.repairs_expired.add(dropped as u64);
            self.sync_outstanding();
        }
    }

    /// Marks the per-replica send spans for a freshly issued fan-out.
    fn mark_sends(
        &mut self,
        trace: TraceId,
        raw: &ReplicaOutbox,
        cfg: &ClusterConfig,
        now: Micros,
    ) {
        for (to, _) in raw {
            if let Some(node) = cfg.actor_node(*to) {
                self.tracker.sent(trace, node, now);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ClientCore
// ---------------------------------------------------------------------------

/// A multi-key operation (`write_many`/`read_many`) being assembled from
/// its per-key child quorum ops.
struct PendingGroup {
    /// Per-key results in request order; `None` = child still in flight.
    results: Vec<Option<ClientResult>>,
    remaining: usize,
}

/// The embeddable Sedna client ("local Sedna service").
pub struct ClientCore {
    cfg: ClusterConfig,
    origin: NodeId,
    session: SessionClient,
    lease: LeaseCache,
    ring: Option<VNodeMap>,
    ring_req: Option<RequestId>,
    lease_req: Option<RequestId>,
    writer: QuorumWriter,
    reader: QuorumReader,
    scanner: ScanCoordinator,
    next_op: u64,
    /// Monotonic timestamp state: (micros, counter).
    last_ts: (Micros, u32),
    last_ping: Micros,
    last_lease_check: Micros,
    announced_ready: bool,
    /// Staged replica ops awaiting coalescing (only used when
    /// `cfg.max_batch_ops > 1`).
    stage: ReplicaOutbox,
    /// When the oldest currently-staged op was staged.
    stage_since: Micros,
    /// In-flight multi-key groups, keyed by group op id.
    groups: HashMap<u64, PendingGroup>,
    /// Child op id → (group op id, index within the group).
    child_group: HashMap<u64, (u64, usize)>,
    /// Session causal contexts: per key, the dots this client has observed
    /// (own acked writes + every sibling returned by reads). Attached to
    /// outgoing writes so replicas can tell causal overwrites from
    /// concurrent ones.
    ctx: HashMap<Key, CausalContext>,
    /// Key and dot of each in-flight write, so a `WriteOk` can fold the
    /// write's own dot into the session context.
    write_meta: HashMap<u64, (Key, Timestamp)>,
    /// Metrics, traces, and the event journal.
    obs: ClientObs,
    /// Optional op-history sink for the nemesis checker; `None` (the
    /// default) records nothing.
    history: Option<std::sync::Arc<crate::history::ClientHistory>>,
}

impl ClientCore {
    /// Creates a client stamping writes as `origin`.
    pub fn new(cfg: ClusterConfig, origin: NodeId) -> Self {
        let session = SessionClient::new(SessionConfig {
            replicas: cfg.coord_actors(),
            ping_interval_micros: cfg.ping_interval_micros,
            // Must comfortably exceed the ensemble's election timeout so a
            // failover does not trigger spurious re-sends.
            request_timeout_micros: 600_000,
        });
        let obs = ClientObs::new(&cfg, origin);
        ClientCore {
            cfg,
            origin,
            session,
            lease: LeaseCache::new(LeaseConfig::default()),
            ring: None,
            ring_req: None,
            lease_req: None,
            writer: QuorumWriter::default(),
            reader: QuorumReader::default(),
            scanner: ScanCoordinator::default(),
            next_op: 0,
            last_ts: (0, 0),
            last_ping: 0,
            last_lease_check: 0,
            announced_ready: false,
            stage: Vec::new(),
            stage_since: 0,
            groups: HashMap::new(),
            child_group: HashMap::new(),
            ctx: HashMap::new(),
            write_meta: HashMap::new(),
            obs,
            history: None,
        }
    }

    /// Attaches an op-history sink: every single-key op issued from now on
    /// records an `Invoke`/`Complete` pair (the nemesis checker's input).
    pub fn attach_history(&mut self, sink: std::sync::Arc<crate::history::ClientHistory>) {
        self.history = Some(sink);
    }

    fn record_invoke(&self, op_id: u64, trace: TraceId, op: crate::history::HistoryOp, at: Micros) {
        if let Some(h) = &self.history {
            h.push(crate::history::HistoryEvent::Invoke {
                client: self.origin,
                op_id,
                trace,
                op,
                at,
            });
        }
    }

    fn record_write_outcome(&self, op_id: u64, agg: &WriteOutcomeAgg, at: Micros) {
        if let Some(h) = &self.history {
            let outcome = match agg {
                WriteOutcomeAgg::Ok => crate::history::HistoryOutcome::WriteOk,
                WriteOutcomeAgg::Outdated => crate::history::HistoryOutcome::WriteOutdated,
                _ => crate::history::HistoryOutcome::WriteFailed,
            };
            h.push(crate::history::HistoryEvent::Complete {
                client: self.origin,
                op_id,
                outcome,
                at,
            });
        }
    }

    fn record_read_outcome(&self, fin: &FinishedRead, at: Micros) {
        if let Some(h) = &self.history {
            let latest = match &fin.result {
                ClientResult::Latest(v) => v.as_ref().map(|vv| vv.ts),
                ClientResult::All(Some(vs)) => vs.iter().map(|v| v.ts).max(),
                _ => None,
            };
            // A failed read is a degraded one for checking purposes even
            // when the reader did not flag it.
            let degraded = fin.degraded || matches!(fin.result, ClientResult::Failed);
            h.push(crate::history::HistoryEvent::Complete {
                client: self.origin,
                op_id: fin.op_id,
                outcome: crate::history::HistoryOutcome::Read {
                    latest,
                    dots: result_dots(&fin.result),
                    degraded,
                },
                at,
            });
        }
    }

    /// The deployment layout.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The client's observability surface (metrics, traces, journal).
    pub fn obs(&self) -> &ClientObs {
        &self.obs
    }

    /// Attaches the cluster-shared SLO engine (see
    /// [`ClientObs::set_alert_engine`]).
    pub fn set_alert_engine(&mut self, engine: Arc<AlertEngine>) {
        self.obs.set_alert_engine(engine);
    }

    /// Opens the coordination session; send the returned message first.
    pub fn bootstrap(&mut self) -> Outbox {
        let (to, msg) = self.session.open(0);
        vec![(to, SednaMsg::Coord(msg))]
    }

    /// True once the routing cache is installed.
    pub fn is_ready(&self) -> bool {
        self.ring.is_some()
    }

    /// The cached ring (tests/metrics).
    pub fn ring(&self) -> Option<&VNodeMap> {
        self.ring.as_ref()
    }

    fn next_timestamp(&mut self, now: Micros) -> Timestamp {
        let (m, c) = self.last_ts;
        let (micros, counter) = if now > m { (now, 0) } else { (m, c + 1) };
        self.last_ts = (micros, counter);
        Timestamp::new(micros, counter, self.origin)
    }

    /// The session causal context for `key` — the dots this client has
    /// observed through its own acked writes and through reads.
    fn ctx_of(&self, key: &Key) -> CausalContext {
        self.ctx.get(key).cloned().unwrap_or(CausalContext::EMPTY)
    }

    /// A write decided: drop its in-flight metadata and, when it was
    /// acknowledged, fold its dot into the session context so the client's
    /// next write to the key causally overwrites this one.
    fn note_write_done(&mut self, op_id: u64, agg: &WriteOutcomeAgg) {
        if let Some((key, ts)) = self.write_meta.remove(&op_id) {
            if matches!(agg, WriteOutcomeAgg::Ok) {
                self.ctx.entry(key).or_default().observe(&ts);
            }
        }
    }

    /// A read decided: every sibling dot it returned joins the session
    /// context, and the freshest one advances the HLC so this client's
    /// subsequent writes stamp *after* everything it has read — the
    /// read-your-writes/monotonic floor must hold even when node clocks
    /// are skewed.
    fn note_read_done(&mut self, fin: &FinishedRead) {
        let dots = result_dots(&fin.result);
        if dots.is_empty() {
            return;
        }
        let ctx = self.ctx.entry(fin.key.clone()).or_default();
        for d in &dots {
            ctx.observe(d);
        }
        if let Some(max) = dots.iter().max() {
            let seq = (max.micros, max.counter);
            if seq > self.last_ts {
                self.last_ts = seq;
            }
        }
    }

    fn replicas_for(&self, key: &Key) -> Option<Vec<NodeId>> {
        let ring = self.ring.as_ref()?;
        let vnode = self.cfg.partitioner.locate(key);
        let replicas = ring.replicas(vnode);
        (!replicas.is_empty()).then(|| replicas.to_vec())
    }

    /// Queues raw replica ops for sending. With batching disabled
    /// (`max_batch_ops == 1`) they pass straight through as individual
    /// frames — bit for bit the unbatched datapath; otherwise they are
    /// staged for per-destination coalescing by [`ClientCore::flush_stage`].
    fn stage_ops(&mut self, raw: ReplicaOutbox, now: Micros, out: &mut Outbox) {
        if self.cfg.max_batch_ops <= 1 {
            out.extend(raw.into_iter().map(|(to, op)| (to, SednaMsg::Replica(op))));
            return;
        }
        if !raw.is_empty() && self.stage.is_empty() {
            self.stage_since = now;
        }
        self.stage.extend(raw);
    }

    /// Flushes the staging buffer, grouping staged ops per destination in
    /// first-appearance order. Full batches (`max_batch_ops` sub-ops)
    /// always go out; partial batches go out once `max_batch_delay_micros`
    /// has passed since the oldest staged op — with a zero window that is
    /// immediately, i.e. at the end of the tick that staged them.
    fn flush_stage(&mut self, now: Micros, out: &mut Outbox) {
        if self.stage.is_empty() {
            return;
        }
        let flush_partial = now.saturating_sub(self.stage_since) >= self.cfg.max_batch_delay_micros;
        let staged = std::mem::take(&mut self.stage);
        let mut order: Vec<ActorId> = Vec::new();
        let mut per: HashMap<ActorId, Vec<ReplicaOp>> = HashMap::new();
        for (to, op) in staged {
            let q = per.entry(to).or_default();
            if q.is_empty() {
                order.push(to);
            }
            q.push(op);
        }
        for to in order {
            let mut ops = per.remove(&to).expect("grouped above");
            while ops.len() >= self.cfg.max_batch_ops {
                let rest = ops.split_off(self.cfg.max_batch_ops);
                self.obs.batch_flush_full.inc();
                emit_frame(out, to, ops);
                ops = rest;
            }
            if ops.is_empty() {
                continue;
            }
            if flush_partial {
                if self.cfg.max_batch_delay_micros == 0 {
                    self.obs.batch_flush_immediate.inc();
                } else {
                    self.obs.batch_flush_window.inc();
                }
                emit_frame(out, to, ops);
            } else {
                // Held back for companions; `stage_since` still tracks the
                // oldest op, so the delay bound keeps applying to these.
                self.stage.extend(ops.into_iter().map(|op| (to, op)));
            }
        }
    }

    /// Stages `raw` and performs the end-of-tick flush.
    fn dispatch(&mut self, raw: ReplicaOutbox, now: Micros) -> Outbox {
        let mut out = Outbox::new();
        self.stage_ops(raw, now, &mut out);
        self.flush_stage(now, &mut out);
        out
    }

    /// Routes a finished op to its completion: standalone ops surface as
    /// [`ClientEvent::Done`] directly; children of a `write_many`/
    /// `read_many` group complete the group once every sibling reported.
    fn complete(&mut self, op_id: u64, result: ClientResult, events: &mut Vec<ClientEvent>) {
        let Some((group_id, idx)) = self.child_group.remove(&op_id) else {
            events.push(ClientEvent::Done { op_id, result });
            return;
        };
        let group = self.groups.get_mut(&group_id).expect("group for child");
        if group.results[idx].is_none() {
            group.remaining -= 1;
        }
        group.results[idx] = Some(result);
        if group.remaining == 0 {
            let group = self.groups.remove(&group_id).expect("present");
            let results = group
                .results
                .into_iter()
                .map(|r| r.unwrap_or(ClientResult::Failed))
                .collect();
            events.push(ClientEvent::Done {
                op_id: group_id,
                result: ClientResult::Many(results),
            });
        }
    }

    /// Issues a `write_latest`. Returns `None` until [`ClientCore::is_ready`].
    pub fn write_latest(&mut self, key: &Key, value: Value, now: Micros) -> Option<(u64, Outbox)> {
        self.write(key, value, WriteKind::Latest, now)
    }

    /// Issues a `write_all`.
    pub fn write_all(&mut self, key: &Key, value: Value, now: Micros) -> Option<(u64, Outbox)> {
        self.write(key, value, WriteKind::All, now)
    }

    fn write(
        &mut self,
        key: &Key,
        value: Value,
        kind: WriteKind,
        now: Micros,
    ) -> Option<(u64, Outbox)> {
        sedna_obs::prof_scope!("client.write");
        let replicas = self.replicas_for(key)?;
        self.next_op += 1;
        let op_id = self.next_op;
        let ts = self.next_timestamp(now);
        let ctx = self.ctx_of(key);
        let deadline = now + self.cfg.request_deadline_micros;
        let trace = self.obs.tracker.begin(now);
        self.record_invoke(
            op_id,
            trace,
            crate::history::HistoryOp::Write {
                key: key.clone(),
                ts,
                ctx: ctx.clone(),
            },
            now,
        );
        let raw = self.writer.begin(
            &self.cfg,
            op_id,
            &replicas,
            self.cfg.quorum.w,
            key,
            ts,
            &value,
            &ctx,
            kind,
            deadline,
            trace,
        );
        self.write_meta.insert(op_id, (key.clone(), ts));
        self.obs.mark_sends(trace, &raw, &self.cfg, now);
        Some((op_id, self.dispatch(raw, now)))
    }

    /// Issues one `write_latest` per `(key, value)` pair as a single
    /// multi-key operation. The per-key quorum writes are staged together,
    /// so replicas of different keys that share a destination node receive
    /// one coalesced [`ReplicaOp::Batch`] frame instead of one frame per
    /// key (when batching is enabled via
    /// [`ClusterConfig::with_batching`](crate::config::ClusterConfig::with_batching)).
    /// Completes with one [`ClientResult::Many`] holding the per-key
    /// results in request order. Returns `None` until ready or when
    /// `pairs` is empty.
    pub fn write_many(&mut self, pairs: &[(Key, Value)], now: Micros) -> Option<(u64, Outbox)> {
        if pairs.is_empty() {
            return None;
        }
        let routes: Option<Vec<Vec<NodeId>>> =
            pairs.iter().map(|(k, _)| self.replicas_for(k)).collect();
        let routes = routes?;
        self.next_op += 1;
        let group_id = self.next_op;
        let deadline = now + self.cfg.request_deadline_micros;
        let mut raw = ReplicaOutbox::new();
        for (idx, ((key, value), replicas)) in pairs.iter().zip(&routes).enumerate() {
            self.next_op += 1;
            let child = self.next_op;
            let ts = self.next_timestamp(now);
            let ctx = self.ctx_of(key);
            let trace = self.obs.tracker.begin(now);
            let child_raw = self.writer.begin(
                &self.cfg,
                child,
                replicas,
                self.cfg.quorum.w,
                key,
                ts,
                value,
                &ctx,
                WriteKind::Latest,
                deadline,
                trace,
            );
            self.write_meta.insert(child, (key.clone(), ts));
            self.obs.mark_sends(trace, &child_raw, &self.cfg, now);
            raw.extend(child_raw);
            self.child_group.insert(child, (group_id, idx));
        }
        self.groups.insert(
            group_id,
            PendingGroup {
                results: vec![None; pairs.len()],
                remaining: pairs.len(),
            },
        );
        Some((group_id, self.dispatch(raw, now)))
    }

    /// Issues one `read_latest` per key as a single multi-key operation
    /// (see [`ClientCore::write_many`] for the batching behavior).
    /// Completes with [`ClientResult::Many`] in request order.
    pub fn read_many(&mut self, keys: &[Key], now: Micros) -> Option<(u64, Outbox)> {
        if keys.is_empty() {
            return None;
        }
        let routes: Option<Vec<Vec<NodeId>>> = keys.iter().map(|k| self.replicas_for(k)).collect();
        let routes = routes?;
        self.next_op += 1;
        let group_id = self.next_op;
        let deadline = now + self.cfg.request_deadline_micros;
        let mut raw = ReplicaOutbox::new();
        for (idx, (key, replicas)) in keys.iter().zip(&routes).enumerate() {
            self.next_op += 1;
            let child = self.next_op;
            let trace = self.obs.tracker.begin(now);
            let floor = self.ctx_of(key);
            let child_raw = self.reader.begin(
                &self.cfg,
                child,
                replicas,
                self.cfg.quorum.r,
                key,
                ReadKind::Latest,
                deadline,
                trace,
                floor,
            );
            self.obs.mark_sends(trace, &child_raw, &self.cfg, now);
            raw.extend(child_raw);
            self.child_group.insert(child, (group_id, idx));
        }
        self.groups.insert(
            group_id,
            PendingGroup {
                results: vec![None; keys.len()],
                remaining: keys.len(),
            },
        );
        Some((group_id, self.dispatch(raw, now)))
    }

    /// Issues a `read_latest`.
    pub fn read_latest(&mut self, key: &Key, now: Micros) -> Option<(u64, Outbox)> {
        self.read(key, ReadKind::Latest, now)
    }

    /// Issues a `read_all`.
    pub fn read_all(&mut self, key: &Key, now: Micros) -> Option<(u64, Outbox)> {
        self.read(key, ReadKind::All, now)
    }

    /// Scans a whole table: every member returns the rows it is primary
    /// for, the client merges and sorts. Extension beyond the paper's
    /// per-key APIs — the hierarchical key space makes it natural.
    /// Eventually consistent, like everything else here.
    pub fn scan_table(&mut self, dataset: &str, table: &str, now: Micros) -> Option<(u64, Outbox)> {
        let ring = self.ring.as_ref()?;
        let members: Vec<NodeId> = ring.members().collect();
        if members.is_empty() {
            return None;
        }
        self.next_op += 1;
        let op_id = self.next_op;
        let prefix = sedna_common::KeyPath::prefix_for_table(dataset, table);
        // Scans touch every node; give them a bigger deadline than point ops.
        let deadline = now + self.cfg.request_deadline_micros * 4;
        let raw = self
            .scanner
            .begin(&self.cfg, op_id, &members, prefix, deadline);
        Some((op_id, self.dispatch(raw, now)))
    }

    fn read(&mut self, key: &Key, kind: ReadKind, now: Micros) -> Option<(u64, Outbox)> {
        sedna_obs::prof_scope!("client.read");
        let replicas = self.replicas_for(key)?;
        self.next_op += 1;
        let op_id = self.next_op;
        let deadline = now + self.cfg.request_deadline_micros;
        let trace = self.obs.tracker.begin(now);
        self.record_invoke(
            op_id,
            trace,
            crate::history::HistoryOp::Read { key: key.clone() },
            now,
        );
        let floor = self.ctx_of(key);
        let raw = self.reader.begin(
            &self.cfg,
            op_id,
            &replicas,
            self.cfg.quorum.r,
            key,
            kind,
            deadline,
            trace,
            floor,
        );
        self.obs.mark_sends(trace, &raw, &self.cfg, now);
        Some((op_id, self.dispatch(raw, now)))
    }

    fn request_ring(&mut self, now: Micros) -> Outbox {
        if self.ring_req.is_some() {
            return Vec::new();
        }
        match self.session.request(
            CoordOp::Get {
                path: paths::RING.into(),
                watch: false,
            },
            now,
        ) {
            Some((req, to, msg)) => {
                self.ring_req = Some(req);
                vec![(to, SednaMsg::Coord(msg))]
            }
            None => Vec::new(),
        }
    }

    /// Feeds an incoming message.
    pub fn on_message(
        &mut self,
        from: ActorId,
        msg: SednaMsg,
        now: Micros,
    ) -> (Vec<ClientEvent>, Outbox) {
        sedna_obs::prof_scope!("client.on_message");
        let mut events = Vec::new();
        let mut out: Outbox = Vec::new();
        match msg {
            SednaMsg::Coord(m) => {
                let (ev, retry) = self.session.on_message(m);
                if let Some((to, m)) = retry {
                    out.push((to, SednaMsg::Coord(m)));
                }
                match ev {
                    Some(SessionEvent::Opened(_)) => {
                        out.extend(self.request_ring(now));
                    }
                    Some(SessionEvent::Expired) => {
                        let (to, m) = self.session.open(now);
                        out.push((to, SednaMsg::Coord(m)));
                    }
                    Some(SessionEvent::Pong { sent_at }) => {
                        self.obs.ping_rtt.record(now.saturating_sub(sent_at));
                    }
                    Some(SessionEvent::Reply { req_id, result }) => {
                        out.extend(self.on_coord_reply(req_id, result, now));
                        if self.is_ready() && !self.announced_ready {
                            self.announced_ready = true;
                            events.push(ClientEvent::Ready);
                        }
                    }
                    _ => {}
                }
            }
            SednaMsg::Replica(op) => {
                self.on_replica_reply(from, op, now, &mut events, &mut out);
                // A reply may have queued repair pushes, and any delayed
                // partial batch whose window elapsed goes out now.
                self.flush_stage(now, &mut out);
            }
            _ => {}
        }
        (events, out)
    }

    /// Handles one replica-originated frame — possibly a sub-reply carried
    /// inside a [`ReplicaOp::AckBatch`]. Read-repair pushes go through the
    /// staging buffer so they coalesce like any other replica op.
    fn on_replica_reply(
        &mut self,
        from: ActorId,
        op: ReplicaOp,
        now: Micros,
        events: &mut Vec<ClientEvent>,
        out: &mut Outbox,
    ) {
        match op {
            ReplicaOp::WriteAck {
                req,
                ack,
                apply_nanos,
                lock_nanos,
            } => {
                let trace = self.writer.trace_of(req);
                if let (Some(trace), Some(node)) = (trace, self.cfg.actor_node(from)) {
                    self.obs
                        .tracker
                        .acked(trace, node, now, apply_nanos, lock_nanos);
                }
                let (done, refused) = self.writer.on_ack(&self.cfg, from, req, ack);
                if refused {
                    out.extend(self.refresh_ring_now(now));
                }
                if let Some((op_id, agg)) = done {
                    if let Some(trace) = trace {
                        self.obs.write_done(trace, &agg, now);
                    }
                    self.note_write_done(op_id, &agg);
                    self.record_write_outcome(op_id, &agg, now);
                    self.complete(op_id, write_result(agg), events);
                }
            }
            ReplicaOp::ScanReply { req, rows } => {
                if let Some((op_id, rows)) = self.scanner.on_reply(&self.cfg, from, req, rows) {
                    self.complete(op_id, ClientResult::Scanned(rows), events);
                }
            }
            ReplicaOp::ReadReply {
                req,
                reply,
                apply_nanos,
                lock_nanos,
            } => {
                let refused = matches!(reply, ReplicaReadReply::Refused);
                if refused {
                    out.extend(self.refresh_ring_now(now));
                }
                if let (Some(trace), Some(node)) =
                    (self.reader.trace_of(req), self.cfg.actor_node(from))
                {
                    self.obs
                        .tracker
                        .acked(trace, node, now, apply_nanos, lock_nanos);
                }
                if let Some(fin) = self.reader.on_reply(&self.cfg, from, req, reply) {
                    self.obs.read_done(&fin, &self.cfg, now);
                    self.note_read_done(&fin);
                    self.record_read_outcome(&fin, now);
                    self.stage_ops(fin.repairs, now, out);
                    if fin.saw_failure {
                        out.extend(self.refresh_ring_now(now));
                    }
                    self.complete(fin.op_id, fin.result, events);
                }
            }
            ReplicaOp::PushAck { req } => {
                self.obs.repair_acked(req, now);
            }
            ReplicaOp::AckBatch { acks } => {
                for ack in acks {
                    // Batches are never nested; skip malformed frames.
                    if !matches!(ack, ReplicaOp::AckBatch { .. } | ReplicaOp::Batch { .. }) {
                        self.on_replica_reply(from, ack, now, events, out);
                    }
                }
            }
            _ => {}
        }
    }

    fn refresh_ring_now(&mut self, now: Micros) -> Outbox {
        // Invalidate the cached ring entry and fetch a fresh copy.
        self.obs.ring_refreshes.inc();
        self.lease.invalidate(paths::RING);
        self.request_ring(now)
    }

    fn on_coord_reply(
        &mut self,
        req_id: RequestId,
        result: Result<CoordReply, sedna_coord::messages::CoordError>,
        now: Micros,
    ) -> Outbox {
        let mut out = Vec::new();
        if Some(req_id) == self.ring_req {
            self.ring_req = None;
            if let Ok(CoordReply::Data { data, version, .. }) = result {
                if let Some(map) = VNodeMap::decode(&data) {
                    let newer = self.ring.as_ref().is_none_or(|r| map.epoch() > r.epoch());
                    if newer {
                        self.ring = Some(map);
                    }
                    self.lease.put(paths::RING, data, version);
                }
            }
            return out;
        }
        if Some(req_id) == self.lease_req {
            self.lease_req = None;
            if let Ok(CoordReply::Changes {
                paths: changed,
                latest_zxid,
                truncated,
            }) = result
            {
                let stale = self.lease.apply_changes(changed, latest_zxid, truncated);
                let _ = now;
                if stale.iter().any(|p| p == paths::RING) {
                    out.extend(self.request_ring(now));
                }
            }
        }
        out
    }

    /// Periodic driver: deadlines, session pings and the adaptive-lease
    /// refresh. Call every few tens of milliseconds.
    pub fn on_tick(&mut self, now: Micros) -> (Vec<ClientEvent>, Outbox) {
        let mut events = Vec::new();
        let mut out: Outbox = Vec::new();
        for (op_id, agg, trace) in self.writer.on_tick(now) {
            let failed = matches!(agg, WriteOutcomeAgg::Failed { .. });
            self.obs.write_done(trace, &agg, now);
            self.note_write_done(op_id, &agg);
            self.record_write_outcome(op_id, &agg, now);
            self.complete(op_id, write_result(agg), &mut events);
            if failed {
                out.extend(self.refresh_ring_now(now));
            }
        }
        for (op_id, rows) in self.scanner.on_tick(now) {
            self.complete(op_id, ClientResult::Scanned(rows), &mut events);
        }
        for fin in self.reader.on_tick(&self.cfg, now) {
            self.obs.read_done(&fin, &self.cfg, now);
            self.note_read_done(&fin);
            self.record_read_outcome(&fin, now);
            self.stage_ops(fin.repairs, now, &mut out);
            if fin.saw_failure {
                out.extend(self.refresh_ring_now(now));
            }
            self.complete(fin.op_id, fin.result, &mut events);
        }
        self.flush_stage(now, &mut out);
        // A repair push lost to the network must not pin the outstanding
        // depth forever; anti-entropy converges the replica regardless.
        self.obs
            .expire_repairs(now, self.cfg.request_deadline_micros.saturating_mul(8));
        if now.saturating_sub(self.last_ping) >= self.cfg.ping_interval_micros {
            self.last_ping = now;
            if let Some((to, m)) = self.session.ping(now) {
                out.push((to, SednaMsg::Coord(m)));
            }
        }
        // Retry/failover requests whose replica went silent, keeping the
        // correlation ids for the ring and lease fetches up to date.
        for (old, (to, m)) in self.session.on_tick(now) {
            let new_id = match &m {
                CoordMsg::Request { req_id, .. } => *req_id,
                _ => RequestId(0),
            };
            if Some(old) == self.ring_req {
                self.ring_req = Some(new_id);
            } else if Some(old) == self.lease_req {
                self.lease_req = Some(new_id);
            }
            out.push((to, SednaMsg::Coord(m)));
        }
        // Until routing state exists, keep retrying the ring fetch (the
        // cluster may still be bootstrapping its namespace).
        if !self.is_ready() && self.session.session().is_some() {
            out.extend(self.request_ring(now));
        }
        if self.is_ready()
            && self.lease_req.is_none()
            && now.saturating_sub(self.last_lease_check) >= self.lease.lease_micros()
        {
            self.last_lease_check = now;
            if let Some((req, to, m)) = self.session.request(self.lease.refresh_op(), now) {
                self.lease_req = Some(req);
                out.push((to, SednaMsg::Coord(m)));
            }
        }
        (events, out)
    }
}

/// Frames one destination's chunk: a single op travels as a bare frame
/// (indistinguishable from the unbatched datapath on the wire), two or
/// more share one [`ReplicaOp::Batch`] header.
fn emit_frame(out: &mut Outbox, to: ActorId, mut ops: Vec<ReplicaOp>) {
    debug_assert!(!ops.is_empty());
    let msg = if ops.len() == 1 {
        SednaMsg::Replica(ops.pop().expect("non-empty"))
    } else {
        SednaMsg::Replica(ReplicaOp::Batch { ops })
    };
    out.push((to, msg));
}

/// The sibling dots a read result returned (empty on miss/failure).
fn result_dots(result: &ClientResult) -> Vec<Timestamp> {
    match result {
        ClientResult::Latest(Some(v)) => vec![v.ts],
        ClientResult::All(Some(vs)) => vs.iter().map(|v| v.ts).collect(),
        _ => Vec::new(),
    }
}

fn write_result(agg: WriteOutcomeAgg) -> ClientResult {
    match agg {
        WriteOutcomeAgg::Ok => ClientResult::Ok,
        WriteOutcomeAgg::Outdated => ClientResult::Outdated,
        WriteOutcomeAgg::Failed { .. } | WriteOutcomeAgg::Pending => ClientResult::Failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        ClusterConfig::small()
    }

    #[test]
    fn not_ready_before_ring() {
        let mut c = ClientCore::new(cfg(), NodeId(1_000));
        assert!(!c.is_ready());
        assert!(c
            .write_latest(&Key::from("k"), Value::from("v"), 0)
            .is_none());
        assert!(c.read_latest(&Key::from("k"), 0).is_none());
        let boot = c.bootstrap();
        assert_eq!(boot.len(), 1);
        assert!(matches!(boot[0].1, SednaMsg::Coord(_)));
    }

    #[test]
    fn quorum_writer_full_cycle() {
        let cfg = cfg();
        let mut w = QuorumWriter::default();
        let replicas = vec![NodeId(0), NodeId(1), NodeId(2)];
        let out = w.begin(
            &cfg,
            1,
            &replicas,
            2,
            &Key::from("k"),
            Timestamp::new(1, 0, NodeId(1_000)),
            &Value::from("v"),
            &CausalContext::EMPTY,
            WriteKind::Latest,
            100,
            TraceId(1),
        );
        assert_eq!(out.len(), 3);
        assert_eq!(w.in_flight(), 1);
        let req = match &out[0].1 {
            ReplicaOp::Write { req, .. } => *req,
            other => panic!("{other:?}"),
        };
        let (done, _) = w.on_ack(&cfg, cfg.node_actor(NodeId(0)), req, ReplicaWriteAck::Ok);
        assert!(done.is_none());
        let (done, _) = w.on_ack(&cfg, cfg.node_actor(NodeId(1)), req, ReplicaWriteAck::Ok);
        assert_eq!(done, Some((1, WriteOutcomeAgg::Ok)));
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn quorum_writer_deadline_fails() {
        let cfg = cfg();
        let mut w = QuorumWriter::default();
        w.begin(
            &cfg,
            7,
            &[NodeId(0), NodeId(1), NodeId(2)],
            2,
            &Key::from("k"),
            Timestamp::ZERO,
            &Value::from("v"),
            &CausalContext::EMPTY,
            WriteKind::All,
            100,
            TraceId(7),
        );
        assert!(w.on_tick(50).is_empty());
        let done = w.on_tick(100);
        assert_eq!(done.len(), 1);
        assert!(matches!(
            done[0],
            (7, WriteOutcomeAgg::Failed { .. }, TraceId(7))
        ));
    }

    #[test]
    fn quorum_reader_repairs_inconsistency() {
        use sedna_memstore::VersionedValue;
        let cfg = cfg();
        let mut r = QuorumReader::default();
        let out = r.begin(
            &cfg,
            3,
            &[NodeId(0), NodeId(1), NodeId(2)],
            2,
            &Key::from("k"),
            ReadKind::Latest,
            100,
            TraceId(3),
            CausalContext::EMPTY,
        );
        let req = match &out[0].1 {
            ReplicaOp::Read { req, .. } => *req,
            other => panic!("{other:?}"),
        };
        let fresh = VersionedValue {
            ts: Timestamp::new(9, 0, NodeId(1_000)),
            value: Value::from("fresh"),
        };
        let stale = VersionedValue {
            ts: Timestamp::new(4, 0, NodeId(1_000)),
            value: Value::from("stale"),
        };
        // Three mutually-divergent replies: no group reaches R=2.
        assert!(r
            .on_reply(
                &cfg,
                cfg.node_actor(NodeId(0)),
                req,
                ReplicaReadReply::Values {
                    versions: vec![fresh.clone()],
                    clock: CausalContext::EMPTY,
                }
            )
            .is_none());
        assert!(r
            .on_reply(
                &cfg,
                cfg.node_actor(NodeId(1)),
                req,
                ReplicaReadReply::Values {
                    versions: vec![stale],
                    clock: CausalContext::EMPTY,
                }
            )
            .is_none());
        let fin = r
            .on_reply(
                &cfg,
                cfg.node_actor(NodeId(2)),
                req,
                ReplicaReadReply::Missing,
            )
            .expect("decided");
        // Merged answer is the freshest value; the stale and missing
        // replicas each get a repair push.
        assert_eq!(fin.result, ClientResult::Latest(Some(fresh)));
        assert_eq!(fin.repairs.len(), 2);
        for (_, m) in &fin.repairs {
            assert!(matches!(m, ReplicaOp::Push { .. }));
        }
    }

    #[test]
    fn quorum_reader_not_found_when_missing_reaches_r() {
        // R + W > N guarantees a committed write intersects every read
        // quorum, so two Missing replies are an authoritative NotFound
        // (the third, unconfirmed copy never reached W).
        use sedna_memstore::VersionedValue;
        let cfg = cfg();
        let mut r = QuorumReader::default();
        let out = r.begin(
            &cfg,
            4,
            &[NodeId(0), NodeId(1), NodeId(2)],
            2,
            &Key::from("k"),
            ReadKind::Latest,
            100,
            TraceId(4),
            CausalContext::EMPTY,
        );
        let req = match &out[0].1 {
            ReplicaOp::Read { req, .. } => *req,
            other => panic!("{other:?}"),
        };
        let orphan = VersionedValue {
            ts: Timestamp::new(9, 0, NodeId(1_000)),
            value: Value::from("orphan"),
        };
        r.on_reply(
            &cfg,
            cfg.node_actor(NodeId(0)),
            req,
            ReplicaReadReply::Values {
                versions: vec![orphan],
                clock: CausalContext::EMPTY,
            },
        );
        r.on_reply(
            &cfg,
            cfg.node_actor(NodeId(1)),
            req,
            ReplicaReadReply::Missing,
        );
        let fin = r
            .on_reply(
                &cfg,
                cfg.node_actor(NodeId(2)),
                req,
                ReplicaReadReply::Missing,
            )
            .expect("decided");
        assert_eq!(fin.result, ClientResult::Latest(None));
    }

    #[test]
    fn refused_acks_trigger_ring_refresh_without_session() {
        // Without an open session the refresh is a silent no-op (retried on
        // the next tick once the session exists) — must not panic.
        let cfg2 = cfg();
        let mut c = ClientCore::new(cfg2.clone(), NodeId(1_000));
        let (events, out) = c.on_message(
            cfg2.node_actor(NodeId(0)),
            SednaMsg::Replica(ReplicaOp::WriteAck {
                req: RequestId(1),
                ack: ReplicaWriteAck::Refused,
                apply_nanos: 0,
                lock_nanos: 0,
            }),
            0,
        );
        assert!(events.is_empty());
        assert!(out.is_empty());
    }

    #[test]
    fn timestamps_are_monotonic_within_client() {
        let mut c = ClientCore::new(cfg(), NodeId(1_000));
        let a = c.next_timestamp(5);
        let b = c.next_timestamp(5);
        let d = c.next_timestamp(4); // clock stall/regression
        let e = c.next_timestamp(6);
        assert!(a < b && b < d && d < e);
    }

    fn raw_ops(n: usize, to: ActorId) -> ReplicaOutbox {
        (0..n)
            .map(|i| {
                (
                    to,
                    ReplicaOp::Read {
                        req: RequestId(i as u64 + 1),
                        key: Key::from(format!("k{i}")),
                        trace: TraceId(i as u64),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn stage_bypasses_when_batching_disabled() {
        let mut c = ClientCore::new(cfg(), NodeId(1_000));
        assert_eq!(c.cfg.max_batch_ops, 1);
        let out = c.dispatch(raw_ops(3, ActorId(4)), 0);
        assert_eq!(out.len(), 3);
        for (_, m) in &out {
            assert!(matches!(m, SednaMsg::Replica(ReplicaOp::Read { .. })));
        }
        assert!(c.stage.is_empty());
    }

    #[test]
    fn flush_coalesces_per_destination_and_chunks() {
        let mut c = ClientCore::new(cfg().with_batching(2, 0), NodeId(1_000));
        // 3 ops to node A interleaved with 1 to node B.
        let mut raw = raw_ops(3, ActorId(4));
        raw.insert(1, raw_ops(1, ActorId(5)).pop().unwrap());
        let out = c.dispatch(raw, 0);
        // A gets a full batch of 2 + a bare leftover; B gets a bare frame.
        assert_eq!(out.len(), 3);
        // First-appearance order: all of A's frames first, then B's.
        match &out[0].1 {
            SednaMsg::Replica(ReplicaOp::Batch { ops }) => assert_eq!(ops.len(), 2),
            other => panic!("{other:?}"),
        }
        assert_eq!(out[0].0, ActorId(4));
        assert!(matches!(
            out[1],
            (ActorId(4), SednaMsg::Replica(ReplicaOp::Read { .. }))
        ));
        assert!(matches!(
            out[2],
            (ActorId(5), SednaMsg::Replica(ReplicaOp::Read { .. }))
        ));
        assert!(c.stage.is_empty());
    }

    #[test]
    fn partial_batches_wait_for_the_delay_window() {
        let mut c = ClientCore::new(cfg().with_batching(4, 100), NodeId(1_000));
        let out = c.dispatch(raw_ops(2, ActorId(4)), 10);
        // Partial batch, window not yet elapsed: nothing sent, ops ride.
        assert!(out.is_empty());
        assert_eq!(c.stage.len(), 2);
        // Window elapses: the partial batch flushes as one frame.
        let mut out = Outbox::new();
        c.flush_stage(110, &mut out);
        assert_eq!(out.len(), 1);
        match &out[0].1 {
            SednaMsg::Replica(ReplicaOp::Batch { ops }) => assert_eq!(ops.len(), 2),
            other => panic!("{other:?}"),
        }
        assert!(c.stage.is_empty());
    }

    #[test]
    fn group_completion_assembles_results_in_request_order() {
        let mut c = ClientCore::new(cfg(), NodeId(1_000));
        c.groups.insert(
            7,
            PendingGroup {
                results: vec![None, None],
                remaining: 2,
            },
        );
        c.child_group.insert(8, (7, 0));
        c.child_group.insert(9, (7, 1));
        let mut events = Vec::new();
        // Children complete out of order; the group reports in slot order.
        c.complete(9, ClientResult::Outdated, &mut events);
        assert!(events.is_empty());
        c.complete(8, ClientResult::Ok, &mut events);
        assert_eq!(
            events,
            vec![ClientEvent::Done {
                op_id: 7,
                result: ClientResult::Many(vec![ClientResult::Ok, ClientResult::Outdated]),
            }]
        );
        assert!(c.groups.is_empty() && c.child_group.is_empty());
    }
}
