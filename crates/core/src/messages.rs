//! The cluster-wide message type.
//!
//! One Sedna deployment runs three protocols over one runtime: the
//! coordination ensemble ([`CoordMsg`]), the replica data path
//! ([`ReplicaOp`]), and the external client/gateway frames
//! ([`ClientFrame`]). [`SednaMsg`] composes them; `Wrap` impls let the
//! substrate actors (written against their own enums) run unchanged.

use sedna_common::time::Timestamp;
use sedna_common::{CausalContext, Key, NodeId, RequestId, TraceId, VNodeId, Value};
use sedna_coord::messages::CoordMsg;
use sedna_memstore::VersionedValue;
use sedna_net::actor::{MessageSize, Wrap};
use sedna_triggers::JobSpec;

/// The two write APIs (Sec. III-F).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteKind {
    /// `write_latest`.
    Latest,
    /// `write_all`.
    All,
}

/// A replica's verdict on a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaWriteAck {
    /// Stored (`'ok'`).
    Ok,
    /// Lost to a newer timestamp (`'outdated'`).
    Outdated,
    /// This node does not own the key's vnode (stale routing) — the client
    /// must refresh its ring cache and retry.
    Refused,
}

/// A replica's reply to a read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicaReadReply {
    /// The row's value list plus its row clock. The clock is what lets
    /// the coordinator tell a *causally pruned* sibling (covered by the
    /// clock) from a sibling the replica simply has not seen yet — the
    /// session-floor gate on clean reads depends on it.
    Values {
        /// The row's (possibly multi-sibling) version list.
        versions: Vec<VersionedValue>,
        /// The row's dotted-version-vector clock (empty in legacy mode).
        clock: CausalContext,
    },
    /// Key unknown here.
    Missing,
    /// Not the owner (stale routing).
    Refused,
}

/// Node-to-node / client-to-node data-path operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicaOp {
    /// Timestamped replica write.
    Write {
        /// Correlation id (one per client op; replies are keyed by sender).
        req: RequestId,
        /// Key.
        key: Key,
        /// Write timestamp (origin identifies the source server).
        ts: Timestamp,
        /// Value.
        value: Value,
        /// Which write API.
        kind: WriteKind,
        /// The writer's causal context: every dot the client had observed
        /// for this key before issuing the write. Empty for blind writes
        /// (and always empty in legacy-timestamp mode).
        ctx: CausalContext,
        /// Distributed trace of the client op this write belongs to.
        trace: TraceId,
    },
    /// Reply to [`ReplicaOp::Write`].
    WriteAck {
        /// Correlation id.
        req: RequestId,
        /// Verdict.
        ack: ReplicaWriteAck,
        /// Wall-clock nanoseconds the replica held the shard lock while
        /// applying — reported back so the client can place a node-apply
        /// span inside the op's trace.
        apply_nanos: u64,
        /// Wall-clock nanoseconds the apply *waited* on contended shard
        /// locks before acquiring them (0 when uncontended) — feeds the
        /// client's tail critical-path decomposition.
        lock_nanos: u64,
    },
    /// Replica read.
    Read {
        /// Correlation id.
        req: RequestId,
        /// Key.
        key: Key,
        /// Distributed trace of the client op this read belongs to.
        trace: TraceId,
    },
    /// Reply to [`ReplicaOp::Read`].
    ReadReply {
        /// Correlation id.
        req: RequestId,
        /// Reply.
        reply: ReplicaReadReply,
        /// Shard-lock hold time on the replica, in nanoseconds (see
        /// [`ReplicaOp::WriteAck::apply_nanos`]).
        apply_nanos: u64,
        /// Shard-lock *wait* time within the apply, in nanoseconds (see
        /// [`ReplicaOp::WriteAck::lock_nanos`]).
        lock_nanos: u64,
    },
    /// Read-repair push: merge these versions. The replica acknowledges
    /// with [`ReplicaOp::PushAck`] so the client can track outstanding
    /// repairs and time-to-convergence; the datapath never blocks on it.
    Push {
        /// Correlation id (for the repair-convergence tracker).
        req: RequestId,
        /// Key.
        key: Key,
        /// Versions to merge.
        versions: Vec<VersionedValue>,
    },
    /// Reply to [`ReplicaOp::Push`]: the versions are merged locally.
    PushAck {
        /// Correlation id.
        req: RequestId,
    },
    /// "Send me vnode `vnode`'s rows" (data duplication / migration).
    TransferRequest {
        /// The vnode to ship.
        vnode: VNodeId,
        /// Which node asks (for addressing the reply).
        to_node: NodeId,
    },
    /// Bulk vnode data (reply to [`ReplicaOp::TransferRequest`]).
    TransferData {
        /// The vnode.
        vnode: VNodeId,
        /// The rows, each with its causal row clock so the receiver merges
        /// without resurrecting siblings the sender causally pruned.
        rows: Vec<(Key, CausalContext, Vec<VersionedValue>)>,
    },
    /// Destination → source: the vnode's rows are installed; the source
    /// may drop its local copy if it is no longer a replica. Ordering this
    /// *after* the data transfer is what makes vnode moves loss-free.
    TransferComplete {
        /// The vnode.
        vnode: VNodeId,
    },
    /// Table scan: return this node's rows under `prefix` for which it is
    /// the *primary* replica (so a scatter over all members yields each key
    /// exactly once).
    Scan {
        /// Correlation id.
        req: RequestId,
        /// Flat-key prefix (a table or dataset prefix from `KeyPath`).
        prefix: Vec<u8>,
    },
    /// Reply to [`ReplicaOp::Scan`]: the matching rows' freshest versions.
    ScanReply {
        /// Correlation id.
        req: RequestId,
        /// `(key, freshest version)` pairs.
        rows: Vec<(Key, VersionedValue)>,
    },
    /// Anti-entropy probe: "here is an order-independent digest of my copy
    /// of `vnode`; if yours differs, exchange rows with me."
    SyncDigest {
        /// The vnode being compared.
        vnode: VNodeId,
        /// XOR-combined per-row fingerprint (commutative, so replicas can
        /// compare without sorting).
        digest: u64,
        /// Which node is probing (for the exchange reply).
        from_node: NodeId,
    },
    /// Anti-entropy ack: the probed replica's digest *matched*. Costs one
    /// u64 and closes the loop for the prober's divergence telemetry — the
    /// prober learns the peer's root (and that it agrees) instead of
    /// inferring health from silence.
    SyncRootMatch {
        /// The vnode that was compared.
        vnode: VNodeId,
        /// The matching root digest.
        root: u64,
        /// Which node is acking.
        from_node: NodeId,
    },
    /// Anti-entropy, second round: the probed replica's digest differed, so
    /// it answers with its 64 Merkle leaf hashes (512 bytes) for divergence
    /// localization.
    SyncLeaves {
        /// The vnode being compared.
        vnode: VNodeId,
        /// Which node is answering.
        from_node: NodeId,
        /// The per-leaf hashes of the answerer's Merkle tree.
        leaves: Box<[u64; 64]>,
    },
    /// Anti-entropy, third round: rows (with clocks) from the leaf buckets
    /// the Merkle diff flagged as divergent, merged on receipt.
    SyncRows {
        /// The vnode being repaired.
        vnode: VNodeId,
        /// Which node is shipping.
        from_node: NodeId,
        /// Bitmap of the divergent leaves these rows cover.
        leaf_mask: u64,
        /// The rows: key, row clock, live versions.
        rows: Vec<(Key, CausalContext, Vec<VersionedValue>)>,
        /// True on the first direction of the exchange: the receiver
        /// answers with its own rows for the same leaves so the repair is
        /// bidirectional without re-probing.
        reply_wanted: bool,
    },
    /// Several data-path ops for the same destination coalesced into one
    /// transport frame (the batched replica datapath). Sub-ops are handled
    /// in order exactly as if they had arrived as individual frames; the
    /// replies they produce come back coalesced as [`ReplicaOp::AckBatch`].
    Batch {
        /// The coalesced sub-ops. Never nested (`Batch`/`AckBatch` inside
        /// a batch is ignored by receivers).
        ops: Vec<ReplicaOp>,
    },
    /// Several acks/replies for the same requester coalesced into one
    /// frame (the reply to a [`ReplicaOp::Batch`]).
    AckBatch {
        /// The coalesced replies ([`ReplicaOp::WriteAck`] /
        /// [`ReplicaOp::ReadReply`] / …), in sub-op order.
        acks: Vec<ReplicaOp>,
    },
}

/// Management-plane messages.
pub enum ControlMsg {
    /// Register a trigger job on the receiving node.
    RegisterJob(JobSpec),
    /// Manager → new replica: acquire `vnode`, copying from `from` when a
    /// source exists.
    MigrateVNode {
        /// The vnode to acquire.
        vnode: VNodeId,
        /// Copy source (`None` on first assignment).
        from: Option<NodeId>,
    },
    /// Manager → former replica: drop local rows of `vnode` (it moved away).
    DropVNode {
        /// The vnode to drop.
        vnode: VNodeId,
    },
}

impl std::fmt::Debug for ControlMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlMsg::RegisterJob(spec) => write!(f, "RegisterJob({})", spec.name),
            ControlMsg::MigrateVNode { vnode, from } => {
                write!(f, "MigrateVNode({vnode:?} from {from:?})")
            }
            ControlMsg::DropVNode { vnode } => write!(f, "DropVNode({vnode:?})"),
        }
    }
}

/// Client-visible operations (what the paper's basic APIs expose).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientOp {
    /// `write_latest(key, value)`.
    WriteLatest {
        /// Key.
        key: Key,
        /// Value.
        value: Value,
    },
    /// `write_all(key, value)`.
    WriteAll {
        /// Key.
        key: Key,
        /// Value.
        value: Value,
    },
    /// `read_latest(key)`.
    ReadLatest {
        /// Key.
        key: Key,
    },
    /// `read_all(key)`.
    ReadAll {
        /// Key.
        key: Key,
    },
    /// Scan a whole table (extension; see `ClientCore::scan_table`).
    ScanTable {
        /// Dataset name.
        dataset: String,
        /// Table name.
        table: String,
    },
    /// `write_many(pairs)`: one `write_latest` per pair, issued together so
    /// the replica datapath can coalesce frames per destination.
    WriteMany {
        /// The `(key, value)` pairs, answered in this order.
        pairs: Vec<(Key, Value)>,
    },
    /// `read_many(keys)`: one `read_latest` per key, issued together.
    ReadMany {
        /// The keys, answered in this order.
        keys: Vec<Key>,
    },
}

/// Client-visible results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientResult {
    /// Write applied (`'ok'`).
    Ok,
    /// Write lost to a newer timestamp (`'outdated'`).
    Outdated,
    /// `read_latest` result.
    Latest(Option<VersionedValue>),
    /// `read_all` result.
    All(Option<Vec<VersionedValue>>),
    /// Table-scan result: each key exactly once with its freshest version,
    /// sorted by key. Eventually consistent (served from primaries).
    Scanned(Vec<(Key, VersionedValue)>),
    /// Per-key results of a `write_many`/`read_many`, in request order.
    Many(Vec<ClientResult>),
    /// The operation failed (`'failure'`); recovery was scheduled.
    Failed,
}

/// Frames between an external caller and a gateway actor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientFrame {
    /// Perform `op`.
    Request {
        /// Caller-chosen id echoed in the response.
        op_id: u64,
        /// The operation.
        op: ClientOp,
    },
    /// Outcome of a [`ClientFrame::Request`].
    Response {
        /// Echoed id.
        op_id: u64,
        /// The result.
        result: ClientResult,
    },
}

/// The composed runtime message.
#[derive(Debug)]
pub enum SednaMsg {
    /// Coordination-ensemble traffic.
    Coord(CoordMsg),
    /// Data-path traffic.
    Replica(ReplicaOp),
    /// External client frames.
    Client(ClientFrame),
    /// Management plane.
    Control(ControlMsg),
}

impl Wrap<CoordMsg> for SednaMsg {
    fn wrap(inner: CoordMsg) -> Self {
        SednaMsg::Coord(inner)
    }
    fn unwrap(self) -> Result<CoordMsg, Self> {
        match self {
            SednaMsg::Coord(m) => Ok(m),
            other => Err(other),
        }
    }
    fn peek(&self) -> Option<&CoordMsg> {
        match self {
            SednaMsg::Coord(m) => Some(m),
            _ => None,
        }
    }
}

impl Wrap<ReplicaOp> for SednaMsg {
    fn wrap(inner: ReplicaOp) -> Self {
        SednaMsg::Replica(inner)
    }
    fn unwrap(self) -> Result<ReplicaOp, Self> {
        match self {
            SednaMsg::Replica(m) => Ok(m),
            other => Err(other),
        }
    }
    fn peek(&self) -> Option<&ReplicaOp> {
        match self {
            SednaMsg::Replica(m) => Some(m),
            _ => None,
        }
    }
}

impl Wrap<ClientFrame> for SednaMsg {
    fn wrap(inner: ClientFrame) -> Self {
        SednaMsg::Client(inner)
    }
    fn unwrap(self) -> Result<ClientFrame, Self> {
        match self {
            SednaMsg::Client(m) => Ok(m),
            other => Err(other),
        }
    }
    fn peek(&self) -> Option<&ClientFrame> {
        match self {
            SednaMsg::Client(m) => Some(m),
            _ => None,
        }
    }
}

fn versions_size(v: &[VersionedValue]) -> usize {
    v.iter().map(|x| x.value.len() + 24).sum()
}

/// Wire bytes of a causal context: 16 per `(actor, micros, counter)` entry.
/// An empty context (blind writes, legacy mode) costs nothing, so frames
/// that never attach one keep their exact pre-DVV sizes.
fn context_size(ctx: &CausalContext) -> usize {
    ctx.len() * 16
}

/// Wire bytes of clock-carrying sync/transfer rows.
fn clocked_rows_size(rows: &[(Key, CausalContext, Vec<VersionedValue>)]) -> usize {
    rows.iter()
        .map(|(k, c, v)| k.len() + context_size(c) + versions_size(v))
        .sum()
}

impl MessageSize for ReplicaOp {
    fn size_bytes(&self) -> usize {
        // The wire-size model charges trace ids and apply-time metadata to
        // the fixed frame header (they are small fixed-width fields), so
        // the byte math the batching tests assert on is unchanged.
        const HDR: usize = 32;
        HDR + match self {
            ReplicaOp::Write {
                key, value, ctx, ..
            } => key.len() + value.len() + 16 + context_size(ctx),
            ReplicaOp::WriteAck { .. } => 4,
            ReplicaOp::Read { key, .. } => key.len(),
            ReplicaOp::ReadReply { reply, .. } => match reply {
                ReplicaReadReply::Values { versions, clock } => {
                    versions_size(versions) + context_size(clock)
                }
                _ => 4,
            },
            ReplicaOp::Push { key, versions, .. } => key.len() + versions_size(versions),
            ReplicaOp::PushAck { .. } => 4,
            ReplicaOp::TransferRequest { .. }
            | ReplicaOp::TransferComplete { .. }
            | ReplicaOp::SyncDigest { .. }
            | ReplicaOp::SyncRootMatch { .. } => 16,
            ReplicaOp::Scan { prefix, .. } => prefix.len(),
            ReplicaOp::ScanReply { rows, .. } => {
                rows.iter().map(|(k, v)| k.len() + v.value.len() + 24).sum()
            }
            ReplicaOp::TransferData { rows, .. } => clocked_rows_size(rows),
            ReplicaOp::SyncLeaves { .. } => 8 + 64 * 8,
            ReplicaOp::SyncRows { rows, .. } => 16 + clocked_rows_size(rows),
            // A batch pays one frame header for the whole group; every
            // sub-op contributes its body plus an 8-byte sub-header instead
            // of a full frame header of its own.
            ReplicaOp::Batch { ops } | ReplicaOp::AckBatch { acks: ops } => {
                ops.iter().map(|op| op.size_bytes() - HDR + 8).sum()
            }
        }
    }
}

fn client_result_size(result: &ClientResult) -> usize {
    match result {
        ClientResult::Latest(Some(v)) => v.value.len() + 24,
        ClientResult::All(Some(v)) => versions_size(v),
        ClientResult::Scanned(rows) => rows.iter().map(|(k, v)| k.len() + v.value.len() + 24).sum(),
        ClientResult::Many(results) => results.iter().map(client_result_size).sum(),
        _ => 4,
    }
}

impl MessageSize for ClientFrame {
    fn size_bytes(&self) -> usize {
        const HDR: usize = 24;
        HDR + match self {
            ClientFrame::Request { op, .. } => match op {
                ClientOp::WriteLatest { key, value } | ClientOp::WriteAll { key, value } => {
                    key.len() + value.len()
                }
                ClientOp::ReadLatest { key } | ClientOp::ReadAll { key } => key.len(),
                ClientOp::ScanTable { dataset, table } => dataset.len() + table.len(),
                ClientOp::WriteMany { pairs } => pairs.iter().map(|(k, v)| k.len() + v.len()).sum(),
                ClientOp::ReadMany { keys } => keys.iter().map(|k| k.len()).sum(),
            },
            ClientFrame::Response { result, .. } => client_result_size(result),
        }
    }
}

impl MessageSize for SednaMsg {
    fn size_bytes(&self) -> usize {
        match self {
            SednaMsg::Coord(m) => m.size_bytes(),
            SednaMsg::Replica(m) => m.size_bytes(),
            SednaMsg::Client(m) => m.size_bytes(),
            SednaMsg::Control(_) => 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_roundtrips() {
        let m = SednaMsg::wrap(CoordMsg::Commit { term: 1, zxid: 2 });
        let back: Result<CoordMsg, _> = m.unwrap();
        assert!(matches!(back, Ok(CoordMsg::Commit { term: 1, zxid: 2 })));

        let m = SednaMsg::wrap(ReplicaOp::Read {
            req: RequestId(1),
            key: Key::from("k"),
            trace: TraceId(0),
        });
        assert!(Wrap::<ReplicaOp>::unwrap(m).is_ok());

        // Wrong projection returns the message intact.
        let m = SednaMsg::wrap(ReplicaOp::Read {
            req: RequestId(1),
            key: Key::from("k"),
            trace: TraceId(0),
        });
        let back: Result<CoordMsg, SednaMsg> = m.unwrap();
        assert!(matches!(back, Err(SednaMsg::Replica(_))));
    }

    #[test]
    fn data_messages_size_with_payload() {
        let w = SednaMsg::Replica(ReplicaOp::Write {
            req: RequestId(1),
            key: Key::from("test-000000000000000"),
            ts: Timestamp::ZERO,
            value: Value::from_bytes(vec![0u8; 20]),
            ctx: CausalContext::EMPTY,
            kind: WriteKind::Latest,
            trace: TraceId(7),
        });
        assert_eq!(w.size_bytes(), 32 + 20 + 20 + 16);
        let ack = SednaMsg::Replica(ReplicaOp::WriteAck {
            req: RequestId(1),
            ack: ReplicaWriteAck::Ok,
            apply_nanos: 0,
            lock_nanos: 0,
        });
        assert!(ack.size_bytes() < w.size_bytes());
    }

    #[test]
    fn batch_frames_amortize_the_header() {
        let one = ReplicaOp::Write {
            req: RequestId(1),
            key: Key::from("test-000000000000000"),
            ts: Timestamp::ZERO,
            value: Value::from_bytes(vec![0u8; 20]),
            ctx: CausalContext::EMPTY,
            kind: WriteKind::Latest,
            trace: TraceId(7),
        };
        let bare = one.size_bytes();
        let batch = ReplicaOp::Batch {
            ops: vec![one.clone(), one.clone(), one],
        };
        // One 32-byte frame header + 3 × (body + 8-byte sub-header).
        assert_eq!(batch.size_bytes(), 32 + 3 * (bare - 32 + 8));
        assert!(batch.size_bytes() < 3 * bare);
        let acks = ReplicaOp::AckBatch {
            acks: vec![
                ReplicaOp::WriteAck {
                    req: RequestId(1),
                    ack: ReplicaWriteAck::Ok,
                    apply_nanos: 0,
                    lock_nanos: 0,
                };
                3
            ],
        };
        assert_eq!(acks.size_bytes(), 32 + 3 * (4 + 8));
    }
}
