//! The cluster-management actor.
//!
//! The paper's node management (Sec. III-D) has joining nodes "ask for
//! virtual nodes" and failure handling rewrite "the data mapping
//! information stored in ZooKeeper". We centralize those map rewrites in
//! one *manager* component (itself stateless across restarts — everything
//! authoritative lives in the coordination service, and the ensemble keeps
//! it available), which:
//!
//! 1. bootstraps the namespace (`/sedna`, `/sedna/members`, `/sedna/ring`);
//! 2. polls the member list (ephemeral znodes) on its session lease — no
//!    watches, per Sec. III-E;
//! 3. on membership change, applies [`VNodeMap::join`]/[`VNodeMap::leave`]
//!    and CAS-writes the new map into `/sedna/ring`;
//! 4. sends `MigrateVNode` directives to the nodes that must acquire data;
//! 5. periodically reads the published per-node **imbalance rows**
//!    (Sec. III-B) and, when `max_score/mean_score` exceeds the configured
//!    trigger, moves the hot node's hottest vnodes to the coldest nodes —
//!    the load-driven rebalancing the imbalance table exists for.
//!
//! This is a deliberate, documented simplification of the paper's
//! decentralized claim protocol: the *outcome* (balanced incremental
//! assignment recorded in the coordination service) is identical, and the
//! manager itself is not a single point of failure for the data path —
//! reads and writes proceed on cached routing state while it is down.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use sedna_common::{NodeId, RequestId};
use sedna_coord::client::{SessionClient, SessionConfig, SessionEvent};
use sedna_coord::messages::{CoordError, CoordMsg, CoordOp, CoordReply};
use sedna_coord::tree::TreeError;
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_obs::journal::{EventJournal, EventKind};
use sedna_obs::registry::{Hist, Registry};
use sedna_ring::{Transfer, VNodeMap};

use crate::config::{paths, ClusterConfig};
use crate::messages::{ControlMsg, SednaMsg};

const T_POLL: TimerToken = TimerToken(0x3A_01);

/// The manager actor.
pub struct ClusterManager {
    cfg: ClusterConfig,
    session: SessionClient,
    /// Authoritative map (mirrors `/sedna/ring`).
    map: VNodeMap,
    /// Version of the ring znode for CAS writes; `None` until read/created.
    ring_version: Option<u64>,
    members_req: Option<RequestId>,
    ring_read_req: Option<RequestId>,
    ring_write_req: Option<RequestId>,
    bootstrap_req: Option<RequestId>,
    /// Transfers awaiting a successful ring publish.
    pending_directives: Vec<Transfer>,
    /// Members reflected in `map`.
    known: BTreeSet<NodeId>,
    /// Consecutive polls each known member has been absent from the member
    /// list; a leave fires only at `leave_debounce_polls` (rides out the
    /// ephemeral-znode blip when a restarted node's old session expires).
    absent_polls: BTreeMap<NodeId, u32>,
    /// Polls since the last imbalance check.
    polls_since_rebalance: u32,
    /// Outstanding imbalance-children request.
    imbalance_children_req: Option<RequestId>,
    /// Outstanding per-node imbalance-row reads.
    imbalance_row_reqs: HashMap<RequestId, NodeId>,
    /// Rows collected this round.
    imbalance_rows: BTreeMap<NodeId, crate::imbalance::ImbalanceRow>,
    /// Completed load-driven moves (metrics/tests).
    rebalance_moves: u64,
    registry: Arc<Registry>,
    /// Membership and rebalance decisions, as structured events.
    journal: Arc<EventJournal>,
    ping_rtt: Hist,
}

impl ClusterManager {
    /// Creates the manager.
    pub fn new(cfg: ClusterConfig) -> Self {
        let session = SessionClient::new(SessionConfig {
            replicas: cfg.coord_actors(),
            ping_interval_micros: cfg.ping_interval_micros,
            request_timeout_micros: 600_000,
        });
        let map = VNodeMap::new(cfg.partitioner.vnode_count(), cfg.quorum.n);
        let registry = Arc::new(Registry::new(cfg.metrics_enabled));
        let journal = Arc::new(EventJournal::new(cfg.journal_capacity));
        let ping_rtt = registry.hist("sedna_coord_ping_rtt_micros");
        ClusterManager {
            cfg,
            session,
            map,
            ring_version: None,
            members_req: None,
            ring_read_req: None,
            ring_write_req: None,
            bootstrap_req: None,
            pending_directives: Vec::new(),
            known: BTreeSet::new(),
            absent_polls: BTreeMap::new(),
            polls_since_rebalance: 0,
            imbalance_children_req: None,
            imbalance_row_reqs: HashMap::new(),
            imbalance_rows: BTreeMap::new(),
            rebalance_moves: 0,
            registry,
            journal,
            ping_rtt,
        }
    }

    /// The manager's metrics registry (shared handle).
    pub fn registry(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// The manager's event journal: membership changes and rebalance moves.
    pub fn journal(&self) -> Arc<EventJournal> {
        self.journal.clone()
    }

    /// Number of load-driven vnode moves performed so far.
    pub fn rebalance_moves(&self) -> u64 {
        self.rebalance_moves
    }

    /// The manager's current view of the assignment.
    pub fn map(&self) -> &VNodeMap {
        &self.map
    }

    fn send_coord(&self, ctx: &mut Ctx<'_, SednaMsg>, to: ActorId, msg: CoordMsg) {
        ctx.send(to, SednaMsg::Coord(msg));
    }

    fn request(&mut self, ctx: &mut Ctx<'_, SednaMsg>, op: CoordOp) -> Option<RequestId> {
        let now = ctx.now();
        let (req, to, msg) = self.session.request(op, now)?;
        self.send_coord(ctx, to, msg);
        Some(req)
    }

    fn bootstrap_namespace(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        // One batched create; existing nodes are skipped, so this is
        // idempotent across manager restarts.
        self.bootstrap_req = self.request(
            ctx,
            CoordOp::CreateMany {
                nodes: vec![
                    (paths::ROOT.into(), vec![]),
                    (paths::MEMBERS.into(), vec![]),
                    (paths::IMBALANCE.into(), vec![]),
                    (paths::RING.into(), self.map.encode()),
                ],
            },
        );
    }

    fn poll_members(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        if self.members_req.is_none() {
            self.members_req = self.request(
                ctx,
                CoordOp::GetChildren {
                    path: paths::MEMBERS.into(),
                    watch: false,
                },
            );
        }
    }

    fn read_ring(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        if self.ring_read_req.is_none() {
            self.ring_read_req = self.request(
                ctx,
                CoordOp::Get {
                    path: paths::RING.into(),
                    watch: false,
                },
            );
        }
    }

    fn publish_ring(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        if self.ring_write_req.is_some() {
            return;
        }
        self.ring_write_req = self.request(
            ctx,
            CoordOp::Set {
                path: paths::RING.into(),
                data: self.map.encode(),
                expected_version: self.ring_version,
            },
        );
    }

    /// Kicks off an imbalance check: list the published rows, then read
    /// each one; [`Self::maybe_rebalance`] runs once all replies landed.
    fn start_imbalance_check(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        if self.imbalance_children_req.is_some()
            || !self.imbalance_row_reqs.is_empty()
            || self.ring_write_req.is_some()
        {
            return; // a round (or a ring publish) is already in flight
        }
        self.imbalance_rows.clear();
        self.imbalance_children_req = self.request(
            ctx,
            CoordOp::GetChildren {
                path: paths::IMBALANCE.into(),
                watch: false,
            },
        );
    }

    /// Runs the rebalancer over the collected rows (Sec. III-B's hot→cold
    /// vnode moves), reusing the ring-publish + directive machinery.
    fn maybe_rebalance(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        use sedna_ring::ImbalanceTable;
        let mut table = ImbalanceTable::default();
        for (&node, row) in &self.imbalance_rows {
            if self.known.contains(&node) {
                table.update_row(node, row.load);
                table.update_hot_keys(node, row.hot_keys.clone());
            }
        }
        let Some(ratio) = table.imbalance_ratio() else {
            return;
        };
        if ratio <= self.cfg.rebalance_trigger_ratio {
            return;
        }
        let Some((hot, _)) = table.extremes() else {
            return;
        };
        let Some(hot_row) = self.imbalance_rows.get(&hot).cloned() else {
            return;
        };
        // Evolving score view so successive moves see each other.
        let mut scores: BTreeMap<NodeId, u64> = table.rows().map(|(n, l)| (n, l.score)).collect();
        let mut transfers = Vec::new();
        for &(vnode, vscore) in hot_row.hottest.iter() {
            if transfers.len() >= self.cfg.rebalance_max_moves {
                break;
            }
            // Coldest member that does not already hold this vnode.
            let Some((&cold, &cold_score)) = scores
                .iter()
                .filter(|(n, _)| **n != hot && !self.map.replicas(vnode).contains(n))
                .min_by_key(|(n, s)| (**s, **n))
            else {
                continue;
            };
            let hot_score = scores.get(&hot).copied().unwrap_or(0);
            // Move only real load, and only when it strictly narrows the
            // gap (a vnode hotter than the gap would just relocate the
            // hotspot).
            if vscore == 0 || cold_score + vscore >= hot_score {
                continue;
            }
            if let Some(t) = self.map.move_slot(vnode, hot, cold) {
                *scores.get_mut(&hot).expect("hot") -= vscore;
                *scores.get_mut(&cold).expect("cold") += vscore;
                self.journal.push(
                    ctx.now(),
                    EventKind::Rebalance {
                        vnode,
                        from: hot,
                        to: cold,
                    },
                );
                transfers.push(t);
            }
        }
        if !transfers.is_empty() {
            self.rebalance_moves += transfers.len() as u64;
            self.registry
                .counter("sedna_manager_rebalance_moves_total")
                .add(transfers.len() as u64);
            self.pending_directives.extend(transfers);
            self.publish_ring(ctx);
        }
    }

    /// Applies a membership diff to the map; queues migration directives.
    fn reconcile_members(&mut self, ctx: &mut Ctx<'_, SednaMsg>, live: BTreeSet<NodeId>) {
        let joined: Vec<NodeId> = live.difference(&self.known).copied().collect();
        // Debounced departures: a member leaves only after it has been
        // absent from `leave_debounce_polls` consecutive polls.
        let threshold = self.cfg.leave_debounce_polls.max(1);
        let mut left = Vec::new();
        for n in self.known.difference(&live).copied().collect::<Vec<_>>() {
            let polls = self.absent_polls.entry(n).or_insert(0);
            *polls += 1;
            if *polls >= threshold {
                left.push(n);
            }
        }
        // A member that reappeared (or finally left) resets its streak.
        self.absent_polls
            .retain(|n, _| !live.contains(n) && !left.contains(n));
        if joined.is_empty() && left.is_empty() {
            return;
        }
        let mut transfers = Vec::new();
        for n in left {
            // Heartbeat loss: treated as a crash — survivors are the copy
            // sources (Sec. III-D).
            transfers.extend(self.map.leave(n, false));
            self.known.remove(&n);
            self.registry.counter("sedna_manager_leaves_total").inc();
            self.journal.push(
                ctx.now(),
                EventKind::Membership {
                    node: n,
                    joined: false,
                },
            );
        }
        for n in joined {
            transfers.extend(self.map.join(n));
            self.known.insert(n);
            self.registry.counter("sedna_manager_joins_total").inc();
            self.journal.push(
                ctx.now(),
                EventKind::Membership {
                    node: n,
                    joined: true,
                },
            );
        }
        self.pending_directives.extend(transfers);
        self.publish_ring(ctx);
    }

    /// After a successful publish, tell the new owners to pull their data.
    fn flush_directives(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        for t in std::mem::take(&mut self.pending_directives) {
            // Only direct at live destinations.
            if !self.known.contains(&t.to) {
                continue;
            }
            ctx.send(
                self.cfg.node_actor(t.to),
                SednaMsg::Control(ControlMsg::MigrateVNode {
                    vnode: t.vnode,
                    from: t.copy_from,
                }),
            );
            // Cleanup of the vacated copy is destination-driven: the new
            // owner confirms with `TransferComplete` once the data is
            // installed, and the source drops only then (never before the
            // rows exist elsewhere).
        }
    }

    fn handle_coord(&mut self, msg: CoordMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        let (event, retry) = self.session.on_message(msg);
        if let Some((to, m)) = retry {
            self.send_coord(ctx, to, m);
        }
        match event {
            Some(SessionEvent::Opened(_)) => {
                self.bootstrap_namespace(ctx);
            }
            Some(SessionEvent::Expired) => {
                let now = ctx.now();
                let (to, m) = self.session.open(now);
                self.send_coord(ctx, to, m);
            }
            Some(SessionEvent::Reply { req_id, result }) => {
                self.handle_reply(req_id, result, ctx);
            }
            Some(SessionEvent::Pong { sent_at }) => {
                self.ping_rtt.record(ctx.now().saturating_sub(sent_at));
            }
            _ => {}
        }
    }

    fn handle_reply(
        &mut self,
        req_id: RequestId,
        result: Result<CoordReply, CoordError>,
        ctx: &mut Ctx<'_, SednaMsg>,
    ) {
        if Some(req_id) == self.bootstrap_req {
            self.bootstrap_req = None;
            // Whether we created the namespace or found it, adopt the
            // current ring state before acting.
            self.read_ring(ctx);
            return;
        }
        if Some(req_id) == self.ring_read_req {
            self.ring_read_req = None;
            if let Ok(CoordReply::Data { data, version, .. }) = result {
                if let Some(map) = VNodeMap::decode(&data) {
                    self.ring_version = Some(version);
                    self.known = map.members().collect();
                    self.map = map;
                }
            }
            self.poll_members(ctx);
            return;
        }
        if Some(req_id) == self.ring_write_req {
            self.ring_write_req = None;
            match result {
                Ok(CoordReply::SetDone { version }) => {
                    self.ring_version = Some(version);
                    self.flush_directives(ctx);
                }
                Err(CoordError::Tree(TreeError::BadVersion { .. })) => {
                    // Lost a CAS race (manager restart overlap): reload and
                    // reconcile again on the next poll.
                    self.pending_directives.clear();
                    self.read_ring(ctx);
                }
                _ => {
                    // Transient failure: retry on next poll.
                    self.publish_ring(ctx);
                }
            }
            return;
        }
        if Some(req_id) == self.members_req {
            self.members_req = None;
            if let Ok(CoordReply::Children(names)) = result {
                let live: BTreeSet<NodeId> = names
                    .iter()
                    .filter_map(|n| paths::parse_member(n))
                    .collect();
                self.reconcile_members(ctx, live);
            }
            return;
        }
        if Some(req_id) == self.imbalance_children_req {
            self.imbalance_children_req = None;
            if let Ok(CoordReply::Children(names)) = result {
                for node in names.iter().filter_map(|n| paths::parse_member(n)) {
                    if !self.known.contains(&node) {
                        continue; // departed node's stale row
                    }
                    if let Some(req) = self.request(
                        ctx,
                        CoordOp::Get {
                            path: paths::imbalance(node),
                            watch: false,
                        },
                    ) {
                        self.imbalance_row_reqs.insert(req, node);
                    }
                }
                if self.imbalance_row_reqs.is_empty() {
                    // nothing published yet
                }
            }
            return;
        }
        if let Some(node) = self.imbalance_row_reqs.remove(&req_id) {
            if let Ok(CoordReply::Data { data, .. }) = result {
                if let Some(row) = crate::imbalance::ImbalanceRow::decode(&data) {
                    self.imbalance_rows.insert(node, row);
                }
            }
            if self.imbalance_row_reqs.is_empty() {
                self.maybe_rebalance(ctx);
            }
        }
    }
}

impl Actor for ClusterManager {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        let (to, m) = self.session.open(now);
        self.send_coord(ctx, to, m);
        ctx.set_timer(T_POLL, self.cfg.manager_poll_micros);
    }

    fn on_message(&mut self, _from: ActorId, msg: SednaMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        if let SednaMsg::Coord(m) = msg {
            self.handle_coord(m, ctx);
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        if token == T_POLL {
            // Fail over coordination requests whose replica went silent.
            for (old, (to, m)) in self.session.on_tick(ctx.now()) {
                let new_id = match &m {
                    CoordMsg::Request { req_id, .. } => *req_id,
                    _ => RequestId(0),
                };
                for slot in [
                    &mut self.members_req,
                    &mut self.ring_read_req,
                    &mut self.ring_write_req,
                    &mut self.bootstrap_req,
                    &mut self.imbalance_children_req,
                ] {
                    if *slot == Some(old) {
                        *slot = Some(new_id);
                    }
                }
                if let Some(node) = self.imbalance_row_reqs.remove(&old) {
                    self.imbalance_row_reqs.insert(new_id, node);
                }
                self.send_coord(ctx, to, m);
            }
            if self.session.session().is_some() && self.ring_version.is_some() {
                self.poll_members(ctx);
                if let Some((to, m)) = self.session.ping(ctx.now()) {
                    self.send_coord(ctx, to, m);
                }
                self.polls_since_rebalance += 1;
                if self.cfg.stats_publish_interval_micros > 0
                    && self.polls_since_rebalance >= self.cfg.rebalance_check_every
                {
                    self.polls_since_rebalance = 0;
                    self.start_imbalance_check(ctx);
                }
            } else if self.session.session().is_some() && self.bootstrap_req.is_none() {
                // Session alive but namespace state unknown (e.g. bootstrap
                // reply lost): re-run the idempotent bootstrap.
                self.bootstrap_namespace(ctx);
            }
            ctx.set_timer(T_POLL, self.cfg.manager_poll_micros);
        }
    }
}
