//! Prober-side divergence tracking: the causal-plane half of the
//! observatory.
//!
//! Anti-entropy (the Merkle sync protocol in [`crate::node`]) *repairs*
//! divergence but, before this module, said nothing about it: a healthy
//! probe ended in silence and an unhealthy one only showed up indirectly
//! as shipped rows. The tracker turns every sync observation into
//! telemetry:
//!
//! * a **replica root matrix** — for each owned vnode, this node's own
//!   Merkle root plus the last root observed from every peer replica
//!   (learned from `SyncRootMatch` acks on agreement and reconstructed
//!   from `SyncLeaves` via [`MerkleTree::from_leaves`] on disagreement);
//! * **mismatch episodes** — a `(vnode, peer)` pair entering root
//!   disagreement opens an episode; the first agreeing observation closes
//!   it and yields its duration, the *time-to-merkle-convergence* sample;
//! * **open-mismatch ages** — how long the currently-divergent pairs have
//!   been divergent, the signal behind the `divergence_age` SLO.
//!
//! The tracker is plain bookkeeping (no locks, no I/O): the node actor
//! owns one and publishes [`DivergenceSnapshot`]s through its telemetry
//! handle on the stats tick, which is what `/divergence` and the nemesis
//! run report render.
//!
//! [`MerkleTree::from_leaves`]: sedna_replication::MerkleTree::from_leaves

use std::collections::HashMap;

use sedna_common::time::Micros;
use sedna_common::{NodeId, VNodeId};

/// Completed episodes retained per node (oldest evicted).
pub const EPISODE_CAP: usize = 256;

/// Last observation of one peer's root for one vnode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PeerState {
    root: u64,
    observed_at: Micros,
    /// When the current (still-open) mismatch began, if any.
    mismatch_since: Option<Micros>,
}

/// One closed divergence episode: a `(vnode, peer)` pair that disagreed
/// with this node's root and later converged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DivergenceEpisode {
    /// The vnode whose replicas disagreed.
    pub vnode: VNodeId,
    /// The disagreeing peer.
    pub peer: NodeId,
    /// First mismatching observation.
    pub started: Micros,
    /// First matching observation after the mismatch run.
    pub resolved: Micros,
}

impl DivergenceEpisode {
    /// Time from first mismatch to convergence.
    pub fn duration(&self) -> Micros {
        self.resolved.saturating_sub(self.started)
    }
}

/// One peer's entry in the published root matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerRootRow {
    /// The peer replica.
    pub peer: NodeId,
    /// Its last observed Merkle root for the vnode.
    pub root: u64,
    /// When that root was observed.
    pub observed_at: Micros,
    /// When the currently-open mismatch began (`None` = in agreement).
    pub mismatch_since: Option<Micros>,
}

/// One vnode's row in the published root matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DivergenceRow {
    /// The vnode.
    pub vnode: VNodeId,
    /// This node's own root at its last probe.
    pub self_root: u64,
    /// When the own root was computed.
    pub self_at: Micros,
    /// Every peer replica this node has sync-observed, by node id.
    pub peers: Vec<PeerRootRow>,
}

/// Point-in-time view of the tracker, published via node telemetry.
#[derive(Clone, Debug, Default)]
pub struct DivergenceSnapshot {
    /// Snapshot time.
    pub at: Micros,
    /// The replica root matrix, by vnode.
    pub rows: Vec<DivergenceRow>,
    /// Currently-open `(vnode, peer)` mismatches.
    pub open: u64,
    /// Age of the oldest open mismatch at snapshot time (0 when none).
    pub max_age_micros: u64,
    /// Episodes ever opened (closed + still open).
    pub episodes_total: u64,
    /// Retained closed episodes, oldest first (bounded by
    /// [`EPISODE_CAP`]; older ones are dropped, not merged).
    pub episodes: Vec<DivergenceEpisode>,
}

/// The per-node tracker. Owned by the node actor; mutated from sync
/// handlers, snapshotted on the stats tick.
#[derive(Default)]
pub struct DivergenceTracker {
    self_roots: HashMap<VNodeId, (u64, Micros)>,
    peers: HashMap<(VNodeId, NodeId), PeerState>,
    episodes: Vec<DivergenceEpisode>,
    episodes_opened: u64,
}

impl DivergenceTracker {
    /// Records this node's own root for `vnode` (computed when probing or
    /// answering a probe).
    pub fn note_self_root(&mut self, vnode: VNodeId, root: u64, now: Micros) {
        self.self_roots.insert(vnode, (root, now));
    }

    /// Records an observation of `peer`'s root for `vnode`; `agrees` says
    /// whether it matched this node's root at observation time. Returns
    /// the episode duration when this observation *closes* an open
    /// mismatch — the caller records it into the convergence histogram.
    pub fn observe_peer(
        &mut self,
        vnode: VNodeId,
        peer: NodeId,
        root: u64,
        agrees: bool,
        now: Micros,
    ) -> Option<Micros> {
        let st = self.peers.entry((vnode, peer)).or_insert(PeerState {
            root,
            observed_at: now,
            mismatch_since: None,
        });
        st.root = root;
        st.observed_at = now;
        if agrees {
            let since = st.mismatch_since.take()?;
            let ep = DivergenceEpisode {
                vnode,
                peer,
                started: since,
                resolved: now,
            };
            if self.episodes.len() == EPISODE_CAP {
                self.episodes.remove(0);
            }
            self.episodes.push(ep);
            Some(ep.duration())
        } else {
            if st.mismatch_since.is_none() {
                st.mismatch_since = Some(now);
                self.episodes_opened += 1;
            }
            None
        }
    }

    /// Drops state for vnodes this node no longer owns (ring change).
    /// Open mismatches for dropped vnodes close unrecorded — the pair is
    /// no longer this node's to converge.
    pub fn retain_vnodes(&mut self, owned: &[VNodeId]) {
        self.self_roots.retain(|v, _| owned.contains(v));
        self.peers.retain(|(v, _), _| owned.contains(v));
    }

    /// Currently-open `(vnode, peer)` mismatches.
    pub fn open_mismatches(&self) -> u64 {
        self.peers
            .values()
            .filter(|p| p.mismatch_since.is_some())
            .count() as u64
    }

    /// Age of the oldest open mismatch (0 when none).
    pub fn max_open_age(&self, now: Micros) -> Micros {
        self.peers
            .values()
            .filter_map(|p| p.mismatch_since)
            .map(|since| now.saturating_sub(since))
            .max()
            .unwrap_or(0)
    }

    /// Episodes ever opened.
    pub fn episodes_total(&self) -> u64 {
        self.episodes_opened
    }

    /// Builds the publishable snapshot: matrix rows sorted by vnode,
    /// peers sorted by node id.
    pub fn snapshot(&self, now: Micros) -> DivergenceSnapshot {
        let mut rows: Vec<DivergenceRow> = self
            .self_roots
            .iter()
            .map(|(&vnode, &(self_root, self_at))| {
                let mut peers: Vec<PeerRootRow> = self
                    .peers
                    .iter()
                    .filter(|((v, _), _)| *v == vnode)
                    .map(|(&(_, peer), st)| PeerRootRow {
                        peer,
                        root: st.root,
                        observed_at: st.observed_at,
                        mismatch_since: st.mismatch_since,
                    })
                    .collect();
                peers.sort_by_key(|p| p.peer);
                DivergenceRow {
                    vnode,
                    self_root,
                    self_at,
                    peers,
                }
            })
            .collect();
        rows.sort_by_key(|r| r.vnode);
        DivergenceSnapshot {
            at: now,
            rows,
            open: self.open_mismatches(),
            max_age_micros: self.max_open_age(now),
            episodes_total: self.episodes_opened,
            episodes: self.episodes.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: VNodeId = VNodeId(3);
    const P: NodeId = NodeId(7);

    #[test]
    fn match_without_prior_mismatch_closes_nothing() {
        let mut t = DivergenceTracker::default();
        t.note_self_root(V, 42, 10);
        assert_eq!(t.observe_peer(V, P, 42, true, 10), None);
        assert_eq!(t.open_mismatches(), 0);
        let snap = t.snapshot(20);
        assert_eq!(snap.rows.len(), 1);
        assert_eq!(snap.rows[0].peers[0].root, 42);
        assert_eq!(snap.rows[0].peers[0].mismatch_since, None);
        assert_eq!(snap.max_age_micros, 0);
    }

    #[test]
    fn mismatch_opens_once_and_match_closes_with_duration() {
        let mut t = DivergenceTracker::default();
        t.note_self_root(V, 1, 100);
        assert_eq!(t.observe_peer(V, P, 9, false, 100), None);
        // Repeated mismatching observations extend, not reopen.
        assert_eq!(t.observe_peer(V, P, 8, false, 400), None);
        assert_eq!(t.open_mismatches(), 1);
        assert_eq!(t.max_open_age(600), 500);
        assert_eq!(t.episodes_total(), 1);
        // Convergence: duration measured from the *first* mismatch.
        assert_eq!(t.observe_peer(V, P, 1, true, 900), Some(800));
        assert_eq!(t.open_mismatches(), 0);
        let snap = t.snapshot(1000);
        assert_eq!(snap.episodes.len(), 1);
        assert_eq!(snap.episodes[0].duration(), 800);
        assert_eq!(snap.episodes_total, 1);
    }

    #[test]
    fn pairs_are_tracked_independently() {
        let mut t = DivergenceTracker::default();
        let q = NodeId(8);
        t.note_self_root(V, 5, 0);
        t.observe_peer(V, P, 6, false, 10);
        t.observe_peer(V, q, 5, true, 10);
        assert_eq!(t.open_mismatches(), 1);
        let snap = t.snapshot(50);
        assert_eq!(snap.rows[0].peers.len(), 2);
        assert_eq!(snap.open, 1);
        assert_eq!(snap.max_age_micros, 40);
    }

    #[test]
    fn episode_log_is_bounded() {
        let mut t = DivergenceTracker::default();
        for i in 0..(EPISODE_CAP as u64 + 10) {
            t.observe_peer(V, P, 9, false, i * 10);
            t.observe_peer(V, P, 1, true, i * 10 + 5);
        }
        assert_eq!(t.snapshot(0).episodes.len(), EPISODE_CAP);
        assert_eq!(t.episodes_total(), EPISODE_CAP as u64 + 10);
    }

    #[test]
    fn ring_change_drops_departed_vnodes() {
        let mut t = DivergenceTracker::default();
        t.note_self_root(V, 1, 0);
        t.observe_peer(V, P, 2, false, 0);
        t.retain_vnodes(&[]);
        assert_eq!(t.open_mismatches(), 0);
        assert!(t.snapshot(1).rows.is_empty());
    }
}
