//! Cluster-level fault vocabulary.
//!
//! [`ClusterFault`] names faults in deployment terms ([`NodeId`]s, WAL
//! recovery semantics) rather than simulator terms ([`sedna_net::fault`]
//! works on raw `ActorId`s). [`crate::cluster::SimCluster::apply_fault`]
//! translates each variant onto the simulator, and
//! [`crate::cluster::SimCluster::run_schedule`] drives a whole timed
//! schedule. The `sedna-check` nemesis generates schedules in this
//! vocabulary, and its shrinker prints minimal reproducers as literal
//! `ScheduledFault` lists — so every variant renders as a copy-pasteable
//! Rust expression (`Debug` output is valid constructor syntax).

use sedna_common::time::Micros;
use sedna_common::NodeId;

/// How a crashed data node comes back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartKind {
    /// Same process resumes (the actor object and its in-memory store are
    /// kept). Models a long GC pause or network wedge, not a real crash.
    Preserve,
    /// A fresh node with an empty store and no persistence — the paper's
    /// baseline memcached behaviour where a restart loses everything and
    /// anti-entropy must re-fill the node.
    Empty,
    /// A fresh node that recovers its store from its `PersistEngine`
    /// (WAL replay and/or snapshot load) before serving. Exercises the
    /// crash-recovery path, including torn-tail WAL repair.
    Recover,
}

/// One injectable fault, in deployment vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterFault {
    /// Stop a data node: messages and timers to it are dropped from now
    /// on. With `torn_wal`, the node's WAL (if any) additionally gets a
    /// torn half-written frame appended at the crash instant — the
    /// power-loss-mid-`append` case recovery must repair.
    Crash {
        /// Which node.
        node: NodeId,
        /// Tear the WAL tail at the crash instant.
        torn_wal: bool,
    },
    /// Bring a crashed node back (see [`RestartKind`]).
    Restart {
        /// Which node.
        node: NodeId,
        /// With which memory/durability semantics.
        kind: RestartKind,
    },
    /// Cut the link between two data nodes (both directions). Other links
    /// are untouched.
    PartitionPair {
        /// One side.
        a: NodeId,
        /// Other side.
        b: NodeId,
    },
    /// Heal the link between two data nodes.
    HealPair {
        /// One side.
        a: NodeId,
        /// Other side.
        b: NodeId,
    },
    /// Cut every link between the `left` and `right` data-node groups
    /// (links within each group keep working).
    PartitionHalves {
        /// One group.
        left: Vec<NodeId>,
        /// The other group.
        right: Vec<NodeId>,
    },
    /// Remove every partition installed so far.
    HealAll,
    /// Set the global link-loss probability to `permille`/1000 (an
    /// integer so schedules stay `Eq` and render exactly). `0` restores a
    /// loss-free network.
    SetLinkLossPermille(u32),
}

/// A fault pinned to a virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Virtual time (µs) at which to apply the fault.
    pub at: Micros,
    /// The fault.
    pub fault: ClusterFault,
}

impl ScheduledFault {
    /// Convenience constructor.
    pub fn new(at: Micros, fault: ClusterFault) -> Self {
        ScheduledFault { at, fault }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_output_is_constructor_syntax() {
        // The shrinker prints schedules via Debug; keep that output
        // copy-pasteable as Rust source.
        let f = ScheduledFault::new(
            1_500_000,
            ClusterFault::Crash {
                node: NodeId(2),
                torn_wal: true,
            },
        );
        let s = format!("{f:?}");
        assert!(s.contains("Crash"), "{s}");
        assert!(s.contains("torn_wal: true"), "{s}");
        let halves = ClusterFault::PartitionHalves {
            left: vec![NodeId(0)],
            right: vec![NodeId(1), NodeId(2)],
        };
        assert!(format!("{halves:?}").contains("left"), "{halves:?}");
    }
}
