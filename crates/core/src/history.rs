//! Per-client operation history capture.
//!
//! A harness attaches a [`ClientHistory`] sink to a
//! [`ClientCore`](crate::client::ClientCore); the client then records an
//! [`HistoryEvent::Invoke`] when a single-key op is issued and an
//! [`HistoryEvent::Complete`] when its quorum decision lands. The
//! `sedna-check` history checker consumes the combined event log to verify
//! the session guarantees Sedna claims (monotonic reads and
//! read-your-writes on clean quorum reads, no lost acknowledged writes).
//! Without a sink attached, nothing is recorded and nothing is paid.
//!
//! Events reuse the PR-2 trace plumbing: every `Invoke` carries the op's
//! [`TraceId`], so a checker finding can be joined against span trees and
//! journal events for the same op.

use std::sync::Arc;

use parking_lot::Mutex;
use sedna_common::time::Micros;
use sedna_common::{CausalContext, Key, NodeId, Timestamp, TraceId};

/// What kind of single-key operation was invoked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HistoryOp {
    /// A `write_latest`/`write_all`, stamped `ts` at issue time.
    Write {
        /// Key written.
        key: Key,
        /// The timestamp the write carries; `ts` doubles as the write's
        /// *dot* — its globally unique identity for the checker.
        ts: Timestamp,
        /// Causal context the write carried (the dots the client had
        /// observed for this key); lets the checker treat a causal
        /// overwrite of an acked dot as safe rather than lost.
        ctx: CausalContext,
    },
    /// A `read_latest`/`read_all`.
    Read {
        /// Key read.
        key: Key,
    },
}

/// How a recorded operation completed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HistoryOutcome {
    /// Write acknowledged by a full W-quorum.
    WriteOk,
    /// Write lost to a newer timestamp (still a decided outcome).
    WriteOutdated,
    /// Write failed (too few acks before the deadline).
    WriteFailed,
    /// Read completed. `latest` is the freshest version returned (`None` =
    /// not found); `degraded` is true when the quorum did not reach clean
    /// R-agreement — a merged best-effort answer, which the checker must
    /// not hold to clean-read guarantees.
    Read {
        /// Freshest `(ts)` returned, if any.
        latest: Option<Timestamp>,
        /// Every sibling dot the read returned (equals `[latest]` when the
        /// row had a single version). The checker uses these for
        /// writes-follow-reads and lost-write witnessing.
        dots: Vec<Timestamp>,
        /// True when the answer was assembled from an inconsistent or
        /// failed quorum.
        degraded: bool,
    },
}

/// One history event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HistoryEvent {
    /// An operation was issued.
    Invoke {
        /// The issuing client's timestamp origin (unique per client).
        client: NodeId,
        /// Client-local op id; joins with the matching `Complete`.
        op_id: u64,
        /// Trace id (joins with span trees and journal events).
        trace: TraceId,
        /// The operation.
        op: HistoryOp,
        /// Client-observed invoke time, µs.
        at: Micros,
    },
    /// An operation completed.
    Complete {
        /// The issuing client's timestamp origin.
        client: NodeId,
        /// Client-local op id of the matching `Invoke`.
        op_id: u64,
        /// The outcome.
        outcome: HistoryOutcome,
        /// Client-observed completion time, µs.
        at: Micros,
    },
}

/// A shared, append-only event log. One per client or one per run — the
/// events are self-identifying via their `client` field either way.
#[derive(Default)]
pub struct ClientHistory {
    events: Mutex<Vec<HistoryEvent>>,
}

impl ClientHistory {
    /// Creates an empty history behind an [`Arc`], ready to attach.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Appends one event.
    pub fn push(&self, event: HistoryEvent) {
        self.events.lock().push(event);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events in record order.
    pub fn events(&self) -> Vec<HistoryEvent> {
        self.events.lock().clone()
    }
}
