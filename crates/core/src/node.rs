//! The Sedna data-node actor.
//!
//! Each server runs "nearly the same components" (Sec. III-A): the local
//! memory store, the distributed part (a coordination-service session for
//! membership + routing state), the replica service answering data-path
//! requests, the trigger scanner, and the persistency engine. This actor is
//! that composition:
//!
//! * **Join** (Sec. III-D): open a session, register the ephemeral member
//!   znode, fetch the vnode map; the cluster manager notices the new member
//!   and reassigns vnodes; migration directives arrive as
//!   [`ControlMsg::MigrateVNode`] and are satisfied with vnode bulk
//!   transfers.
//! * **Serve**: timestamped replica writes/reads against the local store,
//!   refusing keys outside the vnodes this node owns (stale client routing
//!   gets a `Refused` and refreshes).
//! * **Failure** (Sec. III-D): a crashed node simply stops pinging — the
//!   ephemeral znode expires, the manager re-covers its vnodes, and *read
//!   recovery* repairs data lazily.
//! * **Triggers** (Sec. IV): a scan timer sweeps the Dirty/Monitors
//!   columns; only the **primary** (r1) of a key's vnode dispatches it, so
//!   one logical change fires user code once, not once per replica. Emitted
//!   results are written back through the normal quorum write path.

use std::sync::Arc;

use sedna_common::time::{Micros, Timestamp};
use sedna_common::{CausalContext, Key, NodeId, RequestId, TraceId, VNodeId};
use sedna_coord::client::{LeaseCache, LeaseConfig, SessionClient, SessionConfig, SessionEvent};
use sedna_coord::messages::{CoordMsg, CoordOp, CoordReply};
use sedna_memstore::{MemStore, SpaceSaving, StoreConfig, WriteOutcome};
use sedna_net::actor::{Actor, ActorId, Ctx, MessageSize, TimerToken};
use sedna_obs::journal::EventJournal;
use sedna_obs::registry::{Hist, MetricsSnapshot, Registry};
use sedna_obs::AlertEngine;
use sedna_persist::PersistEngine;
use sedna_replication::{row_hash, MerkleTree};
use sedna_ring::{HotKeyRow, VNodeMap, VNodeStats};
use sedna_triggers::{JobSpec, TriggerEngine, TriggerSink, WriteMode};

use crate::client::QuorumWriter;
use crate::config::{paths, ClusterConfig};
use crate::divergence::DivergenceTracker;
use crate::messages::{
    ControlMsg, ReplicaOp, ReplicaReadReply, ReplicaWriteAck, SednaMsg, WriteKind,
};

const T_TICK: TimerToken = TimerToken(0xDA_01);
const T_SCAN: TimerToken = TimerToken(0xDA_02);
const T_PERSIST: TimerToken = TimerToken(0xDA_03);
const T_STATS: TimerToken = TimerToken(0xDA_04);
const T_SYNC: TimerToken = TimerToken(0xDA_05);

/// Collects trigger emits during a scan; the node then routes them through
/// quorum writes.
#[derive(Default)]
struct BufferSink {
    writes: parking_lot::Mutex<Vec<(Key, sedna_common::Value, WriteMode)>>,
}

impl TriggerSink for BufferSink {
    fn apply(&self, key: &Key, value: sedna_common::Value, mode: WriteMode) {
        self.writes.lock().push((key.clone(), value, mode));
    }
}

/// Per-node operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Anti-entropy digest probes sent.
    pub sync_probes: u64,
    /// Anti-entropy rounds that found divergence and exchanged rows.
    pub sync_exchanges: u64,
    /// Probes answered (or acked back) "roots match" — the healthy
    /// outcome, now explicit on the wire (`SyncRootMatch`).
    pub sync_root_matches: u64,
    /// Anti-entropy leaf-hash exchanges (round two of the Merkle protocol).
    pub sync_leaf_exchanges: u64,
    /// Rows shipped to peers during anti-entropy repair.
    pub sync_rows_shipped: u64,
    /// Modelled wire bytes of `SyncRows` frames shipped to peers.
    pub sync_bytes_shipped: u64,
    /// Rows whose local state changed by merging a peer's anti-entropy rows.
    pub sync_rows_merged: u64,
    /// Replica writes applied.
    pub writes: u64,
    /// Replica writes answered `outdated`.
    pub outdated: u64,
    /// Replica reads served.
    pub reads: u64,
    /// Requests refused for lack of ownership.
    pub refused: u64,
    /// Repair pushes merged.
    pub pushes: u64,
    /// VNode transfers served (as source).
    pub transfers_out: u64,
    /// VNode transfers installed (as destination).
    pub transfers_in: u64,
    /// Trigger emits written back to the cluster.
    pub trigger_emits: u64,
}

/// The data-node actor.
pub struct SednaNode {
    cfg: ClusterConfig,
    node_id: NodeId,
    store: Arc<MemStore>,
    session: SessionClient,
    ring: Option<VNodeMap>,
    ring_req: Option<RequestId>,
    member_req: Option<RequestId>,
    member_registered: bool,
    stats_req: Option<(RequestId, bool)>,
    imbalance_created: bool,
    /// Round-robin cursor over owned vnodes for anti-entropy.
    sync_cursor: usize,
    lease: LeaseCache,
    lease_req: Option<RequestId>,
    engine: TriggerEngine,
    emit_writer: QuorumWriter,
    next_emit_op: u64,
    persist: Option<PersistEngine>,
    vnode_stats: Vec<VNodeStats>,
    /// One Space-Saving sketch per vnode: which keys make the vnode hot.
    hot_sketches: Vec<SpaceSaving>,
    /// Live per-vnode/hot-key view shared with the admin surface.
    telemetry: Arc<crate::admin::NodeTelemetry>,
    /// Causal-plane bookkeeping: replica root matrix + mismatch episodes.
    divergence: DivergenceTracker,
    /// Cluster-shared SLO engine (when the cluster wires one in); the node
    /// feeds divergence ages and write-conflict samples and triggers
    /// evaluations from its stats tick.
    alerts: Option<Arc<AlertEngine>>,
    last_ts: (Micros, u32),
    last_ping: Micros,
    last_lease_check: Micros,
    stats: NodeStats,
    obs: NodeObs,
}

/// Node-side observability: a per-node registry whose gauges mirror the
/// operation counters and store statistics, a shard-lock hold-time
/// histogram fed by every apply, and a bounded event journal. The `Arc`
/// handles are cloneable before the actor moves into a runtime, which is
/// how [`crate::cluster::ThreadCluster`] keeps merge access to metrics of
/// actors it no longer owns.
struct NodeObs {
    registry: Arc<Registry>,
    journal: Arc<EventJournal>,
    /// Shard-lock hold time per store apply (nanoseconds, wall clock).
    apply_hist: Hist,
    /// Coordination heartbeat round-trip time (µs, virtual clock).
    ping_rtt: Hist,
    /// Time from first observed Merkle root mismatch to convergence, µs.
    sync_convergence: Hist,
    /// Diff-descent depth per probe: 1 = roots matched, 2 = leaves
    /// exchanged but no differing bucket, 3 = rows shipped.
    sync_descent: Hist,
}

impl NodeObs {
    fn new(cfg: &ClusterConfig) -> NodeObs {
        let registry = Arc::new(Registry::new(cfg.metrics_enabled));
        let apply_hist = registry.hist("sedna_node_apply_nanos");
        let ping_rtt = registry.hist("sedna_coord_ping_rtt_micros");
        let sync_convergence = registry.hist("sedna_sync_convergence_micros");
        let sync_descent = registry.hist("sedna_sync_descent_depth");
        NodeObs {
            registry,
            journal: Arc::new(EventJournal::new(cfg.journal_capacity)),
            apply_hist,
            ping_rtt,
            sync_convergence,
            sync_descent,
        }
    }
}

impl SednaNode {
    /// Creates the node. `persist` is pre-built so deployments control the
    /// data directory.
    pub fn new(cfg: ClusterConfig, node_id: NodeId, persist: Option<PersistEngine>) -> Self {
        let store = Arc::new(MemStore::new(StoreConfig {
            shards: 16,
            memory_budget: cfg.memory_budget,
            resolution: cfg.resolution.clone(),
            legacy_timestamps: cfg.legacy_timestamps,
        }));
        if let Some(engine) = &persist {
            // Boot-time recovery (snapshot + WAL replay).
            let _ = engine.recover(&store);
        }
        let session = SessionClient::new(SessionConfig {
            replicas: cfg.coord_actors(),
            ping_interval_micros: cfg.ping_interval_micros,
            request_timeout_micros: 600_000,
        });
        let vnode_stats = vec![VNodeStats::default(); cfg.partitioner.vnode_count() as usize];
        let hot_sketches =
            vec![SpaceSaving::new(cfg.hot_key_capacity); cfg.partitioner.vnode_count() as usize];
        let obs = NodeObs::new(&cfg);
        SednaNode {
            cfg,
            node_id,
            store,
            session,
            ring: None,
            ring_req: None,
            member_req: None,
            member_registered: false,
            stats_req: None,
            imbalance_created: false,
            sync_cursor: 0,
            lease: LeaseCache::new(LeaseConfig::default()),
            lease_req: None,
            engine: TriggerEngine::new(),
            emit_writer: QuorumWriter::default(),
            next_emit_op: 0,
            persist,
            vnode_stats,
            hot_sketches,
            telemetry: Arc::new(crate::admin::NodeTelemetry::default()),
            divergence: DivergenceTracker::default(),
            alerts: None,
            last_ts: (0, 0),
            last_ping: 0,
            last_lease_check: 0,
            stats: NodeStats::default(),
            obs,
        }
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node_id
    }

    /// The local store (inspection).
    pub fn store(&self) -> &MemStore {
        &self.store
    }

    /// The persistence engine, when one is attached (fault injection).
    pub fn persist(&self) -> Option<&PersistEngine> {
        self.persist.as_ref()
    }

    /// The cached vnode map, if loaded.
    pub fn ring(&self) -> Option<&VNodeMap> {
        self.ring.as_ref()
    }

    /// True once routing state is available.
    pub fn is_ready(&self) -> bool {
        self.ring.is_some()
    }

    /// Operation counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Point-in-time divergence view (replica root matrix + episodes).
    pub fn divergence_snapshot(&self, now: Micros) -> crate::divergence::DivergenceSnapshot {
        self.divergence.snapshot(now)
    }

    /// Local per-vnode statistics (feeds the imbalance table).
    pub fn vnode_stats(&self) -> &[VNodeStats] {
        &self.vnode_stats
    }

    /// Every monitored hot key across this node's vnodes, hottest first.
    /// The published imbalance row carries the top [`crate::imbalance::TOP_K`]
    /// of these; the admin surface exposes the full list.
    pub fn hot_keys(&self) -> Vec<HotKeyRow> {
        let mut rows: Vec<HotKeyRow> = Vec::new();
        for (i, sketch) in self.hot_sketches.iter().enumerate() {
            for hk in sketch.top(sketch.capacity()) {
                rows.push(HotKeyRow {
                    vnode: sedna_common::VNodeId(i as u32),
                    key: hk.key,
                    count: hk.count,
                });
            }
        }
        rows.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.vnode.cmp(&b.vnode))
                .then_with(|| a.key.cmp(&b.key))
        });
        rows
    }

    /// This node's shared telemetry handle (cloneable before the actor
    /// moves into a runtime, like [`SednaNode::registry`]).
    pub fn telemetry(&self) -> Arc<crate::admin::NodeTelemetry> {
        self.telemetry.clone()
    }

    /// Attaches the cluster-shared SLO engine. Called by the cluster
    /// builders before the actor moves into a runtime.
    pub fn set_alert_engine(&mut self, engine: Arc<AlertEngine>) {
        self.alerts = Some(engine);
    }

    /// This node's metrics registry (shared handle; survives the actor
    /// moving into a runtime).
    pub fn registry(&self) -> Arc<Registry> {
        self.obs.registry.clone()
    }

    /// This node's event journal (shared handle).
    pub fn journal(&self) -> Arc<EventJournal> {
        self.obs.journal.clone()
    }

    /// Point-in-time metrics with the mirrored gauges refreshed first, so
    /// callers that never wait for a stats tick (tests, the REPL) still see
    /// current store/operation readings.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.mirror_gauges();
        self.obs.registry.snapshot()
    }

    /// Copies the operation counters and store statistics into registry
    /// gauges. Gauges (not counters) because the sources are owned
    /// elsewhere; cluster-wide merge sums them, which is the right reading
    /// for per-node totals.
    fn mirror_gauges(&self) {
        let reg = &self.obs.registry;
        if !reg.enabled() {
            return;
        }
        let s = self.stats;
        for (name, v) in [
            ("sedna_node_writes", s.writes),
            ("sedna_node_reads", s.reads),
            ("sedna_node_refused", s.refused),
            ("sedna_node_outdated", s.outdated),
            ("sedna_node_pushes", s.pushes),
            ("sedna_node_sync_probes", s.sync_probes),
            ("sedna_node_sync_exchanges", s.sync_exchanges),
            ("sedna_node_sync_root_matches", s.sync_root_matches),
            ("sedna_node_sync_leaf_exchanges", s.sync_leaf_exchanges),
            ("sedna_node_sync_rows_shipped", s.sync_rows_shipped),
            ("sedna_node_sync_bytes_shipped", s.sync_bytes_shipped),
            ("sedna_node_sync_rows_merged", s.sync_rows_merged),
            (
                "sedna_sync_open_mismatches",
                self.divergence.open_mismatches(),
            ),
            (
                "sedna_sync_episodes_total",
                self.divergence.episodes_total(),
            ),
            ("sedna_node_transfers_in", s.transfers_in),
            ("sedna_node_transfers_out", s.transfers_out),
            ("sedna_node_trigger_emits", s.trigger_emits),
        ] {
            reg.gauge(name).set(v);
        }
        let st = self.store.stats();
        for (name, v) in [
            ("sedna_store_hits", st.hits),
            ("sedna_store_misses", st.misses),
            ("sedna_store_evictions", st.evictions),
            ("sedna_store_keys", self.store.len() as u64),
            ("sedna_store_bytes", self.store.payload_bytes() as u64),
            ("sedna_node_journal_events", self.obs.journal.len() as u64),
        ] {
            reg.gauge(name).set(v);
        }
        // Engine internals (store-local only: the epoch shim's stats are
        // process-wide, so mirroring them per node would multiply under the
        // cluster-wide gauge merge — `/internals` serves those instead).
        let eng = self.store.engine_stats();
        for (name, v) in [
            ("sedna_engine_locks", eng.locks),
            ("sedna_engine_lock_waits", eng.lock_waits),
            // Alias under the store namespace: shard-lock acquisitions that
            // missed the try_lock fast path and blocked. Always-on (counted
            // by the engine, not the profiler) so contention stays visible
            // with sampling disabled.
            ("sedna_store_lock_contended", eng.lock_waits),
            (
                "sedna_engine_lock_wait_p99_micros",
                eng.lock_wait.percentile(0.99),
            ),
            ("sedna_engine_probe_p99", eng.probe_len.percentile(0.99)),
            ("sedna_engine_rehashes", eng.rehashes),
            ("sedna_engine_rehash_rows_moved", eng.rehash_rows_moved),
            ("sedna_engine_evict_rounds", eng.evict_rounds),
            ("sedna_engine_evict_sampled", eng.evict_sampled),
            ("sedna_engine_batch_applies", eng.batch_applies),
            ("sedna_engine_batch_ops", eng.batch_ops),
            ("sedna_engine_live_rows", eng.live_rows),
            ("sedna_engine_tombstones", eng.tombstones),
            ("sedna_engine_table_slots", eng.table_slots),
            ("sedna_engine_slab_pages", eng.slab_pages),
            ("sedna_engine_slab_free_cells", eng.slab_free_cells),
        ] {
            reg.gauge(name).set(v);
        }
    }

    /// Registers a trigger job directly (harness convenience; remote
    /// registration arrives as [`ControlMsg::RegisterJob`]).
    pub fn register_job(&mut self, spec: JobSpec, now: Micros) {
        self.engine.register_job(&self.store, spec, now);
    }

    /// Trigger-engine totals.
    pub fn trigger_totals(&self) -> sedna_triggers::ScanStats {
        self.engine.totals()
    }

    /// Installs a newer routing map and garbage-collects rows of vnodes
    /// this node no longer owns. Survivor replicas still hold the data (a
    /// membership change replaces at most one replica per vnode), and any
    /// transient gap on the *new* owner is healed by read-repair — so the
    /// collection is safe and bounds orphaned storage.
    fn install_ring(&mut self, map: VNodeMap) {
        let me = self.node_id;
        let part = self.cfg.partitioner;
        let vacated: Vec<sedna_common::VNodeId> = self
            .ring
            .as_ref()
            .map(|old| {
                old.vnodes_of(me)
                    .into_iter()
                    .filter(|&v| !map.replicas(v).contains(&me))
                    .collect()
            })
            .unwrap_or_default();
        if !vacated.is_empty() {
            self.store
                .remove_matching(|k| vacated.contains(&part.locate(k)));
            for v in &vacated {
                self.vnode_stats[v.index()] = VNodeStats::default();
                self.hot_sketches[v.index()].clear();
            }
        }
        self.divergence.retain_vnodes(&map.vnodes_of(me));
        self.ring = Some(map);
    }

    /// This node's Merkle tree over its copy of `vnode`: 64 leaves, row
    /// hashes covering key, live versions *and* the causal row clock, so
    /// replicas differing only in pruning history still digest differently
    /// and converge to full context agreement. Two replicas agree iff their
    /// roots match (up to hash collisions, which only delay convergence by
    /// one exchange).
    fn vnode_tree(&self, vnode: VNodeId) -> MerkleTree {
        let part = self.cfg.partitioner;
        let mut tree = MerkleTree::new();
        self.store.for_each_row(|key, snap| {
            if part.locate(key) != vnode {
                return;
            }
            tree.add(key, row_hash(key, snap.as_slice(), &snap.clock()));
        });
        tree
    }

    /// Root digest of [`SednaNode::vnode_tree`] — what a sync probe ships.
    fn vnode_digest(&self, vnode: VNodeId) -> u64 {
        self.vnode_tree(vnode).root()
    }

    /// The rows of `vnode` falling into the Merkle leaf buckets `mask`
    /// flags, each with its row clock — the payload of a `SyncRows` frame.
    fn rows_in_leaves(
        &self,
        vnode: VNodeId,
        mask: u64,
    ) -> Vec<(Key, CausalContext, Vec<sedna_memstore::VersionedValue>)> {
        let part = self.cfg.partitioner;
        let mut rows = Vec::new();
        self.store.for_each_row(|key, snap| {
            if part.locate(key) != vnode {
                return;
            }
            if mask & (1u64 << sedna_replication::leaf_of(key)) == 0 {
                return;
            }
            rows.push((key.clone(), snap.clock(), snap.to_vec()));
        });
        rows
    }

    /// One anti-entropy step: probe the peers of the next owned vnode.
    fn sync_step(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        let Some(ring) = &self.ring else {
            return;
        };
        let owned = ring.vnodes_of(self.node_id);
        if owned.is_empty() {
            return;
        }
        self.sync_cursor = (self.sync_cursor + 1) % owned.len();
        let vnode = owned[self.sync_cursor];
        let peers: Vec<NodeId> = ring
            .replicas(vnode)
            .iter()
            .copied()
            .filter(|&n| n != self.node_id)
            .collect();
        if peers.is_empty() {
            return;
        }
        let digest = self.vnode_digest(vnode);
        self.divergence.note_self_root(vnode, digest, ctx.now());
        self.stats.sync_probes += 1;
        for peer in peers {
            ctx.send(
                self.cfg.node_actor(peer),
                SednaMsg::Replica(ReplicaOp::SyncDigest {
                    vnode,
                    digest,
                    from_node: self.node_id,
                }),
            );
        }
    }

    fn owns(&self, key: &Key) -> bool {
        let Some(ring) = &self.ring else {
            return false;
        };
        let vnode = self.cfg.partitioner.locate(key);
        ring.replicas(vnode).contains(&self.node_id)
    }

    fn is_primary(&self, key: &Key) -> bool {
        let Some(ring) = &self.ring else {
            return false;
        };
        let vnode = self.cfg.partitioner.locate(key);
        ring.primary(vnode) == Some(self.node_id)
    }

    fn next_timestamp(&mut self, now: Micros) -> Timestamp {
        let (m, c) = self.last_ts;
        let (micros, counter) = if now > m { (now, 0) } else { (m, c + 1) };
        self.last_ts = (micros, counter);
        Timestamp::new(micros, counter, self.node_id)
    }

    fn send_coord(&self, ctx: &mut Ctx<'_, SednaMsg>, to: ActorId, msg: CoordMsg) {
        ctx.send(to, SednaMsg::Coord(msg));
    }

    fn register_member(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        if self.member_req.is_some() || self.member_registered {
            return;
        }
        let now = ctx.now();
        if let Some((req, to, m)) = self.session.request(
            CoordOp::Create {
                path: paths::member(self.node_id),
                data: vec![],
                ephemeral: true,
            },
            now,
        ) {
            self.member_req = Some(req);
            self.send_coord(ctx, to, m);
        }
    }

    /// Publishes this node's imbalance row (Sec. III-B: "periodically
    /// updated to ZooKeeper cluster").
    fn publish_stats(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        if self.stats_req.is_some() {
            return;
        }
        let Some(ring) = &self.ring else {
            return;
        };
        let owned = ring.vnodes_of(self.node_id);
        let row = crate::imbalance::ImbalanceRow::compute(&self.vnode_stats, &owned)
            .with_hot_keys(self.hot_keys())
            .with_engine(crate::imbalance::EngineSummary::from_snapshot(
                &self.store.engine_stats(),
            ));
        let path = paths::imbalance(self.node_id);
        let now = ctx.now();
        let op = if self.imbalance_created {
            CoordOp::Set {
                path,
                data: row.encode(),
                expected_version: None,
            }
        } else {
            CoordOp::Create {
                path,
                data: row.encode(),
                ephemeral: false,
            }
        };
        let was_create = !self.imbalance_created;
        if let Some((req, to, m)) = self.session.request(op, now) {
            self.stats_req = Some((req, was_create));
            self.send_coord(ctx, to, m);
        }
    }

    fn request_ring(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        if self.ring_req.is_some() {
            return;
        }
        let now = ctx.now();
        if let Some((req, to, msg)) = self.session.request(
            CoordOp::Get {
                path: paths::RING.into(),
                watch: false,
            },
            now,
        ) {
            self.ring_req = Some(req);
            self.send_coord(ctx, to, msg);
        }
    }

    /// Feeds one client-write sample to the `lost_writes` SLO. A replica
    /// refusing a fresh write as timestamp-outdated is the runtime
    /// signature of a concurrent update silently dominated by wall-clock
    /// order — exactly what legacy (non-DVV) timestamps do under skew.
    fn observe_write_conflict(&self, conflicted: bool, trace: TraceId, now: Micros) {
        if let Some(alerts) = &self.alerts {
            alerts.observe_traced(now, "lost_writes", f64::from(u8::from(conflicted)), trace.0);
        }
    }

    fn handle_replica(&mut self, from: ActorId, op: ReplicaOp, ctx: &mut Ctx<'_, SednaMsg>) {
        match op {
            ReplicaOp::Write {
                req,
                key,
                ts,
                value,
                kind,
                ctx: wctx,
                trace,
            } => {
                if !self.owns(&key) {
                    self.stats.refused += 1;
                    ctx.send(
                        from,
                        SednaMsg::Replica(ReplicaOp::WriteAck {
                            req,
                            ack: ReplicaWriteAck::Refused,
                            apply_nanos: 0,
                            lock_nanos: 0,
                        }),
                    );
                    return;
                }
                let bytes = value.len() as i64;
                let is_new = !self.store.contains(&key);
                sedna_memstore::take_lock_wait_nanos();
                let t0 = std::time::Instant::now();
                let outcome = match kind {
                    WriteKind::Latest => {
                        sedna_obs::prof_scope!("node.apply_write");
                        self.store.write_latest_ctx(&key, ts, value.clone(), &wctx)
                    }
                    WriteKind::All => {
                        sedna_obs::prof_scope!("node.apply_write");
                        self.store.write_all_ctx(&key, ts, value.clone(), &wctx)
                    }
                };
                let apply_nanos = t0.elapsed().as_nanos() as u64;
                let lock_nanos = sedna_memstore::take_lock_wait_nanos();
                self.obs.apply_hist.record(apply_nanos);
                let ack = match outcome {
                    WriteOutcome::Ok => {
                        self.stats.writes += 1;
                        let vnode = self.cfg.partitioner.locate(&key);
                        self.vnode_stats[vnode.index()].record_write(bytes, is_new);
                        self.hot_sketches[vnode.index()].offer(&key);
                        // Write-ahead means durable-before-ack: a failed
                        // append must not count toward W. The in-memory copy
                        // stays (like a write whose ack was lost) and can
                        // still propagate via anti-entropy.
                        match &self.persist {
                            Some(p)
                                if p.note_write(
                                    &key,
                                    ts,
                                    &value,
                                    &wctx,
                                    kind == WriteKind::Latest,
                                )
                                .is_err() =>
                            {
                                ReplicaWriteAck::Refused
                            }
                            _ => ReplicaWriteAck::Ok,
                        }
                    }
                    WriteOutcome::Outdated => {
                        self.stats.outdated += 1;
                        ReplicaWriteAck::Outdated
                    }
                };
                self.observe_write_conflict(ack == ReplicaWriteAck::Outdated, trace, ctx.now());
                ctx.send(
                    from,
                    SednaMsg::Replica(ReplicaOp::WriteAck {
                        req,
                        ack,
                        apply_nanos,
                        lock_nanos,
                    }),
                );
            }
            ReplicaOp::Read { req, key, trace: _ } => {
                let mut apply_nanos = 0;
                let mut lock_nanos = 0;
                let reply = if !self.owns(&key) {
                    self.stats.refused += 1;
                    ReplicaReadReply::Refused
                } else {
                    self.stats.reads += 1;
                    let vnode = self.cfg.partitioner.locate(&key);
                    self.vnode_stats[vnode.index()].record_read();
                    self.hot_sketches[vnode.index()].offer(&key);
                    sedna_memstore::take_lock_wait_nanos();
                    let t0 = std::time::Instant::now();
                    let reply = {
                        sedna_obs::prof_scope!("node.apply_read");
                        match self.store.read_all(&key) {
                            Some(snap) => ReplicaReadReply::Values {
                                versions: snap.to_vec(),
                                clock: snap.clock(),
                            },
                            None => ReplicaReadReply::Missing,
                        }
                    };
                    apply_nanos = t0.elapsed().as_nanos() as u64;
                    lock_nanos = sedna_memstore::take_lock_wait_nanos();
                    self.obs.apply_hist.record(apply_nanos);
                    reply
                };
                ctx.send(
                    from,
                    SednaMsg::Replica(ReplicaOp::ReadReply {
                        req,
                        reply,
                        apply_nanos,
                        lock_nanos,
                    }),
                );
            }
            ReplicaOp::Push { req, key, versions } => {
                self.stats.pushes += 1;
                self.store.merge_versions(&key, &versions);
                // Ack so the repairing client can close its convergence
                // window; the client never blocks on this.
                ctx.send(from, SednaMsg::Replica(ReplicaOp::PushAck { req }));
            }
            ReplicaOp::PushAck { .. } => {}
            ReplicaOp::TransferRequest { vnode, to_node } => {
                self.stats.transfers_out += 1;
                let part = self.cfg.partitioner;
                let rows = self
                    .store
                    .collect_matching(|k| part.locate(k) == vnode)
                    .into_iter()
                    .map(|(k, snap)| (k, snap.clock(), snap.to_vec()))
                    .collect();
                ctx.send(
                    self.cfg.node_actor(to_node),
                    SednaMsg::Replica(ReplicaOp::TransferData { vnode, rows }),
                );
            }
            ReplicaOp::TransferData { vnode, rows } => {
                self.stats.transfers_in += 1;
                for (key, clock, versions) in rows {
                    self.store.merge_row(&key, &versions, &clock);
                }
                // Tell the source the move is complete; it may now drop
                // the vnode if it no longer owns it.
                ctx.send(
                    from,
                    SednaMsg::Replica(ReplicaOp::TransferComplete { vnode }),
                );
            }
            ReplicaOp::Scan { req, prefix } => {
                // Serve only keys this node is primary for: the client
                // scatters to every member, so primary-filtering yields
                // each key exactly once cluster-wide.
                let rows: Vec<(Key, sedna_memstore::VersionedValue)> = self
                    .store
                    .collect_matching(|k| k.as_bytes().starts_with(&prefix))
                    .into_iter()
                    .filter(|(k, _)| self.is_primary(k))
                    .filter_map(|(k, versions)| versions.latest().cloned().map(|v| (k, v)))
                    .collect();
                ctx.send(from, SednaMsg::Replica(ReplicaOp::ScanReply { req, rows }));
            }
            ReplicaOp::ScanReply { .. } => {}
            ReplicaOp::SyncDigest {
                vnode,
                digest,
                from_node,
            } => {
                // Round one: compare Merkle roots. Identical copies cost a
                // single u64 each way — the match is acked explicitly
                // (`SyncRootMatch`) so the prober's divergence telemetry
                // learns peer roots instead of inferring health from
                // silence. On divergence answer with our 64 leaf hashes so
                // the prober can localize.
                if !self
                    .ring
                    .as_ref()
                    .is_some_and(|r| r.replicas(vnode).contains(&self.node_id))
                {
                    return;
                }
                let now = ctx.now();
                let tree = self.vnode_tree(vnode);
                let root = tree.root();
                self.divergence.note_self_root(vnode, root, now);
                // The probe itself is an observation of the prober's root.
                if let Some(took) =
                    self.divergence
                        .observe_peer(vnode, from_node, digest, root == digest, now)
                {
                    self.obs.sync_convergence.record(took);
                }
                if root == digest {
                    self.stats.sync_root_matches += 1;
                    ctx.send(
                        self.cfg.node_actor(from_node),
                        SednaMsg::Replica(ReplicaOp::SyncRootMatch {
                            vnode,
                            root,
                            from_node: self.node_id,
                        }),
                    );
                    return;
                }
                self.stats.sync_exchanges += 1;
                ctx.send(
                    self.cfg.node_actor(from_node),
                    SednaMsg::Replica(ReplicaOp::SyncLeaves {
                        vnode,
                        from_node: self.node_id,
                        leaves: Box::new(*tree.leaves()),
                    }),
                );
            }
            ReplicaOp::SyncRootMatch {
                vnode,
                root,
                from_node,
            } => {
                // The probed replica agreed with our probe digest: depth-1
                // descent (cheapest possible probe), and — when the pair
                // was previously divergent — the close of a mismatch
                // episode, i.e. a time-to-convergence sample.
                let now = ctx.now();
                self.stats.sync_root_matches += 1;
                self.obs.sync_descent.record(1);
                if let Some(took) = self
                    .divergence
                    .observe_peer(vnode, from_node, root, true, now)
                {
                    self.obs.sync_convergence.record(took);
                }
            }
            ReplicaOp::SyncLeaves {
                vnode,
                from_node,
                leaves,
            } => {
                // Round two: diff the peer's leaves against ours and ship
                // only rows from the differing buckets, asking the peer to
                // answer with its own rows for those buckets. The shipped
                // leaves also tell us the peer's *root* (reconstructed
                // locally), which feeds the replica root matrix.
                if !self
                    .ring
                    .as_ref()
                    .is_some_and(|r| r.replicas(vnode).contains(&self.node_id))
                {
                    return;
                }
                let now = ctx.now();
                let tree = self.vnode_tree(vnode);
                let peer_root = MerkleTree::from_leaves(*leaves).root();
                self.divergence.note_self_root(vnode, tree.root(), now);
                if let Some(took) = self.divergence.observe_peer(
                    vnode,
                    from_node,
                    peer_root,
                    tree.root() == peer_root,
                    now,
                ) {
                    self.obs.sync_convergence.record(took);
                }
                let mask = tree.diff_leaves(&leaves);
                if mask == 0 {
                    // Roots differed at probe time but the trees agree now
                    // (or differ only above the leaves, which XOR algebra
                    // rules out): depth-2 descent, nothing to ship.
                    self.obs.sync_descent.record(2);
                    return;
                }
                self.obs.sync_descent.record(3);
                self.stats.sync_leaf_exchanges += 1;
                let rows = self.rows_in_leaves(vnode, mask);
                self.stats.sync_rows_shipped += rows.len() as u64;
                let op = ReplicaOp::SyncRows {
                    vnode,
                    from_node: self.node_id,
                    leaf_mask: mask,
                    rows,
                    reply_wanted: true,
                };
                self.stats.sync_bytes_shipped += op.size_bytes() as u64;
                ctx.send(self.cfg.node_actor(from_node), SednaMsg::Replica(op));
            }
            ReplicaOp::SyncRows {
                vnode,
                from_node,
                leaf_mask,
                rows,
                reply_wanted,
            } => {
                // Round three: merge the peer's divergent rows (clocks stop
                // pruned siblings from resurrecting) and, on the first
                // direction, answer with ours for the same buckets so the
                // repair is bidirectional.
                let mut merged = 0u32;
                for (key, clock, versions) in &rows {
                    if self.store.merge_row(key, versions, clock) {
                        merged += 1;
                    }
                }
                self.stats.sync_rows_merged += merged as u64;
                if merged > 0 {
                    self.obs.journal.push(
                        ctx.now(),
                        sedna_obs::journal::EventKind::AntiEntropy {
                            vnode,
                            peer: from_node,
                            leaves: leaf_mask.count_ones(),
                            merged,
                        },
                    );
                }
                if reply_wanted {
                    let rows = self.rows_in_leaves(vnode, leaf_mask);
                    self.stats.sync_rows_shipped += rows.len() as u64;
                    let op = ReplicaOp::SyncRows {
                        vnode,
                        from_node: self.node_id,
                        leaf_mask,
                        rows,
                        reply_wanted: false,
                    };
                    self.stats.sync_bytes_shipped += op.size_bytes() as u64;
                    ctx.send(self.cfg.node_actor(from_node), SednaMsg::Replica(op));
                }
            }
            ReplicaOp::TransferComplete { vnode } => {
                // Drop only when our own (current) routing agrees we are no
                // longer a replica; a stale ring errs on keeping the data.
                if let Some(ring) = &self.ring {
                    if !ring.replicas(vnode).contains(&self.node_id) {
                        let part = self.cfg.partitioner;
                        self.store.remove_matching(|k| part.locate(k) == vnode);
                    }
                }
            }
            ReplicaOp::WriteAck { req, ack, .. } => {
                // Ack for one of our trigger-emit writes.
                let _ = self.emit_writer.on_ack(&self.cfg, from, req, ack);
            }
            ReplicaOp::AckBatch { acks } => {
                for ack in acks {
                    if let ReplicaOp::WriteAck { req, ack, .. } = ack {
                        let _ = self.emit_writer.on_ack(&self.cfg, from, req, ack);
                    }
                }
            }
            ReplicaOp::Batch { ops } => self.handle_batch(from, ops, ctx),
            ReplicaOp::ReadReply { .. } => {}
        }
    }

    /// Applies a coalesced client frame. Writes funnel through
    /// [`MemStore::apply_batch`] and reads through [`MemStore::get_many`],
    /// so each storage shard is locked once per (shard, batch) group
    /// instead of once per op; any other sub-op takes the normal per-op
    /// path. Replies are coalesced symmetrically: several acks share one
    /// [`ReplicaOp::AckBatch`] frame back to the sender (a single ack
    /// travels bare, exactly like an unbatched reply).
    fn handle_batch(&mut self, from: ActorId, ops: Vec<ReplicaOp>, ctx: &mut Ctx<'_, SednaMsg>) {
        let n = ops.len();
        let mut acks: Vec<Option<ReplicaOp>> = vec![None; n];
        let mut write_meta: Vec<(usize, RequestId, WriteKind, TraceId)> = Vec::new();
        let mut write_items: Vec<sedna_memstore::BatchWrite> = Vec::new();
        let mut read_meta: Vec<(usize, RequestId)> = Vec::new();
        let mut read_keys: Vec<Key> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                ReplicaOp::Write {
                    req,
                    key,
                    ts,
                    value,
                    kind,
                    ctx: wctx,
                    trace,
                } => {
                    if self.owns(&key) {
                        write_meta.push((i, req, kind, trace));
                        write_items.push(sedna_memstore::BatchWrite {
                            key,
                            ts,
                            value,
                            ctx: wctx,
                            latest: kind == WriteKind::Latest,
                        });
                    } else {
                        self.stats.refused += 1;
                        acks[i] = Some(ReplicaOp::WriteAck {
                            req,
                            ack: ReplicaWriteAck::Refused,
                            apply_nanos: 0,
                            lock_nanos: 0,
                        });
                    }
                }
                ReplicaOp::Read { req, key, trace: _ } => {
                    if self.owns(&key) {
                        read_meta.push((i, req));
                        read_keys.push(key);
                    } else {
                        self.stats.refused += 1;
                        acks[i] = Some(ReplicaOp::ReadReply {
                            req,
                            reply: ReplicaReadReply::Refused,
                            apply_nanos: 0,
                            lock_nanos: 0,
                        });
                    }
                }
                // Never nested; drop malformed frames.
                ReplicaOp::Batch { .. } | ReplicaOp::AckBatch { .. } => {}
                // Anything else (pushes, transfers, ...) replies — or not —
                // through its regular handler.
                other => self.handle_replica(from, other, ctx),
            }
        }
        // One shard lock covers each (shard, batch) group, so the honest
        // per-sub-op reading is the whole-group hold time: that is how long
        // the lock was actually unavailable on account of this frame.
        sedna_memstore::take_lock_wait_nanos();
        let t0 = std::time::Instant::now();
        let write_results = {
            sedna_obs::prof_scope!("node.apply_batch_write");
            self.store.apply_batch(&write_items)
        };
        let write_nanos = t0.elapsed().as_nanos() as u64;
        let write_lock_nanos = sedna_memstore::take_lock_wait_nanos();
        if !write_items.is_empty() {
            self.obs.apply_hist.record(write_nanos);
        }
        for (((i, req, kind, trace), item), res) in
            write_meta.into_iter().zip(&write_items).zip(write_results)
        {
            let ack = match res.outcome {
                WriteOutcome::Ok => {
                    self.stats.writes += 1;
                    let vnode = self.cfg.partitioner.locate(&item.key);
                    self.vnode_stats[vnode.index()]
                        .record_write(item.value.len() as i64, res.was_new);
                    self.hot_sketches[vnode.index()].offer(&item.key);
                    // Durable-before-ack, as on the unbatched path.
                    match &self.persist {
                        Some(p)
                            if p.note_write(
                                &item.key,
                                item.ts,
                                &item.value,
                                &item.ctx,
                                kind == WriteKind::Latest,
                            )
                            .is_err() =>
                        {
                            ReplicaWriteAck::Refused
                        }
                        _ => ReplicaWriteAck::Ok,
                    }
                }
                WriteOutcome::Outdated => {
                    self.stats.outdated += 1;
                    ReplicaWriteAck::Outdated
                }
            };
            self.observe_write_conflict(ack == ReplicaWriteAck::Outdated, trace, ctx.now());
            acks[i] = Some(ReplicaOp::WriteAck {
                req,
                ack,
                apply_nanos: write_nanos,
                lock_nanos: write_lock_nanos,
            });
        }
        let t0 = std::time::Instant::now();
        let read_results = {
            sedna_obs::prof_scope!("node.apply_batch_read");
            self.store.get_many(&read_keys)
        };
        let read_nanos = t0.elapsed().as_nanos() as u64;
        if !read_keys.is_empty() {
            self.obs.apply_hist.record(read_nanos);
        }
        for (((i, req), key), values) in read_meta.into_iter().zip(&read_keys).zip(read_results) {
            self.stats.reads += 1;
            let vnode = self.cfg.partitioner.locate(key);
            self.vnode_stats[vnode.index()].record_read();
            self.hot_sketches[vnode.index()].offer(key);
            let reply = match values {
                Some(snap) => ReplicaReadReply::Values {
                    versions: snap.to_vec(),
                    clock: snap.clock(),
                },
                None => ReplicaReadReply::Missing,
            };
            acks[i] = Some(ReplicaOp::ReadReply {
                req,
                reply,
                apply_nanos: read_nanos,
                lock_nanos: 0,
            });
        }
        let mut acks: Vec<ReplicaOp> = acks.into_iter().flatten().collect();
        match acks.len() {
            0 => {}
            1 => ctx.send(from, SednaMsg::Replica(acks.pop().expect("one"))),
            _ => ctx.send(from, SednaMsg::Replica(ReplicaOp::AckBatch { acks })),
        }
    }

    fn handle_control(&mut self, op: ControlMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        match op {
            ControlMsg::RegisterJob(spec) => {
                self.engine.register_job(&self.store, spec, ctx.now());
            }
            ControlMsg::MigrateVNode { vnode, from } => {
                if let Some(src) = from {
                    if src != self.node_id {
                        ctx.send(
                            self.cfg.node_actor(src),
                            SednaMsg::Replica(ReplicaOp::TransferRequest {
                                vnode,
                                to_node: self.node_id,
                            }),
                        );
                    }
                }
            }
            ControlMsg::DropVNode { vnode } => {
                let part = self.cfg.partitioner;
                self.store.remove_matching(|k| part.locate(k) == vnode);
            }
        }
    }

    fn handle_coord(&mut self, msg: CoordMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        let (event, retry) = self.session.on_message(msg);
        if let Some((to, m)) = retry {
            self.send_coord(ctx, to, m);
        }
        match event {
            Some(SessionEvent::Opened(_)) => {
                // Register membership (ephemeral) and fetch routing state.
                self.member_registered = false;
                self.register_member(ctx);
                self.request_ring(ctx);
            }
            Some(SessionEvent::Expired) => {
                // Session gone: the ephemeral is too; re-open and the next
                // Opened event re-registers.
                self.member_registered = false;
                self.member_req = None;
                let now = ctx.now();
                let (to, m) = self.session.open(now);
                self.send_coord(ctx, to, m);
            }
            Some(SessionEvent::Pong { sent_at }) => {
                self.obs.ping_rtt.record(ctx.now().saturating_sub(sent_at));
            }
            Some(SessionEvent::Reply { req_id, result }) => {
                if self.stats_req.map(|(r, _)| r) == Some(req_id) {
                    let (_, was_create) = self.stats_req.take().expect("checked");
                    if was_create {
                        // Created, or already existed from a previous life.
                        self.imbalance_created = matches!(
                            result,
                            Ok(CoordReply::Created)
                                | Err(sedna_coord::messages::CoordError::Tree(
                                    sedna_coord::tree::TreeError::NodeExists(_)
                                ))
                        );
                    }
                    // Set failures (e.g. parent missing) simply retry on the
                    // next stats tick.
                } else if Some(req_id) == self.member_req {
                    self.member_req = None;
                    // Registered only once *our* session owns the znode.
                    // `NodeExists` means a leftover ephemeral from a
                    // previous incarnation still holds the name; treating
                    // that as registered would leave us unregistered
                    // forever once the old session expires and deletes it.
                    // Keep retrying from the tick loop instead — the blip
                    // between the old znode's expiry and our re-create is
                    // one tick wide, within the manager's leave debounce.
                    self.member_registered = matches!(result, Ok(CoordReply::Created));
                    // Any other failure (e.g. the manager has not created
                    // /sedna/members yet): retried from the tick loop.
                } else if Some(req_id) == self.ring_req {
                    self.ring_req = None;
                    if let Ok(CoordReply::Data { data, version, .. }) = result {
                        if let Some(map) = VNodeMap::decode(&data) {
                            let newer = self.ring.as_ref().is_none_or(|r| map.epoch() > r.epoch());
                            if newer {
                                self.install_ring(map);
                            }
                            self.lease.put(paths::RING, data, version);
                        }
                    } else {
                        // Ring znode not there yet (fresh cluster): retry on
                        // the next tick via the lease path.
                        self.lease.invalidate(paths::RING);
                    }
                } else if Some(req_id) == self.lease_req {
                    self.lease_req = None;
                    if let Ok(CoordReply::Changes {
                        paths: changed,
                        latest_zxid,
                        truncated,
                    }) = result
                    {
                        let stale = self.lease.apply_changes(changed, latest_zxid, truncated);
                        if stale.iter().any(|p| p == paths::RING) {
                            self.request_ring(ctx);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        // Feed the sim clock to the process-wide observability clocks
        // (fetch_max: multiple in-process nodes only advance them). The
        // flight recorder stamps its events and the epoch shim measures
        // retire→free latency against these.
        crossbeam::epoch::set_clock(now);
        sedna_obs::flight::set_clock(now);
        // Fail over coordination requests whose replica went silent.
        for (old, (to, m)) in self.session.on_tick(now) {
            let new_id = match &m {
                CoordMsg::Request { req_id, .. } => *req_id,
                _ => RequestId(0),
            };
            if Some(old) == self.ring_req {
                self.ring_req = Some(new_id);
            } else if Some(old) == self.lease_req {
                self.lease_req = Some(new_id);
            } else if Some(old) == self.member_req {
                self.member_req = Some(new_id);
            } else if let Some((r, was_create)) = self.stats_req {
                if r == old {
                    self.stats_req = Some((new_id, was_create));
                }
            }
            self.send_coord(ctx, to, m);
        }
        // Retry membership registration until it sticks (e.g. when this
        // node booted before the manager created the namespace).
        if self.session.session().is_some() {
            self.register_member(ctx);
        }
        // Session heartbeat.
        if now.saturating_sub(self.last_ping) >= self.cfg.ping_interval_micros {
            self.last_ping = now;
            if let Some((to, m)) = self.session.ping(now) {
                self.send_coord(ctx, to, m);
            }
        }
        // Adaptive-lease routing refresh; also retries a missing ring.
        if self.session.session().is_some()
            && self.lease_req.is_none()
            && now.saturating_sub(self.last_lease_check) >= self.lease.lease_micros()
        {
            self.last_lease_check = now;
            if self.ring.is_none() {
                self.request_ring(ctx);
            } else if let Some((req, to, m)) = self.session.request(self.lease.refresh_op(), now) {
                self.lease_req = Some(req);
                self.send_coord(ctx, to, m);
            }
        }
        // Emit-write deadlines (failures are surfaced as refused/failed
        // stats; the data will be re-emitted on the next relevant change).
        let _ = self.emit_writer.on_tick(now);
        ctx.set_timer(T_TICK, self.cfg.ping_interval_micros / 4);
    }

    fn scan(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        sedna_obs::prof_scope!("node.trigger_scan");
        let now = ctx.now();
        // Sweep everything, but dispatch only keys this node is primary
        // for — one firing per logical change across the replica group.
        let records: Vec<_> = self
            .store
            .scan_dirty()
            .into_iter()
            .filter(|r| self.is_primary(&r.key))
            .collect();
        if !records.is_empty() {
            let sink = BufferSink::default();
            self.engine.dispatch(&records, &sink, now);
            let writes = sink.writes.into_inner();
            for (key, value, mode) in writes {
                if let Some(ring) = &self.ring {
                    let vnode = self.cfg.partitioner.locate(&key);
                    let replicas = ring.replicas(vnode).to_vec();
                    if replicas.is_empty() {
                        continue;
                    }
                    self.next_emit_op += 1;
                    let ts = self.next_timestamp(now);
                    let kind = match mode {
                        WriteMode::Latest => WriteKind::Latest,
                        WriteMode::All => WriteKind::All,
                    };
                    let deadline = now + self.cfg.request_deadline_micros;
                    self.stats.trigger_emits += 1;
                    let op = self.next_emit_op;
                    let w = self.cfg.quorum.w;
                    // Emit-writes trace under the node's own origin (node
                    // ids are disjoint from the 1000+ client origins).
                    let trace = TraceId::compose(self.node_id.0 as u64, op);
                    // Trigger emits carry no session history: empty context.
                    for (to, rop) in self.emit_writer.begin(
                        &self.cfg,
                        op,
                        &replicas,
                        w,
                        &key,
                        ts,
                        &value,
                        &CausalContext::EMPTY,
                        kind,
                        deadline,
                        trace,
                    ) {
                        ctx.send(to, SednaMsg::Replica(rop));
                    }
                }
            }
        }
        ctx.set_timer(T_SCAN, self.cfg.scan_interval_micros);
    }
}

impl Actor for SednaNode {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        let (to, m) = self.session.open(now);
        self.send_coord(ctx, to, m);
        ctx.set_timer(T_TICK, self.cfg.ping_interval_micros / 4);
        ctx.set_timer(T_SCAN, self.cfg.scan_interval_micros);
        if self.persist.is_some() {
            ctx.set_timer(T_PERSIST, self.cfg.scan_interval_micros * 8);
        }
        if self.cfg.stats_publish_interval_micros > 0 {
            ctx.set_timer(T_STATS, self.cfg.stats_publish_interval_micros);
        }
        if self.cfg.sync_interval_micros > 0 {
            ctx.set_timer(T_SYNC, self.cfg.sync_interval_micros);
        }
    }

    fn on_message(&mut self, from: ActorId, msg: SednaMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        match msg {
            SednaMsg::Coord(m) => self.handle_coord(m, ctx),
            SednaMsg::Replica(op) => self.handle_replica(from, op, ctx),
            SednaMsg::Control(op) => self.handle_control(op, ctx),
            SednaMsg::Client(_) => {} // nodes do not speak the gateway protocol
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        match token {
            T_TICK => self.tick(ctx),
            T_SCAN => self.scan(ctx),
            T_PERSIST => {
                if let Some(p) = &self.persist {
                    let _ = p.tick(ctx.now(), &self.store);
                }
                ctx.set_timer(T_PERSIST, self.cfg.scan_interval_micros * 8);
            }
            T_STATS => {
                let now = ctx.now();
                self.mirror_gauges();
                self.telemetry.publish_engine(self.store.engine_stats());
                self.telemetry
                    .publish_divergence(self.divergence.snapshot(now));
                if let Some(alerts) = &self.alerts {
                    // The divergence-age SLO samples the oldest open
                    // mismatch every tick; 0 when all replicas agree.
                    alerts.observe(
                        now,
                        "divergence_age",
                        self.divergence.max_open_age(now) as f64,
                    );
                    alerts.evaluate(now);
                }
                if let Some(ring) = &self.ring {
                    let owned = ring.vnodes_of(self.node_id);
                    self.telemetry
                        .publish(now, &owned, &self.vnode_stats, self.hot_keys());
                }
                if self.session.session().is_some() {
                    self.publish_stats(ctx);
                }
                ctx.set_timer(T_STATS, self.cfg.stats_publish_interval_micros);
            }
            T_SYNC => {
                sedna_obs::prof_scope!("node.anti_entropy");
                self.sync_step(ctx);
                ctx.set_timer(T_SYNC, self.cfg.sync_interval_micros);
            }
            _ => {}
        }
    }

    fn service_micros(&self, msg: &SednaMsg) -> Micros {
        fn cost(cfg: &ClusterConfig, op: &ReplicaOp) -> Micros {
            match op {
                ReplicaOp::Read { .. } => cfg.read_service_micros,
                ReplicaOp::Write { .. } => cfg.write_service_micros,
                ReplicaOp::TransferData { rows, .. } => 2 + rows.len() as Micros / 4,
                ReplicaOp::SyncRows { rows, .. } => 2 + rows.len() as Micros / 4,
                // A batch costs the sum of its sub-ops: coalescing saves
                // network frames, not storage CPU.
                ReplicaOp::Batch { ops } | ReplicaOp::AckBatch { acks: ops } => {
                    ops.iter().map(|o| cost(cfg, o)).sum()
                }
                _ => 2,
            }
        }
        match msg {
            SednaMsg::Replica(op) => cost(&self.cfg, op),
            _ => 2,
        }
    }
}
