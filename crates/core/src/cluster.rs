//! Deployment harnesses: build a whole Sedna cluster on the simulator or
//! on real threads, plus the gateway actor and a synchronous client facade
//! for examples.

use std::sync::Arc;
use std::time::Duration;

use sedna_common::time::Micros;
use sedna_common::Key;
use sedna_common::{NodeId, Value};
use sedna_coord::messages::EnsembleConfig;
use sedna_coord::replica::CoordReplica;
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_net::link::LinkModel;
use sedna_net::sim::{Sim, SimConfig};
use sedna_net::stats::NetStats;
use sedna_net::threaded::{ExternalHandle, ThreadNet, ThreadNetConfig};
use sedna_obs::journal::{Event, EventJournal};
use sedna_obs::registry::{MetricsSnapshot, Registry};
use sedna_obs::AlertEngine;
use sedna_persist::PersistEngine;

use crate::admin::{AdminActor, AdminState};
use crate::client::{ClientCore, ClientEvent};
use crate::config::ClusterConfig;
use crate::fault::{ClusterFault, RestartKind, ScheduledFault};
use crate::manager::ClusterManager;
use crate::messages::{ClientFrame, ClientOp, ClientResult, SednaMsg};
use crate::node::SednaNode;

/// Ensemble timing used by deployments (the coordination ensemble runs on
/// the same runtime as the data path).
fn ensemble_config(cfg: &ClusterConfig) -> EnsembleConfig {
    EnsembleConfig::lan(cfg.coord_actors())
}

/// Wires the continuous profiler into the process: installs the
/// parking_lot shim's contention hooks (so contended shard-lock waits are
/// attributed to the holder's scope) and starts the ~997 Hz scope-stack
/// sampler thread. Idempotent and process-global; [`ThreadCluster`] calls
/// it on start, standalone binaries (benches, the repl) may too. The
/// simulator harness deliberately does not — a sampler thread would not
/// break determinism (it only reads), but there is nothing to sample in a
/// single-threaded run.
pub fn install_profiling() {
    parking_lot::set_profile_hooks(
        sedna_obs::prof::scope_probe,
        sedna_obs::prof::on_contended_lock,
    );
    sedna_obs::prof::start_sampler();
}

/// Folds a runtime's traffic counters into a metrics snapshot as gauges
/// (the runtime owns the counters; snapshots just mirror them).
pub fn fold_net_stats(stats: &NetStats, snap: &mut MetricsSnapshot) {
    for (name, v) in [
        ("sedna_net_messages_sent", stats.messages_sent),
        ("sedna_net_messages_delivered", stats.messages_delivered),
        ("sedna_net_messages_dropped", stats.messages_dropped),
        ("sedna_net_bytes_sent", stats.bytes_sent),
        ("sedna_net_bytes_dropped", stats.bytes_dropped),
        ("sedna_net_timers_fired", stats.timers_fired),
    ] {
        *snap.gauges.entry(name.to_string()).or_insert(0) += v;
    }
}

// ---------------------------------------------------------------------------
// Gateway
// ---------------------------------------------------------------------------

const T_GATEWAY_TICK: TimerToken = TimerToken(0x6A_01);

/// Bridges external callers to the cluster: receives [`ClientFrame`]
/// requests (from [`ActorId::EXTERNAL`] or any other actor), performs them
/// through an embedded [`ClientCore`], and answers with
/// [`ClientFrame::Response`].
pub struct Gateway {
    core: ClientCore,
    /// Requests received before the routing cache was ready.
    backlog: Vec<(ActorId, u64, ClientOp)>,
    /// In-flight: `op_id → (requester, external op id)`.
    in_flight: std::collections::HashMap<u64, (ActorId, u64)>,
    tick_micros: Micros,
}

impl Gateway {
    /// Creates a gateway stamping writes with the given client origin.
    pub fn new(cfg: ClusterConfig, origin: NodeId) -> Self {
        let tick = cfg.request_deadline_micros / 4;
        Gateway {
            core: ClientCore::new(cfg, origin),
            backlog: Vec::new(),
            in_flight: std::collections::HashMap::new(),
            tick_micros: tick.max(1_000),
        }
    }

    /// True once requests can be served without queueing.
    pub fn is_ready(&self) -> bool {
        self.core.is_ready()
    }

    /// The embedded client (metrics, journal, trace inspection).
    pub fn core(&self) -> &ClientCore {
        &self.core
    }

    /// Attaches the cluster-shared SLO engine to the embedded client so
    /// gateway-served operations feed the burn-rate windows.
    pub fn set_alert_engine(&mut self, engine: Arc<AlertEngine>) {
        self.core.set_alert_engine(engine);
    }

    fn start_op(&mut self, from: ActorId, op_id: u64, op: ClientOp, ctx: &mut Ctx<'_, SednaMsg>) {
        // An empty group is complete by definition. Answer immediately:
        // the core reports empty input as `None`, which would otherwise be
        // indistinguishable from "routing not ready" and backlog forever.
        let empty_group = match &op {
            ClientOp::WriteMany { pairs } => pairs.is_empty(),
            ClientOp::ReadMany { keys } => keys.is_empty(),
            _ => false,
        };
        if empty_group {
            ctx.send(
                from,
                SednaMsg::Client(ClientFrame::Response {
                    op_id,
                    result: ClientResult::Many(Vec::new()),
                }),
            );
            return;
        }
        let now = ctx.now();
        let issued = match &op {
            ClientOp::WriteLatest { key, value } => self.core.write_latest(key, value.clone(), now),
            ClientOp::WriteAll { key, value } => self.core.write_all(key, value.clone(), now),
            ClientOp::ReadLatest { key } => self.core.read_latest(key, now),
            ClientOp::ReadAll { key } => self.core.read_all(key, now),
            ClientOp::ScanTable { dataset, table } => self.core.scan_table(dataset, table, now),
            ClientOp::WriteMany { pairs } => self.core.write_many(pairs, now),
            ClientOp::ReadMany { keys } => self.core.read_many(keys, now),
        };
        match issued {
            Some((internal_op, out)) => {
                self.in_flight.insert(internal_op, (from, op_id));
                for (to, m) in out {
                    ctx.send(to, m);
                }
            }
            None => {
                // Routing not ready yet: queue and retry when it is.
                self.backlog.push((from, op_id, op));
            }
        }
    }

    fn pump_events(&mut self, events: Vec<ClientEvent>, ctx: &mut Ctx<'_, SednaMsg>) {
        for ev in events {
            match ev {
                ClientEvent::Ready => {
                    for (from, op_id, op) in std::mem::take(&mut self.backlog) {
                        self.start_op(from, op_id, op, ctx);
                    }
                }
                ClientEvent::Done { op_id, result } => {
                    if let Some((requester, ext_id)) = self.in_flight.remove(&op_id) {
                        ctx.send(
                            requester,
                            SednaMsg::Client(ClientFrame::Response {
                                op_id: ext_id,
                                result,
                            }),
                        );
                    }
                }
            }
        }
    }
}

impl Actor for Gateway {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        for (to, m) in self.core.bootstrap() {
            ctx.send(to, m);
        }
        ctx.set_timer(T_GATEWAY_TICK, self.tick_micros);
    }

    fn on_message(&mut self, from: ActorId, msg: SednaMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        match msg {
            SednaMsg::Client(ClientFrame::Request { op_id, op }) => {
                self.start_op(from, op_id, op, ctx);
            }
            other => {
                let (events, out) = self.core.on_message(from, other, ctx.now());
                for (to, m) in out {
                    ctx.send(to, m);
                }
                self.pump_events(events, ctx);
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        if token == T_GATEWAY_TICK {
            let (events, out) = self.core.on_tick(ctx.now());
            for (to, m) in out {
                ctx.send(to, m);
            }
            self.pump_events(events, ctx);
            ctx.set_timer(T_GATEWAY_TICK, self.tick_micros);
        }
    }
}

// ---------------------------------------------------------------------------
// Simulated cluster
// ---------------------------------------------------------------------------

/// A fully-built simulated deployment.
pub struct SimCluster {
    /// The simulator; drive it with `run_until` etc.
    pub sim: Sim<SednaMsg>,
    /// The deployment layout.
    pub config: ClusterConfig,
    /// Gateways added via [`SimCluster::add_gateway`] (for metrics merge).
    gateways: Vec<ActorId>,
    /// The persistence factory the cluster was built with, kept so
    /// [`SimCluster::restart_node`] can rebuild a node against the same
    /// on-disk state ([`RestartKind::Recover`]).
    persist_for: Box<dyn FnMut(NodeId) -> Option<PersistEngine>>,
    /// The cluster-shared SLO engine: every node and gateway feeds it;
    /// firing transitions land in [`SimCluster::alerts_journal`].
    alerts: Arc<AlertEngine>,
    /// Journal receiving alert firing/resolve transitions.
    alerts_journal: Arc<EventJournal>,
}

impl SimCluster {
    /// Builds coordination replicas, the manager and all data nodes.
    /// Nodes get `persist_for(node)`-provided persistence engines.
    pub fn build_with_persist(
        config: ClusterConfig,
        seed: u64,
        link: LinkModel,
        persist_for: impl FnMut(NodeId) -> Option<PersistEngine> + 'static,
    ) -> Self {
        let sim_config = SimConfig {
            seed,
            link,
            ..SimConfig::default()
        };
        Self::build_with_sim_config(config, sim_config, persist_for)
    }

    /// Builds with full control over the simulator configuration (seed,
    /// link model, sender-side packet cost, clock skew).
    pub fn build_with_sim_config(
        config: ClusterConfig,
        sim_config: SimConfig,
        persist_for: impl FnMut(NodeId) -> Option<PersistEngine> + 'static,
    ) -> Self {
        let mut persist_for: Box<dyn FnMut(NodeId) -> Option<PersistEngine>> =
            Box::new(persist_for);
        let mut sim = Sim::new(sim_config);
        let ens = ensemble_config(&config);
        let alerts_journal = Arc::new(EventJournal::new(config.journal_capacity));
        let alerts = Arc::new(AlertEngine::new(
            AlertEngine::default_specs(),
            Some(alerts_journal.clone()),
        ));
        alerts.set_enabled(config.metrics_enabled);
        for i in 0..config.coord_replicas as u32 {
            let id = sim.add_actor(Box::new(CoordReplica::<SednaMsg>::new(ens.clone(), i)));
            debug_assert_eq!(id, config.coord_actor(i as usize));
        }
        let id = sim.add_actor(Box::new(ClusterManager::new(config.clone())));
        debug_assert_eq!(id, config.manager_actor());
        for n in 0..config.data_nodes as u32 {
            let node = NodeId(n);
            let mut actor = SednaNode::new(config.clone(), node, persist_for(node));
            actor.set_alert_engine(alerts.clone());
            let id = sim.add_actor(Box::new(actor));
            debug_assert_eq!(id, config.node_actor(node));
        }
        SimCluster {
            sim,
            config,
            gateways: Vec::new(),
            persist_for,
            alerts,
            alerts_journal,
        }
    }

    /// Builds without persistence.
    pub fn build(config: ClusterConfig, seed: u64, link: LinkModel) -> Self {
        Self::build_with_persist(config, seed, link, |_| None)
    }

    /// Runs until every data node has routing state with the full
    /// replication factor (cluster "ready"), or panics after `deadline`.
    pub fn run_until_ready(&mut self, deadline: Micros) {
        let step = 100_000;
        let mut t = self.sim.now();
        loop {
            t += step;
            self.sim.run_until(t);
            if self.all_nodes_ready() {
                return;
            }
            assert!(
                t < deadline,
                "cluster failed to become ready by {deadline}µs"
            );
        }
    }

    fn all_nodes_ready(&self) -> bool {
        let want_rf = self.config.quorum.n.min(self.config.data_nodes);
        (0..self.config.data_nodes as u32).all(|n| {
            let id = self.config.node_actor(NodeId(n));
            if self.sim.is_down(id) {
                return true; // crashed nodes don't block readiness
            }
            self.sim
                .actor_ref::<SednaNode>(id)
                .and_then(|node| node.ring())
                .is_some_and(|ring| {
                    ring.effective_rf() >= want_rf
                        && ring.members().count() >= self.live_node_count()
                })
        })
    }

    fn live_node_count(&self) -> usize {
        (0..self.config.data_nodes as u32)
            .filter(|&n| !self.sim.is_down(self.config.node_actor(NodeId(n))))
            .count()
    }

    /// Adds a gateway actor; returns its address.
    pub fn add_gateway(&mut self, client_index: u32) -> ActorId {
        let origin = self.config.client_origin(client_index);
        let mut gw = Gateway::new(self.config.clone(), origin);
        gw.set_alert_engine(self.alerts.clone());
        let id = self.sim.add_actor(Box::new(gw));
        self.gateways.push(id);
        id
    }

    /// The cluster-shared SLO/alert engine (burn-rate state, transition
    /// log) — what the nemesis harness cross-validates against ground
    /// truth.
    pub fn alert_engine(&self) -> &Arc<AlertEngine> {
        &self.alerts
    }

    /// Cluster-wide metrics: every data node, the manager, every gateway
    /// added through [`SimCluster::add_gateway`], the coordination
    /// replicas' election counters, and the simulator's traffic stats,
    /// merged into one snapshot.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for n in 0..self.config.data_nodes as u32 {
            let id = self.config.node_actor(NodeId(n));
            if let Some(node) = self.sim.actor_ref::<SednaNode>(id) {
                merged.merge(&node.metrics_snapshot());
            }
        }
        if let Some(mgr) = self
            .sim
            .actor_ref::<ClusterManager>(self.config.manager_actor())
        {
            merged.merge(&mgr.registry().snapshot());
        }
        for &id in &self.gateways {
            if let Some(gw) = self.sim.actor_ref::<Gateway>(id) {
                merged.merge(&gw.core().obs().snapshot());
            }
        }
        let (mut started, mut won) = (0, 0);
        for i in 0..self.config.coord_replicas {
            if let Some(rep) = self
                .sim
                .actor_ref::<CoordReplica<SednaMsg>>(self.config.coord_actor(i))
            {
                started += rep.elections_started();
                won += rep.elections_won();
            }
        }
        *merged
            .gauges
            .entry("sedna_coord_elections_started".into())
            .or_insert(0) += started;
        *merged
            .gauges
            .entry("sedna_coord_elections_won".into())
            .or_insert(0) += won;
        fold_net_stats(self.sim.stats(), &mut merged);
        merged
    }

    /// Prometheus text exposition of [`SimCluster::metrics_snapshot`].
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().to_prometheus()
    }

    /// JSON rendering of [`SimCluster::metrics_snapshot`].
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().to_json()
    }

    /// Every journal event in the cluster (nodes, manager, gateways),
    /// ordered by record time.
    pub fn journal_events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for n in 0..self.config.data_nodes as u32 {
            let id = self.config.node_actor(NodeId(n));
            if let Some(node) = self.sim.actor_ref::<SednaNode>(id) {
                out.extend(node.journal().events());
            }
        }
        if let Some(mgr) = self
            .sim
            .actor_ref::<ClusterManager>(self.config.manager_actor())
        {
            out.extend(mgr.journal().events());
        }
        for &id in &self.gateways {
            if let Some(gw) = self.sim.actor_ref::<Gateway>(id) {
                out.extend(gw.core().obs().journal().events());
            }
        }
        out.extend(self.alerts_journal.events());
        out.sort_by_key(|e| e.at);
        out
    }

    /// Immutable access to a data node.
    pub fn node(&self, node: NodeId) -> &SednaNode {
        self.sim
            .actor_ref::<SednaNode>(self.config.node_actor(node))
            .expect("data node actor")
    }

    /// Mutable access to a data node (e.g. to register trigger jobs).
    pub fn node_mut(&mut self, node: NodeId) -> &mut SednaNode {
        self.sim
            .actor_mut::<SednaNode>(self.config.node_actor(node))
            .expect("data node actor")
    }

    /// Registers a trigger job on every (live) data node — jobs fire on the
    /// primary replica of each key, so cluster-wide registration gives
    /// exactly-once dispatch per change.
    pub fn register_job_everywhere(
        &mut self,
        mut make_spec: impl FnMut() -> sedna_triggers::JobSpec,
    ) {
        let now = self.sim.now();
        for n in 0..self.config.data_nodes as u32 {
            let id = self.config.node_actor(NodeId(n));
            if !self.sim.is_down(id) {
                if let Some(node) = self.sim.actor_mut::<SednaNode>(id) {
                    node.register_job(make_spec(), now);
                }
            }
        }
    }

    /// Crashes a data node (heartbeats stop; the manager will re-cover its
    /// vnodes).
    pub fn crash_node(&mut self, node: NodeId) {
        self.sim.set_down(self.config.node_actor(node), true);
    }

    /// Crashes a data node *and* tears its WAL tail: a half-written frame
    /// is appended at the crash instant, as if power was lost mid-`append`.
    /// Recovery ([`RestartKind::Recover`]) must discard the torn tail and
    /// keep appending cleanly after it. No-op tear when the node has no
    /// persistence.
    pub fn crash_node_torn(&mut self, node: NodeId) {
        if let Some(p) = self.node(node).persist() {
            // The tear itself failing (disk gone) still leaves the engine
            // crashed, which is the semantics we want at a crash instant.
            let _ = p.inject_torn_append();
        }
        self.crash_node(node);
    }

    /// Brings a crashed data node back. [`RestartKind::Preserve`] resumes
    /// the same actor object (in-memory store intact);
    /// [`RestartKind::Empty`] and [`RestartKind::Recover`] swap in a
    /// freshly-constructed [`SednaNode`] — without or with the persistence
    /// engine the build factory assigns to this node — before restarting,
    /// so `Recover` replays the node's WAL/snapshot on the spot.
    pub fn restart_node(&mut self, node: NodeId, kind: RestartKind) {
        let actor = self.config.node_actor(node);
        match kind {
            RestartKind::Preserve => {}
            RestartKind::Empty => {
                let mut fresh = SednaNode::new(self.config.clone(), node, None);
                fresh.set_alert_engine(self.alerts.clone());
                self.sim.replace_actor(actor, Box::new(fresh));
            }
            RestartKind::Recover => {
                let persist = (self.persist_for)(node);
                let mut fresh = SednaNode::new(self.config.clone(), node, persist);
                fresh.set_alert_engine(self.alerts.clone());
                self.sim.replace_actor(actor, Box::new(fresh));
            }
        }
        self.sim.restart(actor);
    }

    /// Applies one [`ClusterFault`] right now.
    pub fn apply_fault(&mut self, fault: &ClusterFault) {
        match fault {
            ClusterFault::Crash { node, torn_wal } => {
                if *torn_wal {
                    self.crash_node_torn(*node);
                } else {
                    self.crash_node(*node);
                }
            }
            ClusterFault::Restart { node, kind } => self.restart_node(*node, *kind),
            ClusterFault::PartitionPair { a, b } => {
                self.sim
                    .partition_pair(self.config.node_actor(*a), self.config.node_actor(*b));
            }
            ClusterFault::HealPair { a, b } => {
                self.sim
                    .heal_pair(self.config.node_actor(*a), self.config.node_actor(*b));
            }
            ClusterFault::PartitionHalves { left, right } => {
                let to_actors = |nodes: &[NodeId]| -> Vec<ActorId> {
                    nodes.iter().map(|&n| self.config.node_actor(n)).collect()
                };
                let (l, r) = (to_actors(left), to_actors(right));
                self.sim.partition_groups(&l, &r);
            }
            ClusterFault::HealAll => self.sim.heal_all(),
            ClusterFault::SetLinkLossPermille(permille) => {
                self.sim.set_drop_probability(f64::from(*permille) / 1000.0);
            }
        }
    }

    /// Drives the simulator through a timed fault schedule: runs virtual
    /// time up to each fault's `at` (in time order, regardless of slice
    /// order) and applies it. Time never runs backwards — faults stamped
    /// before `sim.now()` apply immediately.
    pub fn run_schedule(&mut self, schedule: &[ScheduledFault]) {
        let mut ordered: Vec<&ScheduledFault> = schedule.iter().collect();
        ordered.sort_by_key(|f| f.at);
        for f in ordered {
            if f.at > self.sim.now() {
                self.sim.run_until(f.at);
            }
            self.apply_fault(&f.fault);
        }
    }
}

// ---------------------------------------------------------------------------
// Threaded cluster + synchronous client
// ---------------------------------------------------------------------------

/// A deployment running on real threads (one per actor).
pub struct ThreadCluster {
    handle: ExternalHandle<SednaMsg>,
    /// The deployment layout.
    pub config: ClusterConfig,
    gateway: ActorId,
    next_op: std::cell::Cell<u64>,
    /// Metric registries captured before each actor moved into its thread
    /// (nodes, manager, gateway) — the cluster-wide merge view.
    registries: Vec<Arc<Registry>>,
    /// Event journals captured the same way.
    journals: Vec<Arc<EventJournal>>,
    /// Per-node telemetry handles (vnode load, hot keys, engine
    /// internals), captured like the registries.
    telemetry: Vec<(NodeId, Arc<crate::admin::NodeTelemetry>)>,
    /// Bound address of the admin HTTP surface, when one was started.
    admin_addr: Option<std::net::SocketAddr>,
    /// The cluster-shared SLO engine (nodes + gateway feed it).
    alerts: Arc<AlertEngine>,
}

impl ThreadCluster {
    /// Builds and starts the full deployment plus one gateway.
    pub fn start(config: ClusterConfig) -> Self {
        Self::start_inner(config, false)
    }

    /// Like [`ThreadCluster::start`], plus an [`AdminActor`] serving the
    /// HTTP admin surface on an ephemeral localhost port (see
    /// [`ThreadCluster::admin_addr`]).
    pub fn start_with_admin(config: ClusterConfig) -> Self {
        Self::start_inner(config, true)
    }

    fn start_inner(config: ClusterConfig, with_admin: bool) -> Self {
        install_profiling();
        let mut net = ThreadNet::new(ThreadNetConfig::default());
        let ens = ensemble_config(&config);
        let mut registries = Vec::new();
        let mut journals = Vec::new();
        let mut telemetry = Vec::new();
        for i in 0..config.coord_replicas as u32 {
            net.add_actor(Box::new(CoordReplica::<SednaMsg>::new(ens.clone(), i)));
        }
        let alerts_journal = Arc::new(EventJournal::new(config.journal_capacity));
        let alerts = Arc::new(AlertEngine::new(
            AlertEngine::default_specs(),
            Some(alerts_journal.clone()),
        ));
        alerts.set_enabled(config.metrics_enabled);
        journals.push(alerts_journal);
        let manager = ClusterManager::new(config.clone());
        registries.push(manager.registry());
        journals.push(manager.journal());
        net.add_actor(Box::new(manager));
        for n in 0..config.data_nodes as u32 {
            let mut node = SednaNode::new(config.clone(), NodeId(n), None);
            node.set_alert_engine(alerts.clone());
            registries.push(node.registry());
            journals.push(node.journal());
            telemetry.push((NodeId(n), node.telemetry()));
            net.add_actor(Box::new(node));
        }
        let mut gw = Gateway::new(config.clone(), config.client_origin(0));
        gw.set_alert_engine(alerts.clone());
        registries.push(gw.core().obs().registry().clone());
        journals.push(gw.core().obs().journal().clone());
        let staleness = vec![gw.core().obs().staleness().clone()];
        let tail_attr = vec![gw.core().obs().tail_attribution().clone()];
        let gateway = net.add_actor(Box::new(gw));
        let admin_addr = if with_admin {
            let state = AdminState {
                registries: registries.clone(),
                journals: journals.clone(),
                telemetry: telemetry.clone(),
                staleness,
                alerts: Some(alerts.clone()),
                tail_attr,
            };
            let (actor, addr) =
                AdminActor::bind("127.0.0.1:0", state).expect("bind admin listener");
            net.add_actor(Box::new(actor));
            Some(addr)
        } else {
            None
        };
        let handle = net.start();
        ThreadCluster {
            handle,
            config,
            gateway,
            next_op: std::cell::Cell::new(0),
            registries,
            journals,
            telemetry,
            admin_addr,
            alerts,
        }
    }

    /// The admin surface's bound address (`start_with_admin` only):
    /// `curl http://<addr>/metrics`.
    pub fn admin_addr(&self) -> Option<std::net::SocketAddr> {
        self.admin_addr
    }

    /// The cluster-shared SLO/alert engine.
    pub fn alert_engine(&self) -> &Arc<AlertEngine> {
        &self.alerts
    }

    /// Cluster-wide metrics merged across every captured registry (data
    /// nodes, manager, gateway). Node gauges refresh on each node's stats
    /// tick, so very recent activity may lag by one interval.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for reg in &self.registries {
            merged.merge(&reg.snapshot());
        }
        merged
    }

    /// Prometheus text exposition of [`ThreadCluster::metrics_snapshot`].
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().to_prometheus()
    }

    /// JSON rendering of [`ThreadCluster::metrics_snapshot`].
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().to_json()
    }

    /// Every journal event recorded so far, ordered by record time.
    pub fn journal_events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for j in &self.journals {
            out.extend(j.events());
        }
        out.sort_by_key(|e| e.at);
        out
    }

    /// The engine-internals snapshot `node` last published on its stats
    /// tick (`None` before the first tick, or for an unknown node).
    pub fn engine_internals(&self, node: NodeId) -> Option<sedna_memstore::EngineSnapshot> {
        self.telemetry
            .iter()
            .find(|(id, _)| *id == node)
            .and_then(|(_, t)| t.engine())
    }

    /// The flight-recorder ring for `node`'s actor thread (every actor
    /// runs on its own named thread, so the ring labels are exact).
    pub fn flight_dump(&self, node: NodeId) -> Vec<sedna_obs::flight::ThreadDump> {
        let label = format!("sedna-actor-{}", self.config.node_actor(node).0);
        sedna_obs::flight::dump()
            .into_iter()
            .filter(|t| t.label == label)
            .collect()
    }

    fn call(&self, op: ClientOp, timeout: Duration) -> ClientResult {
        let op_id = self.next_op.get() + 1;
        self.next_op.set(op_id);
        self.handle.send(
            self.gateway,
            SednaMsg::Client(ClientFrame::Request { op_id, op }),
        );
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return ClientResult::Failed;
            }
            match self.handle.recv_timeout(remaining) {
                Some((_, SednaMsg::Client(ClientFrame::Response { op_id: got, result })))
                    if got == op_id =>
                {
                    return result;
                }
                Some(_) => continue, // stale response from a timed-out op
                None => return ClientResult::Failed,
            }
        }
    }

    /// Blocking `write_latest` (examples). Retries internally while the
    /// cluster is still assembling.
    pub fn write_latest(&self, key: &Key, value: Value) -> ClientResult {
        self.retry_write(ClientOp::WriteLatest {
            key: key.clone(),
            value,
        })
    }

    /// Blocking `write_all`.
    pub fn write_all(&self, key: &Key, value: Value) -> ClientResult {
        self.retry_write(ClientOp::WriteAll {
            key: key.clone(),
            value,
        })
    }

    fn retry_write(&self, op: ClientOp) -> ClientResult {
        // A group where *every* key failed is the multi-key shape of
        // `Failed` (e.g. the cluster is still assembling) — retry it the
        // same way. Partial failures are returned as-is.
        fn all_failed(result: &ClientResult) -> bool {
            match result {
                ClientResult::Failed => true,
                ClientResult::Many(children) => {
                    !children.is_empty()
                        && children.iter().all(|c| matches!(c, ClientResult::Failed))
                }
                _ => false,
            }
        }
        for _ in 0..50 {
            match self.call(op.clone(), Duration::from_secs(2)) {
                result if all_failed(&result) => std::thread::sleep(Duration::from_millis(50)),
                done => return done,
            }
        }
        ClientResult::Failed
    }

    /// Blocking `read_latest`.
    pub fn read_latest(&self, key: &Key) -> ClientResult {
        self.call(
            ClientOp::ReadLatest { key: key.clone() },
            Duration::from_secs(2),
        )
    }

    /// Blocking `read_all`.
    pub fn read_all(&self, key: &Key) -> ClientResult {
        self.call(
            ClientOp::ReadAll { key: key.clone() },
            Duration::from_secs(2),
        )
    }

    /// Blocking multi-key `write_latest`: one round trip for the whole
    /// group; returns [`ClientResult::Many`] with per-key results in
    /// request order. Retries internally while the cluster assembles.
    pub fn write_many(&self, pairs: &[(Key, Value)]) -> ClientResult {
        if pairs.is_empty() {
            return ClientResult::Many(Vec::new());
        }
        self.retry_write(ClientOp::WriteMany {
            pairs: pairs.to_vec(),
        })
    }

    /// Blocking multi-key `read_latest` (see [`ThreadCluster::write_many`]).
    pub fn read_many(&self, keys: &[Key]) -> ClientResult {
        if keys.is_empty() {
            return ClientResult::Many(Vec::new());
        }
        self.call(
            ClientOp::ReadMany {
                keys: keys.to_vec(),
            },
            Duration::from_secs(2),
        )
    }

    /// Blocking table scan (extension API).
    pub fn scan_table(&self, dataset: &str, table: &str) -> ClientResult {
        self.call(
            ClientOp::ScanTable {
                dataset: dataset.into(),
                table: table.into(),
            },
            Duration::from_secs(5),
        )
    }

    /// Registers a trigger job on every data node (fires on primaries, so
    /// dispatch is exactly-once per change).
    pub fn register_job_everywhere(&self, mut make_spec: impl FnMut() -> sedna_triggers::JobSpec) {
        for n in 0..self.config.data_nodes as u32 {
            self.handle.send(
                self.config.node_actor(NodeId(n)),
                SednaMsg::Control(crate::messages::ControlMsg::RegisterJob(make_spec())),
            );
        }
    }

    /// Stops every actor thread and returns the actors for inspection.
    pub fn shutdown(self) -> Vec<Box<dyn Actor<Msg = SednaMsg>>> {
        self.handle.shutdown()
    }
}
