//! The published imbalance row (Sec. III-B).
//!
//! "We record all the virtual nodes' status including its capacity,
//! read/write frequency. Besides, we also maintain a imbalance table for
//! all the real nodes computed from the virtual nodes' status. This
//! information is calculated and stored locally, and periodically updated
//! to ZooKeeper cluster. It is only necessary to update the imbalance
//! table, which is a quite small comparing with the virtual nodes number."
//!
//! Each node periodically writes one [`ImbalanceRow`] into
//! `/sedna/imbalance/<node>`: its aggregate load plus its top-K hottest
//! vnodes — exactly enough for the manager to run the rebalancer without
//! ever shipping the full per-vnode table.

use sedna_common::VNodeId;
use sedna_ring::{NodeLoad, VNodeStats};

/// How many hottest vnodes a row advertises.
pub const TOP_K: usize = 8;

/// One node's published load summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImbalanceRow {
    /// Aggregate load (same semantics as [`NodeLoad`]).
    pub load: NodeLoad,
    /// This node's hottest vnodes, hottest first: `(vnode, load_score)`.
    pub hottest: Vec<(VNodeId, u64)>,
}

impl ImbalanceRow {
    /// Builds the row from the node's local per-vnode stats and its owned
    /// vnode set.
    pub fn compute(stats: &[VNodeStats], owned: &[VNodeId]) -> Self {
        let mut load = NodeLoad::default();
        let mut scored: Vec<(VNodeId, u64)> = Vec::with_capacity(owned.len());
        for &v in owned {
            let s = &stats[v.index()];
            load.score += s.load_score();
            load.bytes += s.bytes;
            load.slots += 1;
            scored.push((v, s.load_score()));
        }
        scored.sort_by_key(|&(v, score)| (std::cmp::Reverse(score), v));
        scored.truncate(TOP_K);
        ImbalanceRow {
            load,
            hottest: scored,
        }
    }

    /// Serializes (little-endian, fixed layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(21 + self.hottest.len() * 12);
        buf.extend_from_slice(&self.load.score.to_le_bytes());
        buf.extend_from_slice(&self.load.bytes.to_le_bytes());
        buf.extend_from_slice(&self.load.slots.to_le_bytes());
        buf.push(self.hottest.len() as u8);
        for &(v, s) in &self.hottest {
            buf.extend_from_slice(&v.0.to_le_bytes());
            buf.extend_from_slice(&s.to_le_bytes());
        }
        buf
    }

    /// Deserializes; `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 21 {
            return None;
        }
        let score = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let b = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        let slots = u32::from_le_bytes(bytes[16..20].try_into().ok()?);
        let count = bytes[20] as usize;
        if bytes.len() != 21 + count * 12 {
            return None;
        }
        let mut hottest = Vec::with_capacity(count);
        for i in 0..count {
            let off = 21 + i * 12;
            let v = u32::from_le_bytes(bytes[off..off + 4].try_into().ok()?);
            let s = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().ok()?);
            hottest.push((VNodeId(v), s));
        }
        Some(ImbalanceRow {
            load: NodeLoad {
                score,
                bytes: b,
                slots,
            },
            hottest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_aggregates_and_ranks() {
        let mut stats = vec![VNodeStats::default(); 10];
        stats[2].reads = 100;
        stats[5].reads = 50;
        stats[7].reads = 300;
        let owned = vec![VNodeId(2), VNodeId(5), VNodeId(7)];
        let row = ImbalanceRow::compute(&stats, &owned);
        assert_eq!(row.load.score, 450);
        assert_eq!(row.load.slots, 3);
        assert_eq!(row.hottest[0], (VNodeId(7), 300));
        assert_eq!(row.hottest[1], (VNodeId(2), 100));
        assert_eq!(row.hottest[2], (VNodeId(5), 50));
    }

    #[test]
    fn top_k_truncates() {
        let stats = vec![
            VNodeStats {
                reads: 1,
                ..Default::default()
            };
            50
        ];
        let owned: Vec<VNodeId> = (0..50).map(VNodeId).collect();
        let row = ImbalanceRow::compute(&stats, &owned);
        assert_eq!(row.hottest.len(), TOP_K);
        assert_eq!(row.load.slots, 50);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut stats = vec![VNodeStats::default(); 4];
        stats[1].writes = 7;
        stats[1].bytes = 9_000;
        let row = ImbalanceRow::compute(&stats, &[VNodeId(1), VNodeId(3)]);
        let back = ImbalanceRow::decode(&row.encode()).unwrap();
        assert_eq!(row, back);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(ImbalanceRow::decode(&[]).is_none());
        assert!(ImbalanceRow::decode(&[0u8; 20]).is_none());
        let row = ImbalanceRow::compute(&[VNodeStats::default()], &[VNodeId(0)]);
        let mut bytes = row.encode();
        bytes.push(0); // trailing garbage
        assert!(ImbalanceRow::decode(&bytes).is_none());
        let mut bytes2 = row.encode();
        bytes2[20] = 5; // claims 5 entries, has fewer
        assert!(ImbalanceRow::decode(&bytes2).is_none());
    }
}
