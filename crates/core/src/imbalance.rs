//! The published imbalance row (Sec. III-B).
//!
//! "We record all the virtual nodes' status including its capacity,
//! read/write frequency. Besides, we also maintain a imbalance table for
//! all the real nodes computed from the virtual nodes' status. This
//! information is calculated and stored locally, and periodically updated
//! to ZooKeeper cluster. It is only necessary to update the imbalance
//! table, which is a quite small comparing with the virtual nodes number."
//!
//! Each node periodically writes one [`ImbalanceRow`] into
//! `/sedna/imbalance/<node>`: its aggregate load plus its top-K hottest
//! vnodes — exactly enough for the manager to run the rebalancer without
//! ever shipping the full per-vnode table.

use sedna_common::{Key, VNodeId};
use sedna_memstore::EngineSnapshot;
use sedna_ring::{HotKeyRow, NodeLoad, VNodeStats};

/// How many hottest vnodes a row advertises.
pub const TOP_K: usize = 8;

/// Compact engine-internals roll-up gossiped alongside the load row, so the
/// manager (and `/vnodes`-style consumers of the imbalance table) can see a
/// node degrading *inside* — reclamation backlog, probe decay, writer-mutex
/// convoys — before it shows up as external latency.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineSummary {
    /// Epoch-retired allocations not yet freed (reclamation backlog).
    pub pending_reclaim: u64,
    /// Peak deferred-bag length seen by any thread.
    pub bag_peak: u64,
    /// p99 reader probe length (slots inspected per lookup), sampled.
    pub probe_p99: u64,
    /// Writer-mutex acquisitions.
    pub locks: u64,
    /// Acquisitions that found the mutex held.
    pub lock_waits: u64,
    /// Table rehashes.
    pub rehashes: u64,
    /// Slab pages allocated.
    pub slab_pages: u64,
    /// Free slab cells (allocatable without growing).
    pub slab_free_cells: u64,
    /// Eviction rounds run.
    pub evict_rounds: u64,
}

impl EngineSummary {
    /// Condenses a full [`EngineSnapshot`] into the gossiped roll-up.
    pub fn from_snapshot(snap: &EngineSnapshot) -> EngineSummary {
        EngineSummary {
            pending_reclaim: snap.epoch.pending,
            bag_peak: snap.epoch.bag_peak,
            probe_p99: snap.probe_len.percentile(0.99),
            locks: snap.locks,
            lock_waits: snap.lock_waits,
            rehashes: snap.rehashes,
            slab_pages: snap.slab_pages,
            slab_free_cells: snap.slab_free_cells,
            evict_rounds: snap.evict_rounds,
        }
    }

    /// Field values in wire order (the section is `count || fields`).
    fn fields(&self) -> [u64; 9] {
        [
            self.pending_reclaim,
            self.bag_peak,
            self.probe_p99,
            self.locks,
            self.lock_waits,
            self.rehashes,
            self.slab_pages,
            self.slab_free_cells,
            self.evict_rounds,
        ]
    }
}

/// One node's published load summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImbalanceRow {
    /// Aggregate load (same semantics as [`NodeLoad`]).
    pub load: NodeLoad,
    /// This node's hottest vnodes, hottest first: `(vnode, load_score)`.
    pub hottest: Vec<(VNodeId, u64)>,
    /// This node's hottest *keys* (Space-Saving estimates), hottest first.
    pub hot_keys: Vec<HotKeyRow>,
    /// Engine-internals roll-up (absent on rows from older nodes).
    pub engine: Option<EngineSummary>,
}

impl ImbalanceRow {
    /// Builds the row from the node's local per-vnode stats and its owned
    /// vnode set.
    pub fn compute(stats: &[VNodeStats], owned: &[VNodeId]) -> Self {
        let mut load = NodeLoad::default();
        let mut scored: Vec<(VNodeId, u64)> = Vec::with_capacity(owned.len());
        for &v in owned {
            let s = &stats[v.index()];
            load.score += s.load_score();
            load.bytes += s.bytes;
            load.slots += 1;
            scored.push((v, s.load_score()));
        }
        scored.sort_by_key(|&(v, score)| (std::cmp::Reverse(score), v));
        scored.truncate(TOP_K);
        ImbalanceRow {
            load,
            hottest: scored,
            hot_keys: Vec::new(),
            engine: None,
        }
    }

    /// Attaches a hot-key roll-up (hottest first, truncated to [`TOP_K`]).
    pub fn with_hot_keys(mut self, mut keys: Vec<HotKeyRow>) -> Self {
        keys.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.vnode.cmp(&b.vnode))
                .then_with(|| a.key.cmp(&b.key))
        });
        keys.truncate(TOP_K);
        self.hot_keys = keys;
        self
    }

    /// Attaches the engine-internals roll-up.
    pub fn with_engine(mut self, engine: EngineSummary) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Serializes (little-endian, fixed layout; hot keys length-prefixed).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(22 + self.hottest.len() * 12);
        buf.extend_from_slice(&self.load.score.to_le_bytes());
        buf.extend_from_slice(&self.load.bytes.to_le_bytes());
        buf.extend_from_slice(&self.load.slots.to_le_bytes());
        buf.push(self.hottest.len() as u8);
        for &(v, s) in &self.hottest {
            buf.extend_from_slice(&v.0.to_le_bytes());
            buf.extend_from_slice(&s.to_le_bytes());
        }
        buf.push(self.hot_keys.len() as u8);
        for hk in &self.hot_keys {
            buf.extend_from_slice(&hk.vnode.0.to_le_bytes());
            buf.extend_from_slice(&hk.count.to_le_bytes());
            buf.extend_from_slice(&(hk.key.len() as u16).to_le_bytes());
            buf.extend_from_slice(hk.key.as_bytes());
        }
        // Engine section, trailing and optional like hot keys: a field
        // count then that many u64s, so a future row with more fields
        // still decodes here (extras ignored).
        if let Some(e) = &self.engine {
            let fields = e.fields();
            buf.push(fields.len() as u8);
            for f in fields {
                buf.extend_from_slice(&f.to_le_bytes());
            }
        }
        buf
    }

    /// Deserializes; `None` on malformed input. Rows encoded before the
    /// hot-key section existed (ending right after the hottest-vnode
    /// entries) still decode, with an empty `hot_keys`.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 21 {
            return None;
        }
        let score = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let b = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        let slots = u32::from_le_bytes(bytes[16..20].try_into().ok()?);
        let count = bytes[20] as usize;
        if bytes.len() < 21 + count * 12 {
            return None;
        }
        let mut hottest = Vec::with_capacity(count);
        for i in 0..count {
            let off = 21 + i * 12;
            let v = u32::from_le_bytes(bytes[off..off + 4].try_into().ok()?);
            let s = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().ok()?);
            hottest.push((VNodeId(v), s));
        }
        let mut off = 21 + count * 12;
        let mut hot_keys = Vec::new();
        if off < bytes.len() {
            let hk_count = bytes[off] as usize;
            off += 1;
            hot_keys.reserve(hk_count);
            for _ in 0..hk_count {
                if bytes.len() < off + 14 {
                    return None;
                }
                let v = u32::from_le_bytes(bytes[off..off + 4].try_into().ok()?);
                let c = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().ok()?);
                let klen = u16::from_le_bytes(bytes[off + 12..off + 14].try_into().ok()?) as usize;
                off += 14;
                if bytes.len() < off + klen {
                    return None;
                }
                hot_keys.push(HotKeyRow {
                    vnode: VNodeId(v),
                    key: Key::from_bytes(bytes[off..off + klen].to_vec()),
                    count: c,
                });
                off += klen;
            }
        }
        let mut engine = None;
        if off < bytes.len() {
            let n = bytes[off] as usize;
            off += 1;
            // n = 0 would make any stray trailing byte decode as an empty
            // engine section; the encoder never writes one, so reject it.
            if n == 0 || bytes.len() < off + n * 8 {
                return None;
            }
            let mut fields = [0u64; 9];
            for (i, f) in fields.iter_mut().enumerate().take(n.min(9)) {
                *f = u64::from_le_bytes(bytes[off + i * 8..off + i * 8 + 8].try_into().ok()?);
            }
            off += n * 8;
            engine = Some(EngineSummary {
                pending_reclaim: fields[0],
                bag_peak: fields[1],
                probe_p99: fields[2],
                locks: fields[3],
                lock_waits: fields[4],
                rehashes: fields[5],
                slab_pages: fields[6],
                slab_free_cells: fields[7],
                evict_rounds: fields[8],
            });
        }
        if off != bytes.len() {
            return None;
        }
        Some(ImbalanceRow {
            load: NodeLoad {
                score,
                bytes: b,
                slots,
            },
            hottest,
            hot_keys,
            engine,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_aggregates_and_ranks() {
        let mut stats = vec![VNodeStats::default(); 10];
        stats[2].reads = 100;
        stats[5].reads = 50;
        stats[7].reads = 300;
        let owned = vec![VNodeId(2), VNodeId(5), VNodeId(7)];
        let row = ImbalanceRow::compute(&stats, &owned);
        assert_eq!(row.load.score, 450);
        assert_eq!(row.load.slots, 3);
        assert_eq!(row.hottest[0], (VNodeId(7), 300));
        assert_eq!(row.hottest[1], (VNodeId(2), 100));
        assert_eq!(row.hottest[2], (VNodeId(5), 50));
    }

    #[test]
    fn top_k_truncates() {
        let stats = vec![
            VNodeStats {
                reads: 1,
                ..Default::default()
            };
            50
        ];
        let owned: Vec<VNodeId> = (0..50).map(VNodeId).collect();
        let row = ImbalanceRow::compute(&stats, &owned);
        assert_eq!(row.hottest.len(), TOP_K);
        assert_eq!(row.load.slots, 50);
    }

    #[test]
    fn compute_breaks_score_ties_by_vnode_id() {
        let mut stats = vec![VNodeStats::default(); 6];
        for v in [5usize, 1, 3] {
            stats[v].reads = 40; // identical scores
        }
        stats[2].reads = 90;
        let owned = vec![VNodeId(5), VNodeId(2), VNodeId(3), VNodeId(1)];
        let row = ImbalanceRow::compute(&stats, &owned);
        assert_eq!(
            row.hottest,
            vec![
                (VNodeId(2), 90),
                (VNodeId(1), 40),
                (VNodeId(3), 40),
                (VNodeId(5), 40),
            ]
        );
    }

    #[test]
    fn compute_with_fewer_than_k_vnodes_keeps_all() {
        let mut stats = vec![VNodeStats::default(); 4];
        stats[0].reads = 3;
        stats[2].reads = 8;
        let row = ImbalanceRow::compute(&stats, &[VNodeId(0), VNodeId(2)]);
        assert!(row.hottest.len() < TOP_K);
        assert_eq!(row.hottest, vec![(VNodeId(2), 8), (VNodeId(0), 3)]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut stats = vec![VNodeStats::default(); 4];
        stats[1].writes = 7;
        stats[1].bytes = 9_000;
        let row = ImbalanceRow::compute(&stats, &[VNodeId(1), VNodeId(3)]);
        let back = ImbalanceRow::decode(&row.encode()).unwrap();
        assert_eq!(row, back);
    }

    #[test]
    fn encode_decode_roundtrip_with_hot_keys() {
        let mut stats = vec![VNodeStats::default(); 4];
        stats[0].reads = 12;
        let row = ImbalanceRow::compute(&stats, &[VNodeId(0), VNodeId(2)]).with_hot_keys(vec![
            HotKeyRow {
                vnode: VNodeId(2),
                key: Key::from("cold"),
                count: 3,
            },
            HotKeyRow {
                vnode: VNodeId(0),
                key: Key::from("cart:42"),
                count: 120,
            },
        ]);
        // with_hot_keys sorts hottest first.
        assert_eq!(row.hot_keys[0].count, 120);
        let back = ImbalanceRow::decode(&row.encode()).unwrap();
        assert_eq!(row, back);
        assert_eq!(back.hot_keys.len(), 2);
        assert_eq!(back.hot_keys[0].key, Key::from("cart:42"));
    }

    #[test]
    fn decode_tolerates_pre_hot_key_rows() {
        // A row serialized by an older node ends right after the hottest
        // entries, with no hot-key section at all.
        let row = ImbalanceRow::compute(&[VNodeStats::default(); 2], &[VNodeId(0)]);
        let mut old = row.encode();
        old.truncate(21 + row.hottest.len() * 12);
        let back = ImbalanceRow::decode(&old).unwrap();
        assert_eq!(back.hottest, row.hottest);
        assert!(back.hot_keys.is_empty());
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(ImbalanceRow::decode(&[]).is_none());
        assert!(ImbalanceRow::decode(&[0u8; 20]).is_none());
        let row = ImbalanceRow::compute(&[VNodeStats::default()], &[VNodeId(0)]);
        let mut bytes = row.encode();
        bytes.push(0); // trailing garbage
        assert!(ImbalanceRow::decode(&bytes).is_none());
        let mut bytes2 = row.encode();
        bytes2[20] = 5; // claims 5 entries, has fewer
        assert!(ImbalanceRow::decode(&bytes2).is_none());
    }

    #[test]
    fn encode_decode_roundtrip_with_engine_section() {
        let row = ImbalanceRow::compute(&[VNodeStats::default(); 2], &[VNodeId(0), VNodeId(1)])
            .with_hot_keys(vec![HotKeyRow {
                vnode: VNodeId(1),
                key: Key::from("k"),
                count: 5,
            }])
            .with_engine(EngineSummary {
                pending_reclaim: 12,
                bag_peak: 30,
                probe_p99: 4,
                locks: 1000,
                lock_waits: 7,
                rehashes: 2,
                slab_pages: 3,
                slab_free_cells: 40,
                evict_rounds: 6,
            });
        let back = ImbalanceRow::decode(&row.encode()).unwrap();
        assert_eq!(row, back);
        assert_eq!(back.engine.as_ref().unwrap().pending_reclaim, 12);
        assert_eq!(back.engine.as_ref().unwrap().probe_p99, 4);
    }

    #[test]
    fn decode_tolerates_engine_less_rows_and_extra_fields() {
        // A row from a node without the engine section decodes with None.
        let plain = ImbalanceRow::compute(&[VNodeStats::default()], &[VNodeId(0)]);
        let back = ImbalanceRow::decode(&plain.encode()).unwrap();
        assert!(back.engine.is_none());
        // A future node advertising one extra field still decodes; the
        // extra is ignored.
        let row = plain.clone().with_engine(EngineSummary {
            pending_reclaim: 9,
            ..EngineSummary::default()
        });
        let mut bytes = row.encode();
        let count_off = bytes.len() - 9 * 8 - 1;
        bytes[count_off] = 10;
        bytes.extend_from_slice(&77u64.to_le_bytes());
        let back = ImbalanceRow::decode(&bytes).unwrap();
        assert_eq!(back.engine.as_ref().unwrap().pending_reclaim, 9);
    }

    #[test]
    fn decode_rejects_malformed_engine_section() {
        let row = ImbalanceRow::compute(&[VNodeStats::default()], &[VNodeId(0)])
            .with_engine(EngineSummary::default());
        let good = row.encode();
        assert!(ImbalanceRow::decode(&good).is_some());
        // Truncated mid-field.
        assert!(ImbalanceRow::decode(&good[..good.len() - 3]).is_none());
        // Claims more fields than are present.
        let mut bytes = good.clone();
        let count_off = good.len() - 9 * 8 - 1;
        bytes[count_off] = 20;
        assert!(ImbalanceRow::decode(&bytes).is_none());
        // A zero-field section is never emitted — reject it.
        let mut bytes2 = row.clone();
        bytes2.engine = None;
        let mut raw = bytes2.encode();
        raw.push(0);
        assert!(ImbalanceRow::decode(&raw).is_none());
    }

    #[test]
    fn decode_rejects_malformed_hot_key_section() {
        let row =
            ImbalanceRow::compute(&[VNodeStats::default()], &[VNodeId(0)]).with_hot_keys(vec![
                HotKeyRow {
                    vnode: VNodeId(0),
                    key: Key::from("k"),
                    count: 1,
                },
            ]);
        let good = row.encode();
        assert!(ImbalanceRow::decode(&good).is_some());
        // Truncated mid hot-key entry.
        assert!(ImbalanceRow::decode(&good[..good.len() - 1]).is_none());
        // Claims more hot keys than are present.
        let mut bytes = good.clone();
        let hk_count_off = 21 + row.hottest.len() * 12;
        bytes[hk_count_off] = 9;
        assert!(ImbalanceRow::decode(&bytes).is_none());
        // Key length field points past the end of the buffer.
        let mut bytes2 = good;
        let klen_off = hk_count_off + 1 + 12;
        bytes2[klen_off] = 200;
        assert!(ImbalanceRow::decode(&bytes2).is_none());
    }
}
