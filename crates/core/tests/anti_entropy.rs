//! Anti-entropy: replicas that silently diverged (e.g. a write landed on
//! only W of N copies, and nobody ever reads the key) converge through the
//! periodic digest exchange — no reads required.

use sedna_common::{Key, NodeId, Timestamp, Value};
use sedna_core::cluster::SimCluster;
use sedna_core::config::ClusterConfig;
use sedna_net::link::LinkModel;
use sedna_ring::Partitioner;

#[test]
fn diverged_replicas_converge_without_reads() {
    let cfg = ClusterConfig {
        data_nodes: 3,
        partitioner: Partitioner::new(30),
        sync_interval_micros: 300_000,
        ..ClusterConfig::small()
    };
    let mut cluster = SimCluster::build(cfg.clone(), 51, LinkModel::gigabit_lan());
    cluster.run_until_ready(30_000_000);

    // Inject divergence directly into ONE replica's store, bypassing the
    // quorum path entirely (simulating a write whose other copies were
    // lost, or bit-level divergence after a partial failure).
    let key = Key::from("silently-diverged");
    let ts = Timestamp::new(1_000, 0, cfg.client_origin(0));
    cluster
        .node(NodeId(0))
        .store()
        .write_latest(&key, ts, Value::from("only-on-n0"));
    // (With 3 nodes and rf 3, every node replicates every vnode.)
    assert!(!cluster.node(NodeId(1)).store().contains(&key));
    assert!(!cluster.node(NodeId(2)).store().contains(&key));

    // Let anti-entropy sweep all 30 vnodes a few times over: each node
    // probes one vnode per 300 ms.
    cluster.sim.run_until(cluster.sim.now() + 25_000_000);

    for n in 0..3 {
        let node = cluster.node(NodeId(n));
        let got = node
            .store()
            .read_latest(&key)
            .unwrap_or_else(|| panic!("node {n} never converged"));
        assert_eq!(got.value, Value::from("only-on-n0"));
        assert_eq!(got.ts, ts);
    }
    // The exchange path actually ran.
    let exchanges: u64 = (0..3)
        .map(|n| cluster.node(NodeId(n)).stats().sync_exchanges)
        .sum();
    assert!(exchanges > 0, "divergence must have been detected");
}

#[test]
fn consistent_replicas_exchange_only_digests() {
    let cfg = ClusterConfig {
        data_nodes: 3,
        partitioner: Partitioner::new(30),
        sync_interval_micros: 200_000,
        ..ClusterConfig::small()
    };
    let mut cluster = SimCluster::build(cfg.clone(), 52, LinkModel::gigabit_lan());
    cluster.run_until_ready(30_000_000);
    // No data at all: plenty of probes, zero exchanges.
    cluster.sim.run_until(cluster.sim.now() + 10_000_000);
    let probes: u64 = (0..3)
        .map(|n| cluster.node(NodeId(n)).stats().sync_probes)
        .sum();
    let exchanges: u64 = (0..3)
        .map(|n| cluster.node(NodeId(n)).stats().sync_exchanges)
        .sum();
    assert!(probes > 50, "steady probing: {probes}");
    assert_eq!(exchanges, 0, "identical copies must not ship rows");
}
