use sedna_common::{Key, NodeId, Value};
use sedna_core::cluster::SimCluster;
use sedna_core::config::ClusterConfig;
use sedna_core::messages::ClientOp;
use sedna_net::link::LinkModel;
use sedna_ring::Partitioner;

// reuse driver from cluster_sim? simplest: inline minimal writer via ClientCore actor
use sedna_core::client::{ClientCore, ClientEvent};
use sedna_core::messages::SednaMsg;
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};

struct W {
    core: ClientCore,
    n: u64,
    done: u64,
}
impl Actor for W {
    type Msg = SednaMsg;
    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        for (to, m) in self.core.bootstrap() {
            ctx.send(to, m);
        }
        ctx.set_timer(TimerToken(1), 10_000);
    }
    fn on_message(&mut self, from: ActorId, msg: SednaMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        let (events, out) = self.core.on_message(from, msg, now);
        for (to, m) in out {
            ctx.send(to, m);
        }
        for ev in events {
            if matches!(ev, ClientEvent::Ready | ClientEvent::Done { .. }) && self.done < self.n {
                let key = Key::from(format!("k-{}", self.done));
                self.done += 1;
                if let Some((_, out)) = self.core.write_latest(&key, Value::from("v"), ctx.now()) {
                    for (to, m) in out {
                        ctx.send(to, m);
                    }
                }
            }
        }
    }
    fn on_timer(&mut self, _t: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        let (_, out) = self.core.on_tick(ctx.now());
        for (to, m) in out {
            ctx.send(to, m);
        }
        ctx.set_timer(TimerToken(1), 10_000);
    }
}

/// Vacated-vnode garbage collection: after a join rebalances slots away
/// from the old nodes, each node must hold exactly the keys of the vnodes
/// it still owns — no orphaned copies (the leak this test was written to
/// catch), and no lost replicas (total row count stays keys × rf).
#[test]
fn vacated_vnodes_are_garbage_collected_after_join() {
    let cfg = ClusterConfig {
        data_nodes: 4,
        partitioner: Partitioner::new(120),
        ..ClusterConfig::small()
    };
    let mut cluster = SimCluster::build(cfg.clone(), 5, LinkModel::gigabit_lan());
    cluster.sim.set_down(cfg.node_actor(NodeId(3)), true);
    cluster.run_until_ready(30_000_000);
    let w = cluster.sim.add_actor(Box::new(W {
        core: ClientCore::new(cfg.clone(), cfg.client_origin(0)),
        n: 300,
        done: 0,
    }));
    cluster.sim.run_until(cluster.sim.now() + 10_000_000);
    let _ = w;
    eprintln!(
        "before join: {:?}",
        (0..3)
            .map(|n| cluster.node(NodeId(n)).store().len())
            .collect::<Vec<_>>()
    );
    cluster.sim.restart(cfg.node_actor(NodeId(3)));
    cluster.sim.run_until(cluster.sim.now() + 10_000_000);
    let lens: Vec<usize> = (0..4)
        .map(|n| cluster.node(NodeId(n)).store().len())
        .collect();
    // Total rows across the cluster = 300 keys × rf 3, neither orphaned
    // extras nor lost replicas.
    assert_eq!(lens.iter().sum::<usize>(), 900, "rows per node: {lens:?}");
    // And the old nodes actually shed data (GC ran).
    for (n, &len) in lens.iter().enumerate().take(3) {
        assert!(len < 300, "node {n} kept orphaned rows: {len}");
    }
    // Per-node holdings exactly match ring ownership.
    for n in 0..4 {
        let node = cluster.node(NodeId(n));
        let ring = node.ring().unwrap();
        let mut expected = 0;
        for i in 0..300 {
            let key = Key::from(format!("k-{i}"));
            if ring
                .replicas(cfg.partitioner.locate(&key))
                .contains(&NodeId(n))
            {
                expected += 1;
                assert!(node.store().contains(&key), "n{n} missing owned {key:?}");
            } else {
                assert!(!node.store().contains(&key), "n{n} holds unowned {key:?}");
            }
        }
        assert_eq!(node.store().len(), expected);
    }
    let _ = ClientOp::ReadLatest {
        key: Key::from("x"),
    };
}
