//! Batched-vs-unbatched datapath equivalence on the deterministic simulator.
//!
//! Coalescing replica ops into `ReplicaOp::Batch` frames changes how many
//! messages cross the network — and therefore how the sim's jitter RNG
//! reorders them — but must never change what the client observes. These
//! tests run identical scripted workloads with batching off
//! (`max_batch_ops = 1`), with an end-of-call flush window, and with a
//! delayed flush window, and assert the per-operation `ClientResult`
//! sequences are identical under message reordering, replica loss, and
//! read-repair traffic.

use proptest::prelude::*;
use sedna_common::{Key, NodeId, Timestamp, Value};
use sedna_core::client::{ClientCore, ClientEvent};
use sedna_core::cluster::SimCluster;
use sedna_core::config::ClusterConfig;
use sedna_core::messages::{ClientOp, ClientResult, SednaMsg};
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_net::link::LinkModel;

const T_TICK: TimerToken = TimerToken(1);

/// Scripted closed-loop client, as in `cluster_sim.rs`: issues ops one at a
/// time once routing is ready, recording every result.
struct Driver {
    core: ClientCore,
    script: Vec<ClientOp>,
    cursor: usize,
    results: Vec<ClientResult>,
}

impl Driver {
    fn new(cfg: ClusterConfig, origin_index: u32, script: Vec<ClientOp>) -> Self {
        let origin = cfg.client_origin(origin_index);
        Driver {
            core: ClientCore::new(cfg, origin),
            script,
            cursor: 0,
            results: Vec::new(),
        }
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        if self.cursor >= self.script.len() {
            return;
        }
        let op = self.script[self.cursor].clone();
        self.cursor += 1;
        let now = ctx.now();
        let issued = match op {
            ClientOp::WriteLatest { key, value } => self.core.write_latest(&key, value, now),
            ClientOp::ReadLatest { key } => self.core.read_latest(&key, now),
            ClientOp::WriteMany { pairs } => self.core.write_many(&pairs, now),
            ClientOp::ReadMany { keys } => self.core.read_many(&keys, now),
            other => panic!("script does not use {other:?}"),
        };
        assert!(issued.is_some(), "driver only issues after Ready");
        for (to, m) in issued.unwrap().1 {
            ctx.send(to, m);
        }
    }

    fn pump(&mut self, events: Vec<ClientEvent>, ctx: &mut Ctx<'_, SednaMsg>) {
        for ev in events {
            match ev {
                ClientEvent::Ready => self.issue_next(ctx),
                ClientEvent::Done { result, .. } => {
                    self.results.push(result);
                    self.issue_next(ctx);
                }
            }
        }
    }
}

impl Actor for Driver {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        for (to, m) in self.core.bootstrap() {
            ctx.send(to, m);
        }
        ctx.set_timer(T_TICK, 10_000);
    }

    fn on_message(&mut self, from: ActorId, msg: SednaMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        let (events, out) = self.core.on_message(from, msg, now);
        for (to, m) in out {
            ctx.send(to, m);
        }
        self.pump(events, ctx);
    }

    fn on_timer(&mut self, _t: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        let (events, out) = self.core.on_tick(ctx.now());
        for (to, m) in out {
            ctx.send(to, m);
        }
        self.pump(events, ctx);
        ctx.set_timer(T_TICK, 10_000);
    }
}

fn key_of(i: u8) -> Key {
    Key::from(format!("eq-{i}"))
}

/// Renders a result with physical timestamp components erased.
///
/// Timestamps embed the client's virtual issue time, which legitimately
/// shifts by a few microseconds when frame counts change; the *logical*
/// identity of a version is its per-client counter and origin, which must
/// be identical across modes.
fn normalize(results: &[ClientResult]) -> Vec<String> {
    fn one(r: &ClientResult) -> String {
        match r {
            ClientResult::Latest(Some(v)) => {
                format!("latest(#{}@{:?}={:?})", v.ts.counter, v.ts.origin, v.value)
            }
            ClientResult::Many(children) => {
                format!(
                    "many[{}]",
                    children.iter().map(one).collect::<Vec<_>>().join(",")
                )
            }
            other => format!("{other:?}"),
        }
    }
    results.iter().map(one).collect()
}

/// Decodes a generated `(opcode, key index)` script into client ops.
/// Multi-key ops take a contiguous window of distinct keys so that no group
/// writes the same key twice (two in-flight writes to one key would race on
/// replica arrival order, which is legitimately timing-dependent).
fn decode_script(raw: &[(u8, u8)], key_space: u8) -> Vec<ClientOp> {
    raw.iter()
        .enumerate()
        .map(|(op_index, &(code, k))| {
            let k = k % key_space;
            let group = 2 + (code / 4) % 4; // 2..=5 distinct keys
            let window =
                |n: u8| -> Vec<Key> { (0..n).map(|j| key_of((k + j) % key_space)).collect() };
            match code % 4 {
                0 => ClientOp::WriteLatest {
                    key: key_of(k),
                    value: Value::from(format!("v-{op_index}")),
                },
                1 => ClientOp::ReadLatest { key: key_of(k) },
                2 => ClientOp::WriteMany {
                    pairs: window(group.min(key_space))
                        .into_iter()
                        .map(|key| (key, Value::from(format!("v-{op_index}"))))
                        .collect(),
                },
                _ => ClientOp::ReadMany {
                    keys: window(group.min(key_space)),
                },
            }
        })
        .collect()
}

/// Runs `script` against a cluster built from `cfg` and returns the result
/// sequence plus delivery/byte counters for bit-for-bit comparisons.
fn run_script(
    cfg: ClusterConfig,
    seed: u64,
    link: LinkModel,
    script: Vec<ClientOp>,
    down: Option<NodeId>,
    preload: &[(NodeId, Key)],
) -> (Vec<ClientResult>, u64, u64, u64) {
    let want = script.len();
    let mut cluster = SimCluster::build(cfg.clone(), seed, link);
    cluster.run_until_ready(20_000_000);
    for (node, key) in preload {
        cluster.node(*node).store().write_latest(
            key,
            Timestamp::new(1, 0, NodeId(999)),
            Value::from("preloaded"),
        );
    }
    if let Some(n) = down {
        cluster.sim.set_down(cfg.node_actor(n), true);
    }
    let driver = cluster.sim.add_actor(Box::new(Driver::new(cfg, 0, script)));
    cluster.sim.run_until(cluster.sim.now() + 20_000_000);
    let d = cluster.sim.actor_ref::<Driver>(driver).unwrap();
    assert_eq!(
        d.results.len(),
        want,
        "script did not finish: {:?}",
        d.results
    );
    (
        d.results.clone(),
        cluster.sim.stats().messages_delivered,
        cluster.sim.stats().bytes_sent,
        cluster.sim.now(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Under jitter-induced reordering, every batching configuration must
    /// produce exactly the same per-op results as the unbatched datapath.
    #[test]
    fn outcomes_match_under_reordering(
        raw in proptest::collection::vec((0u8..=255, 0u8..=255), 1..12),
        seed in 0u64..1_000,
    ) {
        let script = decode_script(&raw, 8);
        let base = ClusterConfig::small();
        let (off, ..) = run_script(
            base.clone(), seed, LinkModel::gigabit_lan(), script.clone(), None, &[]);
        for (ops, delay) in [(8usize, 0u64), (3, 150)] {
            let cfg = base.clone().with_batching(ops, delay);
            let (on, ..) = run_script(
                cfg, seed, LinkModel::gigabit_lan(), script.clone(), None, &[]);
            prop_assert_eq!(
                normalize(&off), normalize(&on),
                "batching({}, {}) diverged", ops, delay
            );
        }
    }
}

/// Deterministic loss: one replica is unreachable for the whole script, so
/// every frame to it — bare or batched — is dropped. W=2/R=2 quorums must
/// still succeed, batched ack demux must cope with the permanently missing
/// replies, and both modes must agree on every result.
#[test]
fn outcomes_match_with_one_replica_down() {
    let raw: Vec<(u8, u8)> = (0u8..10).map(|i| (i * 7 + 2, i * 3)).collect();
    let script = decode_script(&raw, 8);
    let base = ClusterConfig::small();
    let (off, ..) = run_script(
        base.clone(),
        77,
        LinkModel::gigabit_lan(),
        script.clone(),
        Some(NodeId(2)),
        &[],
    );
    let (on, ..) = run_script(
        base.with_batching(8, 0),
        77,
        LinkModel::gigabit_lan(),
        script,
        Some(NodeId(2)),
        &[],
    );
    assert_eq!(normalize(&off), normalize(&on));
    for r in &off {
        match r {
            ClientResult::Ok | ClientResult::Latest(_) => {}
            ClientResult::Many(children) => {
                for c in children {
                    assert!(
                        matches!(c, ClientResult::Ok | ClientResult::Latest(_)),
                        "quorum op failed with one replica down: {c:?}"
                    );
                }
            }
            other => panic!("quorum op failed with one replica down: {other:?}"),
        }
    }
}

/// Read repair: two replicas are preloaded with a value the third lacks, so
/// multi-key reads observe a mismatch and stage repair pushes — through the
/// batching layer when it is on. Client outcomes and the repaired replica's
/// final state must match across modes.
#[test]
fn repair_traffic_is_equivalent_across_modes() {
    let keys: Vec<Key> = (0u8..4).map(key_of).collect();
    let preload: Vec<(NodeId, Key)> = keys
        .iter()
        .flat_map(|k| [(NodeId(0), k.clone()), (NodeId(1), k.clone())])
        .collect();
    let script = vec![
        ClientOp::ReadMany { keys: keys.clone() },
        ClientOp::ReadMany { keys: keys.clone() },
    ];
    let run = |cfg: ClusterConfig| {
        let want = script.len();
        let mut cluster = SimCluster::build(cfg.clone(), 5, LinkModel::gigabit_lan());
        cluster.run_until_ready(20_000_000);
        for (node, key) in &preload {
            cluster.node(*node).store().write_latest(
                key,
                Timestamp::new(1, 0, NodeId(999)),
                Value::from("preloaded"),
            );
        }
        let driver = cluster
            .sim
            .add_actor(Box::new(Driver::new(cfg, 0, script.clone())));
        cluster.sim.run_until(cluster.sim.now() + 20_000_000);
        let d = cluster.sim.actor_ref::<Driver>(driver).unwrap();
        assert_eq!(d.results.len(), want);
        let repaired: Vec<bool> = keys
            .iter()
            .map(|k| cluster.node(NodeId(2)).store().contains(k))
            .collect();
        (d.results.clone(), repaired)
    };
    let off = run(ClusterConfig::small());
    let on = run(ClusterConfig::small().with_batching(8, 0));
    assert_eq!(off, on);
    // The reads themselves must have observed the preloaded value.
    match &off.0[0] {
        ClientResult::Many(children) => {
            for c in children {
                match c {
                    ClientResult::Latest(Some(v)) => {
                        assert_eq!(v.value, Value::from("preloaded"))
                    }
                    other => panic!("unexpected read result: {other:?}"),
                }
            }
        }
        other => panic!("unexpected: {other:?}"),
    }
}

/// Acceptance gate: `max_batch_ops = 1` must reproduce the legacy per-key
/// datapath bit-for-bit — same results, same delivery count, same bytes on
/// the wire, same final virtual time — even with a non-zero delay window
/// configured.
#[test]
fn max_batch_ops_one_is_bit_for_bit_identical() {
    let raw: Vec<(u8, u8)> = (0u8..12).map(|i| (i * 5 + 1, i * 11)).collect();
    let script = decode_script(&raw, 8);
    let legacy = run_script(
        ClusterConfig::small(),
        42,
        LinkModel::gigabit_lan(),
        script.clone(),
        None,
        &[],
    );
    let gated = run_script(
        ClusterConfig::small().with_batching(1, 777),
        42,
        LinkModel::gigabit_lan(),
        script,
        None,
        &[],
    );
    assert_eq!(legacy, gated);
}

/// Random frame loss: outcomes can legitimately differ between modes (the
/// drop RNG sees different message streams), but each mode on its own must
/// uphold the quorum contract — a read either misses or returns exactly the
/// value the script wrote for that key.
#[test]
fn lossy_link_upholds_read_your_writes_per_mode() {
    let keys: Vec<Key> = (0u8..6).map(key_of).collect();
    let mut script: Vec<ClientOp> = vec![ClientOp::WriteMany {
        pairs: keys
            .iter()
            .map(|k| (k.clone(), Value::from("stable")))
            .collect(),
    }];
    script.push(ClientOp::ReadMany { keys: keys.clone() });
    for cfg in [
        ClusterConfig::small(),
        ClusterConfig::small().with_batching(8, 0),
    ] {
        let (results, ..) = run_script(
            cfg,
            7,
            LinkModel::lossy_lan(0.02),
            script.clone(),
            None,
            &[],
        );
        let reads = match &results[1] {
            ClientResult::Many(children) => children,
            other => panic!("unexpected: {other:?}"),
        };
        for c in reads {
            match c {
                ClientResult::Latest(Some(v)) => assert_eq!(v.value, Value::from("stable")),
                ClientResult::Latest(None) | ClientResult::Failed => {}
                other => panic!("unexpected read result: {other:?}"),
            }
        }
    }
}
