//! Chaos test: continuous load while data nodes crash and recover at
//! random. Safety property checked throughout: a key's `read_latest`
//! must never travel backwards past the last *acknowledged* write
//! (single writer per key, monotonically numbered values) — quorum
//! intersection (`R+W>N`) guarantees it as long as at most one replica of
//! the key is down at a time, which the scenario maintains.

use sedna_common::rng::Xoshiro256;
use sedna_common::{Key, NodeId, Value};
use sedna_core::client::{ClientCore, ClientEvent};
use sedna_core::cluster::SimCluster;
use sedna_core::config::ClusterConfig;
use sedna_core::fault::RestartKind;
use sedna_core::messages::{ClientResult, SednaMsg};
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_net::link::LinkModel;
use sedna_persist::{PersistEngine, PersistMode};

const KEYS: u64 = 16;
const T_TICK: TimerToken = TimerToken(1);

/// Closed-loop mixed workload: alternates writes and reads over a small
/// key set, retrying failures, and checks read monotonicity.
struct ChaosDriver {
    core: ClientCore,
    rng: Xoshiro256,
    /// Per-key: last acknowledged sequence number.
    acked: [u64; KEYS as usize],
    /// Per-key: next sequence number to write.
    next_seq: [u64; KEYS as usize],
    /// What the in-flight op is: None=idle, Some((key, Some(seq)))=write,
    /// Some((key, None))=read.
    in_flight: Option<(u64, Option<u64>)>,
    pub ops_done: u64,
    pub violations: Vec<String>,
}

impl ChaosDriver {
    fn issue(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        let key_idx = self.rng.next_below(KEYS);
        let key = Key::from(format!("chaos-{key_idx}"));
        let now = ctx.now();
        let write = self.rng.chance(0.5);
        let issued = if write {
            let seq = self.next_seq[key_idx as usize];
            self.next_seq[key_idx as usize] += 1;
            self.in_flight = Some((key_idx, Some(seq)));
            self.core
                .write_latest(&key, Value::from(format!("{seq}")), now)
        } else {
            self.in_flight = Some((key_idx, None));
            self.core.read_latest(&key, now)
        };
        if let Some((_, out)) = issued {
            for (to, m) in out {
                ctx.send(to, m);
            }
        } else {
            self.in_flight = None;
        }
    }

    fn complete(&mut self, result: ClientResult, ctx: &mut Ctx<'_, SednaMsg>) {
        let Some((key_idx, kind)) = self.in_flight.take() else {
            return;
        };
        self.ops_done += 1;
        match (kind, result) {
            (Some(seq), ClientResult::Ok) => {
                let slot = &mut self.acked[key_idx as usize];
                *slot = (*slot).max(seq);
            }
            (Some(_), _) => {} // failed/outdated write: no promise made
            (None, ClientResult::Latest(Some(v))) => {
                let got: u64 = String::from_utf8_lossy(v.value.as_bytes())
                    .parse()
                    .unwrap_or(0);
                let floor = self.acked[key_idx as usize];
                if got < floor {
                    self.violations.push(format!(
                        "chaos-{key_idx}: read seq {got} below acked {floor}"
                    ));
                }
            }
            (None, ClientResult::Latest(None)) => {
                if self.next_seq[key_idx as usize] > 0 && self.acked[key_idx as usize] > 0 {
                    self.violations
                        .push(format!("chaos-{key_idx}: acked data vanished"));
                }
            }
            (None, _) => {} // read failed outright: retried next round
        }
        self.issue(ctx);
    }
}

impl Actor for ChaosDriver {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        for (to, m) in self.core.bootstrap() {
            ctx.send(to, m);
        }
        ctx.set_timer(T_TICK, 10_000);
    }

    fn on_message(&mut self, from: ActorId, msg: SednaMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        let (events, out) = self.core.on_message(from, msg, now);
        for (to, m) in out {
            ctx.send(to, m);
        }
        for ev in events {
            match ev {
                ClientEvent::Ready => self.issue(ctx),
                ClientEvent::Done { result, .. } => self.complete(result, ctx),
            }
        }
    }

    fn on_timer(&mut self, _t: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        let (events, out) = self.core.on_tick(ctx.now());
        for (to, m) in out {
            ctx.send(to, m);
        }
        for ev in events {
            if let ClientEvent::Done { result, .. } = ev {
                self.complete(result, ctx);
            }
        }
        ctx.set_timer(T_TICK, 10_000);
    }
}

#[test]
fn reads_never_regress_under_node_churn() {
    // Nodes run write-ahead logs and every restart *recovers* from them
    // (the realistic crash/restart cycle); the empty-restart flavour —
    // the paper's memcached baseline where a restart forgets everything —
    // is exercised separately below.
    let dir = std::env::temp_dir().join(format!("sedna-chaos-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mode = PersistMode::WriteAhead {
        snapshot_interval_micros: 10_000_000,
    };
    let cfg = ClusterConfig {
        persist: mode,
        ..ClusterConfig::paper()
    };
    let persist_root = dir.clone();
    let mut cluster =
        SimCluster::build_with_persist(cfg.clone(), 71, LinkModel::gigabit_lan(), move |node| {
            Some(PersistEngine::new(persist_root.join(format!("node-{}", node.0)), mode).unwrap())
        });
    cluster.run_until_ready(30_000_000);
    let driver = cluster.sim.add_actor(Box::new(ChaosDriver {
        core: ClientCore::new(cfg.clone(), cfg.client_origin(0)),
        rng: Xoshiro256::seeded(72),
        acked: [0; KEYS as usize],
        next_seq: [0; KEYS as usize],
        in_flight: None,
        ops_done: 0,
        violations: Vec::new(),
    }));

    // Churn: every 4 s of virtual time, crash one random up node (at most
    // one down at a time so every key keeps a read/write quorum); bring it
    // back 8 s later. 60 s total. Between rounds, the client's metric
    // counters must only ever grow — fault injection may fail ops, but it
    // must never make a counter move backwards.
    let mut chaos_rng = Xoshiro256::seeded(73);
    let mut down: Option<NodeId> = None;
    let mut prev_counters: std::collections::BTreeMap<String, u64> = Default::default();
    for round in 0..15 {
        cluster.sim.run_until((round + 1) * 4_000_000 + 30_000_000);
        let snap = cluster
            .sim
            .actor_ref::<ChaosDriver>(driver)
            .unwrap()
            .core
            .obs()
            .snapshot();
        for (name, &was) in &prev_counters {
            assert!(
                snap.counter(name) >= was,
                "counter {name} went backwards in round {round}: {} < {was}",
                snap.counter(name)
            );
        }
        prev_counters = snap.counters;
        if let Some(n) = down.take() {
            cluster.restart_node(n, RestartKind::Recover);
        } else {
            let victim = NodeId(chaos_rng.next_below(cfg.data_nodes as u64) as u32);
            cluster.crash_node(victim);
            down = Some(victim);
        }
    }
    if let Some(n) = down {
        cluster.restart_node(n, RestartKind::Recover);
    }
    cluster.sim.run_until(cluster.sim.now() + 5_000_000);

    let d = cluster.sim.actor_ref::<ChaosDriver>(driver).unwrap();
    assert!(
        d.violations.is_empty(),
        "safety violations:\n{}",
        d.violations.join("\n")
    );
    assert!(
        d.ops_done > 5_000,
        "driver made progress: {} ops",
        d.ops_done
    );

    // Observability invariants under fault injection:
    //  * every completed op carried a unique trace — no double completion;
    //  * the read outcome counters partition the read total exactly.
    let obs = d.core.obs();
    assert_eq!(obs.trace_duplicates(), 0, "a trace completed twice");
    assert_eq!(
        obs.traces_completed(),
        d.ops_done,
        "one trace per completed op"
    );
    let snap = obs.snapshot();
    assert_eq!(
        snap.counter("sedna_client_reads_ok_total")
            + snap.counter("sedna_client_reads_degraded_total"),
        snap.counter("sedna_client_reads_total"),
        "ok + degraded reads must partition the read total"
    );
    assert!(
        snap.counter("sedna_client_reads_degraded_total") > 0,
        "60 s of node churn must have degraded at least one quorum read"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The explicit empty-restart variant: restarted nodes come back with no
/// memory and no WAL (the unmodified-memcached baseline). With at most
/// one node down at a time and a loss-free LAN, every live replica sees
/// every write, so quorum intersection still keeps reads monotonic —
/// and anti-entropy must re-fill the amnesiac replica until all replicas
/// of every key agree again.
#[test]
fn empty_restarts_keep_reads_monotonic_and_reconverge() {
    // Small ring + fast anti-entropy so the final convergence check is
    // reachable: one vnode syncs per node per interval, so two passes
    // over ~15 owned vnodes fit in a few virtual seconds.
    let cfg = ClusterConfig {
        data_nodes: 5,
        partitioner: sedna_ring::Partitioner::new(25),
        sync_interval_micros: 200_000,
        ..ClusterConfig::paper()
    };
    let mut cluster = SimCluster::build(cfg.clone(), 171, LinkModel::gigabit_lan());
    cluster.run_until_ready(30_000_000);
    let driver = cluster.sim.add_actor(Box::new(ChaosDriver {
        core: ClientCore::new(cfg.clone(), cfg.client_origin(0)),
        rng: Xoshiro256::seeded(172),
        acked: [0; KEYS as usize],
        next_seq: [0; KEYS as usize],
        in_flight: None,
        ops_done: 0,
        violations: Vec::new(),
    }));

    let mut chaos_rng = Xoshiro256::seeded(173);
    let mut down: Option<NodeId> = None;
    for round in 0..10 {
        cluster.sim.run_until((round + 1) * 3_000_000 + 30_000_000);
        if let Some(n) = down.take() {
            cluster.restart_node(n, RestartKind::Empty);
        } else {
            let victim = NodeId(chaos_rng.next_below(cfg.data_nodes as u64) as u32);
            cluster.crash_node(victim);
            down = Some(victim);
        }
    }
    if let Some(n) = down {
        cluster.restart_node(n, RestartKind::Empty);
    }

    let d = cluster.sim.actor_ref::<ChaosDriver>(driver).unwrap();
    assert!(
        d.violations.is_empty(),
        "safety violations under empty restarts:\n{}",
        d.violations.join("\n")
    );
    assert!(d.ops_done > 1_000, "driver stalled: {} ops", d.ops_done);

    // Quiesce two full anti-entropy passes (2 × 25 vnodes × 200 ms plus
    // margin), then every key's replicas must agree on its freshest
    // timestamp — the amnesiac replicas have been re-filled.
    cluster
        .sim
        .run_until(cluster.sim.now() + 2 * 25 * 200_000 + 2_000_000);
    let map = cluster
        .sim
        .actor_ref::<sedna_core::manager::ClusterManager>(cfg.manager_actor())
        .unwrap()
        .map()
        .clone();
    for i in 0..KEYS {
        let key = Key::from(format!("chaos-{i}"));
        let replicas = map.replicas(cfg.partitioner.locate(&key));
        let versions: Vec<_> = replicas
            .iter()
            .map(|&r| cluster.node(r).store().read_latest(&key).map(|v| v.ts))
            .collect();
        assert!(
            versions.windows(2).all(|w| w[0] == w[1]),
            "chaos-{i}: replicas {replicas:?} disagree after quiescence: {versions:?}"
        );
    }
}
