//! The observability layer end to end: a quorum read that observes a
//! stale/missing replica must leave a `StaleReplica` journal event naming
//! the trace, the vnode, and the lagging replica; the slow-op threshold
//! must promote full span trees into the journal; and the cluster-wide
//! merge helpers must surface all of it.

use sedna_common::{Key, NodeId, Value};
use sedna_core::cluster::{Gateway, SimCluster};
use sedna_core::config::ClusterConfig;
use sedna_core::messages::{ClientFrame, ClientOp, ClientResult, SednaMsg};
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_net::link::LinkModel;
use sedna_obs::journal::EventKind;
use sedna_obs::trace::SpanKind;
use sedna_replication::quorum::QuorumConfig;

const T_TICK: TimerToken = TimerToken(1);

/// Drives ops through a [`Gateway`] over the wire (so the gateway's own
/// client core — whose journal the cluster merge collects — does the
/// quorum work). The test enqueues ops between sim steps via `actor_mut`.
struct Requester {
    gw: ActorId,
    queue: Vec<ClientOp>,
    next_id: u64,
    pub results: Vec<(u64, ClientResult)>,
}

impl Actor for Requester {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        ctx.set_timer(T_TICK, 10_000);
    }

    fn on_message(&mut self, _from: ActorId, msg: SednaMsg, _ctx: &mut Ctx<'_, SednaMsg>) {
        if let SednaMsg::Client(ClientFrame::Response { op_id, result }) = msg {
            self.results.push((op_id, result));
        }
    }

    fn on_timer(&mut self, _t: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        if !self.queue.is_empty() {
            let op = self.queue.remove(0);
            let op_id = self.next_id;
            self.next_id += 1;
            ctx.send(
                self.gw,
                SednaMsg::Client(ClientFrame::Request { op_id, op }),
            );
        }
        ctx.set_timer(T_TICK, 10_000);
    }
}

/// R=3 so every replica's reply participates in the quorum decision — the
/// replica that missed the write deterministically surfaces as stale.
/// Anti-entropy is pushed far out so only read repair can heal the gap,
/// and the 1 µs slow-op threshold promotes every op's span tree.
fn observability_config() -> ClusterConfig {
    ClusterConfig {
        quorum: QuorumConfig { n: 3, r: 3, w: 2 },
        sync_interval_micros: 600_000_000,
        ..ClusterConfig::small()
    }
    .with_slow_op_threshold(1)
}

#[test]
fn stale_replica_read_journals_the_lag_and_slow_ops_carry_span_trees() {
    let cfg = observability_config();
    let mut cluster = SimCluster::build(cfg.clone(), 17, LinkModel::gigabit_lan());
    let gw = cluster.add_gateway(0);
    cluster.run_until_ready(30_000_000);

    let key = Key::from("obs-stale-key");
    let vnode = cfg.partitioner.locate(&key);
    let victim = cluster.node(NodeId(0)).ring().unwrap().replicas(vnode)[0];

    // The requester drives the gateway over the client wire protocol.
    let req = cluster.sim.add_actor(Box::new(Requester {
        gw,
        queue: Vec::new(),
        next_id: 0,
        results: Vec::new(),
    }));
    cluster.sim.run_until(cluster.sim.now() + 100_000);

    // Write while the gateway is partitioned from one replica: W=2 still
    // succeeds, the victim misses the version. (Partitioning — rather than
    // taking the node down — keeps the victim's coordination session alive
    // so membership never churns.)
    cluster.sim.partition_pair(gw, cfg.node_actor(victim));
    cluster
        .sim
        .actor_mut::<Requester>(req)
        .unwrap()
        .queue
        .push(ClientOp::WriteLatest {
            key: key.clone(),
            value: Value::from("fresh"),
        });
    let deadline = cluster.sim.now() + 10_000_000;
    while cluster.sim.now() < deadline {
        cluster.sim.run_until(cluster.sim.now() + 100_000);
        if !cluster
            .sim
            .actor_ref::<Requester>(req)
            .unwrap()
            .results
            .is_empty()
        {
            break;
        }
    }
    {
        let r = cluster.sim.actor_ref::<Requester>(req).unwrap();
        assert_eq!(r.results.len(), 1, "write never completed");
        assert_eq!(r.results[0].1, ClientResult::Ok, "W=2 write must succeed");
    }
    assert!(
        !cluster.node(victim).store().contains(&key),
        "victim was partitioned; it must have missed the write"
    );

    // Heal the partition (anti-entropy stays minutes away) and read with
    // R=3: the victim's Missing reply makes the quorum Inconsistent.
    cluster.sim.heal_pair(gw, cfg.node_actor(victim));
    cluster.sim.run_until(cluster.sim.now() + 200_000);
    assert!(
        !cluster.node(victim).store().contains(&key),
        "only read repair may heal the gap in this test"
    );
    cluster
        .sim
        .actor_mut::<Requester>(req)
        .unwrap()
        .queue
        .push(ClientOp::ReadLatest { key: key.clone() });
    let deadline = cluster.sim.now() + 10_000_000;
    while cluster.sim.now() < deadline {
        cluster.sim.run_until(cluster.sim.now() + 100_000);
        if cluster
            .sim
            .actor_ref::<Requester>(req)
            .unwrap()
            .results
            .len()
            > 1
        {
            break;
        }
    }
    {
        let r = cluster.sim.actor_ref::<Requester>(req).unwrap();
        assert_eq!(r.results.len(), 2, "read never completed");
        match &r.results[1].1 {
            ClientResult::Latest(Some(v)) => assert_eq!(v.value, Value::from("fresh")),
            other => panic!("degraded read must still answer fresh, got {other:?}"),
        }
    }

    // --- journal: the stale replica is named, with the read's trace ------
    let obs = cluster.sim.actor_ref::<Gateway>(gw).unwrap();
    let obs = obs.core().obs();
    let events = obs.journal().events();
    let stale = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::StaleReplica {
                trace,
                vnode: v,
                lagging,
                missing,
                lag_micros,
                age_micros,
            } => Some((trace, v, lagging, missing, lag_micros, age_micros)),
            _ => None,
        })
        .expect("quorum read over a lagging replica must journal StaleReplica");
    assert_eq!(stale.1, vnode, "event names the key's vnode");
    assert_eq!(stale.2, victim, "event names the replica that lagged");
    assert!(stale.3, "the victim had no copy at all");
    assert_eq!(stale.4, 0, "a missing replica has no version to diff");
    assert!(
        stale.5 > 0,
        "the missed update was written strictly before the read"
    );
    // The staleness-lag histogram saw the same detection.
    let snap = obs.snapshot();
    assert_eq!(snap.hists["sedna_staleness_age_micros"].count, 1);

    // --- journal: the 1 µs threshold promoted the read's full span tree --
    let slow_spans = events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::SlowOp { trace, spans, .. } if *trace == stale.0 => Some(spans.clone()),
            _ => None,
        })
        .expect("slow-op promotion must preserve the degraded read's trace");
    assert!(slow_spans.iter().any(|s| matches!(s.kind, SpanKind::Issue)));
    // The reader answers as soon as inconsistency is provable, so the tree
    // holds the replies that decided the quorum — at least two round
    // trips, each with its closing RPC span and the node's measured apply
    // time, and the victim's (Missing) reply among them.
    let rpc_replicas: Vec<NodeId> = slow_spans
        .iter()
        .filter_map(|s| match s.kind {
            SpanKind::ReplicaRpc { replica } => Some(replica),
            _ => None,
        })
        .collect();
    assert!(
        rpc_replicas.len() >= 2,
        "quorum read needs at least two replica round trips: {rpc_replicas:?}"
    );
    assert!(
        rpc_replicas.contains(&victim),
        "the lagging replica's reply is part of the decision"
    );
    for replica in &rpc_replicas {
        assert!(
            slow_spans
                .iter()
                .any(|s| matches!(s.kind, SpanKind::NodeApply { replica: r, .. } if r == *replica)),
            "each ack must carry the node's measured apply time ({replica:?})"
        );
    }
    for s in &slow_spans {
        if let SpanKind::ReplicaRpc { .. } = s.kind {
            assert!(s.end > s.start, "RPC spans cover the wire round trip");
        }
    }
    assert!(slow_spans
        .iter()
        .any(|s| matches!(s.kind, SpanKind::QuorumAssembly)));
    assert!(
        slow_spans
            .iter()
            .any(|s| matches!(s.kind, SpanKind::ReadRepair { replica } if replica == victim)),
        "the span tree records the recovery push to the lagging replica"
    );

    // --- metrics: quorum-health counters agree with the story ------------
    let snap = obs.snapshot();
    assert_eq!(snap.counter("sedna_client_reads_total"), 1);
    assert_eq!(snap.counter("sedna_client_reads_degraded_total"), 1);
    assert_eq!(snap.counter("sedna_client_writes_ok_total"), 1);
    assert!(snap.counter("sedna_client_stale_replicas_total") >= 1);
    assert!(snap.counter("sedna_client_read_repairs_total") >= 1);
    assert_eq!(obs.traces_completed(), 2);
    assert_eq!(obs.trace_duplicates(), 0);

    // --- cluster-wide merge: the gateway's journal and every node's ------
    // registry fold into one view.
    let merged = cluster.metrics_snapshot();
    assert_eq!(merged.counter("sedna_client_reads_degraded_total"), 1);
    assert!(
        merged.gauge("sedna_node_writes") >= 2,
        "nodes saw the write"
    );
    assert!(
        merged.gauge("sedna_net_messages_delivered") > 0,
        "net runtime stats folded in"
    );
    assert!(
        merged.hists.contains_key("sedna_node_apply_nanos"),
        "node-side apply histogram merged"
    );
    let text = cluster.metrics_text();
    assert!(text.contains("sedna_client_reads_degraded_total 1"));
    assert!(text.contains("# TYPE sedna_client_read_latency_micros summary"));
    assert!(text.contains("sedna_client_read_latency_micros{quantile=\"0.99\"}"));
    let json = cluster.metrics_json();
    assert!(json.contains("\"sedna_client_reads_degraded_total\""));
    assert!(
        cluster.journal_events().iter().any(|e| matches!(
            e.kind,
            EventKind::StaleReplica { lagging, .. } if lagging == victim
        )),
        "cluster journal merge surfaces the gateway's stale-replica event"
    );

    // --- and read repair actually healed the gap -------------------------
    cluster.sim.run_until(cluster.sim.now() + 2_000_000);
    assert!(
        cluster.node(victim).store().contains(&key),
        "read recovery must push the fresh version to the lagging replica"
    );

    // --- the repair's ack closed the convergence window ------------------
    let obs = cluster.sim.actor_ref::<Gateway>(gw).unwrap().core().obs();
    let snap = obs.snapshot();
    assert!(
        snap.counter("sedna_client_repair_acks_total") >= 1,
        "the victim must acknowledge the repair push"
    );
    assert_eq!(
        snap.gauge("sedna_client_outstanding_repairs"),
        0,
        "outstanding repairs drain once acks arrive"
    );
    assert!(
        snap.hists["sedna_staleness_convergence_micros"].count >= 1,
        "detection→ack time is the time-to-convergence sample"
    );
    let windows = obs.staleness();
    assert_eq!(windows.outstanding(), 0);
    assert!(windows.convergence.merged(cluster.sim.now()).count >= 1);
}

/// With metrics disabled the datapath still works and the registry renders
/// empty — handles are no-ops, not panics.
#[test]
fn disabled_registry_records_nothing_but_datapath_is_unaffected() {
    let cfg = observability_config().with_metrics(false);
    let mut cluster = SimCluster::build(cfg.clone(), 18, LinkModel::gigabit_lan());
    let gw = cluster.add_gateway(0);
    cluster.run_until_ready(30_000_000);
    let req = cluster.sim.add_actor(Box::new(Requester {
        gw,
        queue: vec![ClientOp::WriteLatest {
            key: Key::from("quiet"),
            value: Value::from("v"),
        }],
        next_id: 0,
        results: Vec::new(),
    }));
    let deadline = cluster.sim.now() + 10_000_000;
    while cluster.sim.now() < deadline {
        cluster.sim.run_until(cluster.sim.now() + 100_000);
        if !cluster
            .sim
            .actor_ref::<Requester>(req)
            .unwrap()
            .results
            .is_empty()
        {
            break;
        }
    }
    let r = cluster.sim.actor_ref::<Requester>(req).unwrap();
    assert_eq!(r.results.len(), 1);
    assert_eq!(r.results[0].1, ClientResult::Ok);
    let snap = cluster
        .sim
        .actor_ref::<Gateway>(gw)
        .unwrap()
        .core()
        .obs()
        .snapshot();
    assert_eq!(snap.counter("sedna_client_writes_ok_total"), 0);
}
