//! Load-driven rebalancing end to end: skewed read traffic makes some
//! nodes hot; their published imbalance rows trigger the manager to move
//! hot vnodes to cold nodes; data follows and stays readable.

use sedna_common::{Key, NodeId, Value};
use sedna_core::client::{ClientCore, ClientEvent};
use sedna_core::cluster::SimCluster;
use sedna_core::config::ClusterConfig;
use sedna_core::manager::ClusterManager;
use sedna_core::messages::{ClientResult, SednaMsg};
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_net::link::LinkModel;
use sedna_ring::Partitioner;

/// Hammers a small set of keys with round-robin reads (after seeding
/// them), concentrating load on those keys' vnodes.
struct HotReader {
    core: ClientCore,
    keys: Vec<Key>,
    seeded: usize,
    cursor: usize,
    pub reads_done: u64,
}

impl Actor for HotReader {
    type Msg = SednaMsg;
    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        for (to, m) in self.core.bootstrap() {
            ctx.send(to, m);
        }
        ctx.set_timer(TimerToken(1), 10_000);
    }
    fn on_message(&mut self, from: ActorId, msg: SednaMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        let (events, out) = self.core.on_message(from, msg, now);
        for (to, m) in out {
            ctx.send(to, m);
        }
        for ev in events {
            match ev {
                ClientEvent::Ready => {
                    let key = self.keys[0].clone();
                    let issued = self
                        .core
                        .write_latest(&key, Value::from("hot"), ctx.now())
                        .expect("ready");
                    for (to, m) in issued.1 {
                        ctx.send(to, m);
                    }
                }
                ClientEvent::Done { result, .. } => {
                    if self.seeded < self.keys.len() {
                        assert_eq!(result, ClientResult::Ok);
                        self.seeded += 1;
                        if self.seeded < self.keys.len() {
                            let key = self.keys[self.seeded].clone();
                            let issued = self
                                .core
                                .write_latest(&key, Value::from("hot"), ctx.now())
                                .expect("ready");
                            for (to, m) in issued.1 {
                                ctx.send(to, m);
                            }
                            continue;
                        }
                    } else {
                        self.reads_done += 1;
                    }
                    self.cursor = (self.cursor + 1) % self.keys.len();
                    let key = self.keys[self.cursor].clone();
                    if let Some((_, out)) = self.core.read_latest(&key, ctx.now()) {
                        for (to, m) in out {
                            ctx.send(to, m);
                        }
                    }
                }
            }
        }
    }
    fn on_timer(&mut self, _t: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        let (_, out) = self.core.on_tick(ctx.now());
        for (to, m) in out {
            ctx.send(to, m);
        }
        ctx.set_timer(TimerToken(1), 10_000);
    }
}

#[test]
fn skewed_load_triggers_vnode_moves_and_data_follows() {
    // 5 nodes, rf 3: round-robin reads of 6 keys heat their vnodes'
    // replica sets unevenly across the 5 nodes, exceeding the trigger.
    let cfg = ClusterConfig {
        data_nodes: 5,
        partitioner: Partitioner::new(100),
        stats_publish_interval_micros: 200_000,
        rebalance_trigger_ratio: 1.2,
        rebalance_max_moves: 2,
        rebalance_check_every: 3,
        ..ClusterConfig::paper()
    };
    let mut cluster = SimCluster::build(cfg.clone(), 21, LinkModel::gigabit_lan());
    cluster.run_until_ready(30_000_000);

    let keys: Vec<Key> = (0..6)
        .map(|i| Key::from(format!("scorching-{i}")))
        .collect();
    let epoch_before = cluster.node(NodeId(0)).ring().unwrap().epoch();

    let reader = cluster.sim.add_actor(Box::new(HotReader {
        core: ClientCore::new(cfg.clone(), cfg.client_origin(0)),
        keys: keys.clone(),
        seeded: 0,
        cursor: 0,
        reads_done: 0,
    }));
    // Closed-loop reads for ~15 s of virtual time: plenty of stats
    // publishes and manager checks.
    cluster.sim.run_until(cluster.sim.now() + 15_000_000);

    let mgr = cluster
        .sim
        .actor_ref::<ClusterManager>(cfg.manager_actor())
        .unwrap();
    assert!(
        mgr.rebalance_moves() > 0,
        "skewed load must trigger at least one vnode move"
    );
    mgr.map().check_invariants();
    assert!(mgr.map().epoch() > epoch_before, "ring republished");
    let final_map = mgr.map().clone();

    // Reads never broke and every hot key sits on its current replicas.
    let r = cluster.sim.actor_ref::<HotReader>(reader).unwrap();
    assert!(
        r.reads_done > 1_000,
        "reader made progress: {}",
        r.reads_done
    );
    cluster.sim.run_until(cluster.sim.now() + 2_000_000);
    for key in &keys {
        let vnode = cfg.partitioner.locate(key);
        for &n in final_map.replicas(vnode) {
            assert!(
                cluster.node(n).store().contains(key),
                "{n:?} missing {key:?} after rebalance"
            );
        }
    }
}

#[test]
fn balanced_load_never_rebalances() {
    let cfg = ClusterConfig {
        data_nodes: 5,
        partitioner: Partitioner::new(100),
        stats_publish_interval_micros: 200_000,
        rebalance_trigger_ratio: 1.3,
        rebalance_check_every: 3,
        ..ClusterConfig::paper()
    };
    let mut cluster = SimCluster::build(cfg.clone(), 22, LinkModel::gigabit_lan());
    cluster.run_until_ready(30_000_000);
    // No client traffic at all: rows publish zeros; ratio is undefined.
    cluster.sim.run_until(cluster.sim.now() + 8_000_000);
    let mgr = cluster
        .sim
        .actor_ref::<ClusterManager>(cfg.manager_actor())
        .unwrap();
    assert_eq!(mgr.rebalance_moves(), 0, "quiet cluster must not churn");
}
