//! The data path under message loss: quorum operations absorb most drops
//! (only 2 of 3 replicas need to answer), the client deadline turns the
//! rest into explicit `Failed` results, and application-level retries
//! always converge — with read-repair healing whatever partial state the
//! lossy writes left behind.

use sedna_common::{Key, NodeId, Value};
use sedna_core::client::{ClientCore, ClientEvent};
use sedna_core::cluster::SimCluster;
use sedna_core::config::ClusterConfig;
use sedna_core::messages::{ClientResult, SednaMsg};
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_net::link::LinkModel;
use sedna_net::sim::SimConfig;

/// Writes `total` keys, retrying each until it succeeds; then reads them
/// all back, retrying reads that fail outright.
struct RetryDriver {
    core: ClientCore,
    total: u64,
    done_writes: u64,
    done_reads: u64,
    phase_reads: bool,
    pub write_retries: u64,
    pub read_retries: u64,
    pub wrong_values: u64,
    pub finished: bool,
}

const T_TICK: TimerToken = TimerToken(1);

impl RetryDriver {
    fn key(&self, i: u64) -> Key {
        Key::from(format!("lossy-{i}"))
    }

    fn issue(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        let issued = if !self.phase_reads {
            self.core
                .write_latest(&self.key(self.done_writes), Value::from("v"), now)
        } else {
            self.core.read_latest(&self.key(self.done_reads), now)
        };
        if let Some((_, out)) = issued {
            for (to, m) in out {
                ctx.send(to, m);
            }
        }
    }
}

impl Actor for RetryDriver {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        for (to, m) in self.core.bootstrap() {
            ctx.send(to, m);
        }
        ctx.set_timer(T_TICK, 10_000);
    }

    fn on_message(&mut self, from: ActorId, msg: SednaMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        let (events, out) = self.core.on_message(from, msg, now);
        for (to, m) in out {
            ctx.send(to, m);
        }
        for ev in events {
            match ev {
                ClientEvent::Ready => self.issue(ctx),
                ClientEvent::Done { result, .. } => {
                    if !self.phase_reads {
                        match result {
                            ClientResult::Ok => {
                                self.done_writes += 1;
                                if self.done_writes == self.total {
                                    self.phase_reads = true;
                                }
                            }
                            // Loss-induced failure (or even Outdated from a
                            // duplicated retry racing itself): retry.
                            _ => self.write_retries += 1,
                        }
                    } else {
                        match result {
                            ClientResult::Latest(Some(v)) => {
                                if v.value != Value::from("v") {
                                    self.wrong_values += 1;
                                }
                                self.done_reads += 1;
                                if self.done_reads == self.total {
                                    self.finished = true;
                                    return;
                                }
                            }
                            ClientResult::Latest(None) => {
                                // A write that reported Failed may still have
                                // landed on <W replicas; reads must never
                                // return a wrong value, but a miss means our
                                // retried write truly never committed — which
                                // cannot happen since we retried to Ok.
                                self.wrong_values += 1;
                                self.done_reads += 1;
                            }
                            _ => self.read_retries += 1,
                        }
                    }
                    self.issue(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, _t: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        let (events, out) = self.core.on_tick(ctx.now());
        for (to, m) in out {
            ctx.send(to, m);
        }
        for ev in events {
            if let ClientEvent::Done { .. } = ev {
                // Deadline-expired op: retry it.
                if !self.phase_reads {
                    self.write_retries += 1;
                } else {
                    self.read_retries += 1;
                }
                self.issue(ctx);
            }
        }
        ctx.set_timer(T_TICK, 10_000);
    }
}

#[test]
fn retried_operations_converge_under_two_percent_loss() {
    let sim_config = SimConfig {
        seed: 41,
        link: LinkModel::lossy_lan(0.02),
        ..SimConfig::default()
    };
    let cfg = ClusterConfig::small();
    let mut cluster = SimCluster::build_with_sim_config(cfg.clone(), sim_config, |_| None);
    cluster.run_until_ready(60_000_000);
    let driver = cluster.sim.add_actor(Box::new(RetryDriver {
        core: ClientCore::new(cfg.clone(), cfg.client_origin(0)),
        total: 200,
        done_writes: 0,
        done_reads: 0,
        phase_reads: false,
        write_retries: 0,
        read_retries: 0,
        wrong_values: 0,
        finished: false,
    }));
    // Generous virtual-time budget: deadlines are 50 ms, so even many
    // retries finish quickly.
    let limit = cluster.sim.now() + 120_000_000;
    while cluster.sim.now() < limit {
        cluster.sim.run_until(cluster.sim.now() + 1_000_000);
        if cluster
            .sim
            .actor_ref::<RetryDriver>(driver)
            .is_some_and(|d| d.finished)
        {
            break;
        }
    }
    let d = cluster.sim.actor_ref::<RetryDriver>(driver).unwrap();
    assert!(
        d.finished,
        "driver stuck: {}w/{}r done",
        d.done_writes, d.done_reads
    );
    assert_eq!(
        d.wrong_values, 0,
        "a committed write must never read back wrong"
    );
    // With ~2% loss over 200 ops × 6 messages each, some retries are
    // statistically certain — this proves the failure path actually ran.
    assert!(
        d.write_retries + d.read_retries > 0,
        "expected at least one loss-induced retry"
    );
    // Every key present on all three replicas of its vnode eventually
    // (read-repair healed the under-replicated writes we read).
    cluster.sim.run_until(cluster.sim.now() + 2_000_000);
    let ring = cluster.node(NodeId(0)).ring().unwrap().clone();
    let mut fully_replicated = 0;
    for i in 0..200 {
        let key = Key::from(format!("lossy-{i}"));
        let vnode = cfg.partitioner.locate(&key);
        let holders = ring
            .replicas(vnode)
            .iter()
            .filter(|&&n| cluster.node(n).store().contains(&key))
            .count();
        assert!(holders >= 2, "lossy-{i} under the write quorum: {holders}");
        if holders == 3 {
            fully_replicated += 1;
        }
    }
    assert!(
        fully_replicated > 150,
        "most keys fully replicated: {fully_replicated}/200"
    );
    // The runtime's drop accounting must agree with the story above: a 2%
    // link sampled thousands of times lost traffic (that is what forced the
    // retries), every lost message's payload is charged to `bytes_dropped`,
    // and the per-destination ledger decomposes the total exactly.
    let net = cluster.sim.stats();
    assert!(net.messages_dropped > 0, "2% loss dropped nothing?");
    assert!(
        net.bytes_dropped > 0,
        "drops recorded but no payload bytes charged"
    );
    let per_actor: u64 = net.dropped_per_actor.values().sum();
    assert_eq!(
        per_actor, net.messages_dropped,
        "per-destination drop ledger must decompose the total"
    );
    // Data-path loss is what this test injects, so at least one data node
    // must appear in the ledger.
    assert!(
        (0..cfg.data_nodes as u32).any(|n| net.dropped_to(cfg.node_actor(NodeId(n))) > 0),
        "no drops charged to any data node"
    );
}
