//! End-to-end admin-surface test: boot a real threaded cluster with the
//! admin actor, scrape it over plain TCP like Prometheus would, and check
//! that the exposition parses and the JSON endpoints serve live data.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use sedna_common::{Key, Value};
use sedna_core::cluster::ThreadCluster;
use sedna_core::config::ClusterConfig;

/// One-shot HTTP/1.0 GET; returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect admin");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(s, "GET {path} HTTP/1.0\r\nHost: sedna\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8(buf).expect("utf8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Minimal Prometheus text-format validator: every non-comment line must be
/// `series value`, optionally followed by an OpenMetrics-style exemplar
/// (` # {labels} value`), with a legal metric name and numeric values;
/// `# TYPE` lines must name a legal type.
fn assert_valid_prometheus(text: &str) {
    assert!(!text.is_empty(), "empty exposition");
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE name");
            let kind = parts.next().expect("TYPE kind");
            assert!(is_metric_name(name), "bad TYPE name: {line}");
            assert!(
                ["counter", "gauge", "summary", "histogram", "untyped"].contains(&kind),
                "bad TYPE kind: {line}"
            );
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        // Peel an exemplar suffix off first: `series value # {…} exvalue`.
        let sample = match line.split_once(" # ") {
            Some((sample, exemplar)) => {
                let (labels, exvalue) = exemplar
                    .rsplit_once(' ')
                    .unwrap_or_else(|| panic!("exemplar without value: {line}"));
                assert!(
                    labels.starts_with('{') && labels.ends_with('}'),
                    "malformed exemplar labels: {line}"
                );
                exvalue
                    .parse::<f64>()
                    .unwrap_or_else(|_| panic!("non-numeric exemplar value: {line}"));
                sample
            }
            None => line,
        };
        let (series, value) = sample.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line}");
        });
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("non-numeric value: {line}"));
        let name = match series.find('{') {
            Some(i) => {
                assert!(series.ends_with('}'), "unterminated labels: {line}");
                &series[..i]
            }
            None => series,
        };
        assert!(is_metric_name(name), "bad metric name: {line}");
        samples += 1;
    }
    assert!(samples > 0, "exposition contains no samples");
}

fn is_metric_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[test]
fn admin_surface_serves_all_endpoints() {
    let cluster = ThreadCluster::start_with_admin(ClusterConfig::small());
    let addr = cluster.admin_addr().expect("admin listener bound");

    // Traffic with a clearly hot key so the sketches have something to say.
    let hot = Key::from("hot:item");
    for i in 0..20 {
        cluster.write_latest(&hot, Value::from(format!("v{i}")));
        cluster.read_latest(&hot);
    }
    for i in 0..5 {
        cluster.write_latest(&Key::from(format!("cold:{i}")), Value::from("x"));
    }

    // Hot keys reach /metrics after a node stats tick; poll until they do.
    let deadline = Instant::now() + Duration::from_secs(20);
    let metrics = loop {
        let (status, body) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "bad status: {status}");
        if body.contains("sedna_hotkey_ops{") {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "hot-key series never appeared in /metrics"
        );
        std::thread::sleep(Duration::from_millis(200));
    };

    assert_valid_prometheus(&metrics);
    // Staleness-lag series are present (count 0 is fine — they must exist
    // so dashboards can alert on them from cold start).
    assert!(metrics.contains("sedna_staleness_ts_delta_micros"));
    assert!(metrics.contains("sedna_staleness_age_micros_count"));
    assert!(metrics.contains("sedna_client_outstanding_repairs"));
    assert!(metrics.contains("# TYPE sedna_hotkey_ops gauge"));
    assert!(metrics.contains("sedna_admin_ops_per_sec"));
    assert!(metrics.contains(r#"key="hot:item""#));
    // The windowed staleness twins live under a `_10s` suffix so they do
    // not shadow the cumulative series of the same base name.
    assert!(metrics.contains("# TYPE sedna_staleness_ts_delta_micros_10s summary"));
    assert!(metrics.contains("sedna_staleness_age_micros_10s_count"));
    assert!(metrics.contains("sedna_staleness_convergence_micros_10s{quantile=\"0.99\"}"));
    // Every client op records a traced latency sample, so the tail
    // quantiles of the latency summaries carry OpenMetrics exemplars.
    assert!(
        metrics.contains("# {trace_id=\"0x"),
        "no exemplar in exposition"
    );
    // Engine-internals gauges are mirrored on the stats tick.
    assert!(metrics.contains("sedna_engine_locks"));
    assert!(metrics.contains("sedna_engine_slab_pages"));

    let (status, vnodes) = http_get(addr, "/vnodes");
    assert!(status.contains("200"));
    assert!(vnodes.starts_with("{\"nodes\":["));
    assert!(vnodes.contains("\"vnodes\":["));
    assert!(vnodes.contains("\"reads\":"));

    let (status, hotkeys) = http_get(addr, "/hotkeys");
    assert!(status.contains("200"));
    assert!(hotkeys.contains("hot:item"));
    assert!(hotkeys.contains("\"count\":"));

    let (status, staleness) = http_get(addr, "/staleness");
    assert!(status.contains("200"));
    assert!(staleness.starts_with('{') && staleness.ends_with('}'));
    assert!(staleness.contains("\"outstanding_repairs\":"));
    assert!(staleness.contains("\"ts_delta_micros\":{"));
    assert!(staleness.contains("\"convergence_micros\":{"));

    let (status, journal) = http_get(addr, "/journal");
    assert!(status.contains("200"));
    assert!(
        journal.starts_with("{\"next\":\""),
        "journal body leads with the resume cursor: {journal}"
    );
    assert!(journal.contains("\"events\":["));
    // Resume from the returned cursor: boot-time events (ring installs,
    // recoveries) must not be replayed, so the tail scrape is strictly
    // smaller than the full one.
    let full_events = journal.matches("\"seq\":").count();
    assert!(full_events > 0, "no journal events after a workload");
    let next = journal
        .strip_prefix("{\"next\":\"")
        .and_then(|rest| rest.split('"').next())
        .expect("cursor in journal body");
    let (status, tail) = http_get(addr, &format!("/journal?since={next}"));
    assert!(status.contains("200"));
    assert!(tail.starts_with("{\"next\":\""));
    let tail_events = tail.matches("\"seq\":").count();
    assert!(
        tail_events < full_events,
        "cursor did not skip already-served events: {tail_events} vs {full_events}"
    );

    // Engine internals: published on the same stats tick that surfaced the
    // hot keys, so they are live by now.
    let (status, internals) = http_get(addr, "/internals");
    assert!(status.contains("200"));
    assert!(internals.starts_with("{\"nodes\":["), "body: {internals}");
    assert!(internals.contains("\"probe_len\":{"), "body: {internals}");
    assert!(internals.contains("\"slab_pages\":"), "body: {internals}");
    assert!(internals.contains("\"epoch\":{"), "body: {internals}");
    assert!(internals.contains("\"pending\":"), "body: {internals}");
    assert!(
        internals.contains("\"retire_free_p99\":"),
        "body: {internals}"
    );

    // The flight recorder has seen engine events from the workload above.
    let (status, flight) = http_get(addr, "/flight");
    assert!(status.contains("200"));
    assert!(
        flight.starts_with('{') && flight.ends_with('}'),
        "body: {flight}"
    );
    assert!(flight.contains("\"threads\":["), "body: {flight}");

    // The RAG rollup over the SLO engine.
    let (status, health) = http_get(addr, "/health");
    assert!(status.contains("200"));
    assert!(health.starts_with("{\"status\":\""), "body: {health}");
    assert!(health.contains("\"firing\":["), "body: {health}");
    assert!(health.contains("\"alerts\":["), "body: {health}");
    assert!(
        health.contains("\"slo\":\"read_p99\""),
        "default SLO set missing from /health: {health}"
    );

    // Full alert state + the transition log.
    let (status, alerts) = http_get(addr, "/alerts");
    assert!(status.contains("200"));
    assert!(alerts.starts_with("{\"at_micros\":"), "body: {alerts}");
    assert!(alerts.contains("\"transitions\":["), "body: {alerts}");
    assert!(alerts.contains("\"objective\":"), "body: {alerts}");

    // The replica root matrix (rows appear once anti-entropy has probed;
    // the endpoint itself must serve valid JSON from cold start).
    let (status, divergence) = http_get(addr, "/divergence");
    assert!(status.contains("200"));
    assert!(
        divergence.starts_with("{\"now_micros\":"),
        "body: {divergence}"
    );
    assert!(divergence.contains("\"nodes\":["), "body: {divergence}");

    // The alert gauges are part of the exposition whenever the engine is
    // wired, so dashboards can alert on them from cold start.
    assert!(metrics.contains("# TYPE sedna_alert_state gauge"));
    assert!(metrics.contains("sedna_alert_state{slo=\"read_p99\"}"));
    assert!(metrics.contains("sedna_alert_fired_total{slo=\"divergence_age\"}"));

    // The build-info gauge identifies the binary on every scrape.
    assert!(metrics.contains("# TYPE sedna_build_info gauge"));
    assert!(metrics.contains("sedna_build_info{version=\""));
    // The lock-contention counter is exported even with the profiler off.
    assert!(metrics.contains("sedna_store_lock_contended"));

    // The continuous profiler: the sampler was started by the cluster, and
    // the workload above ran inside `prof_scope!` regions, so by now the
    // cumulative view has stacks. Poll briefly — the sampler fires at
    // ~997 Hz, so a few milliseconds of live traffic is plenty.
    let deadline = Instant::now() + Duration::from_secs(20);
    let collapsed = loop {
        // Keep scopes alive while the sampler looks at them.
        cluster.write_latest(&hot, Value::from("prof"));
        cluster.read_latest(&hot);
        let (status, body) = http_get(addr, "/profile?format=collapsed");
        assert!(status.contains("200"), "bad status: {status}");
        if !body.trim().is_empty() {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "profiler never captured a stack from live traffic"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    // Collapsed format: every non-empty line is `frame;frame;frame count`
    // — semicolon-joined frames, a space, and a positive integer count.
    for line in collapsed.lines().filter(|l| !l.is_empty()) {
        let (stack, count) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("collapsed line without count: {line}"));
        count
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("non-integer collapsed count: {line}"));
        assert!(
            stack.split(';').all(|f| !f.is_empty()),
            "empty frame in collapsed stack: {line}"
        );
    }

    let (status, profile) = http_get(addr, "/profile");
    assert!(status.contains("200"));
    assert!(
        profile.starts_with('{') && profile.ends_with('}'),
        "body: {profile}"
    );
    assert!(profile.contains("\"cumulative\":["), "body: {profile}");
    assert!(profile.contains("\"window\":["), "body: {profile}");
    assert!(profile.contains("\"lock_contention\":{"), "body: {profile}");
    assert!(profile.contains("\"allocs\":["), "body: {profile}");
    // The tail critical-path decomposition rides along in the same document.
    assert!(profile.contains("\"critical_path\":{"), "body: {profile}");
    assert!(profile.contains("\"tail\":{"), "body: {profile}");
    assert!(profile.contains("\"queue_micros\":"), "body: {profile}");

    // The windowed collapsed view is also well-formed (may be empty if the
    // last 10s were idle, which they were not here — but don't race on it).
    let (status, _windowed) = http_get(addr, "/profile?format=collapsed&view=window");
    assert!(status.contains("200"));

    // Persist the scrapes so CI can upload them as build artifacts (a
    // known-good reference of what the endpoints emit at this commit).
    let scrape_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/admin-scrape");
    std::fs::create_dir_all(scrape_dir).expect("create scrape dir");
    std::fs::write(format!("{scrape_dir}/metrics.prom"), &metrics).unwrap();
    std::fs::write(format!("{scrape_dir}/internals.json"), &internals).unwrap();
    std::fs::write(format!("{scrape_dir}/flight.json"), &flight).unwrap();
    std::fs::write(format!("{scrape_dir}/health.json"), &health).unwrap();
    std::fs::write(format!("{scrape_dir}/alerts.json"), &alerts).unwrap();
    std::fs::write(format!("{scrape_dir}/divergence.json"), &divergence).unwrap();
    std::fs::write(format!("{scrape_dir}/profile.json"), &profile).unwrap();
    std::fs::write(format!("{scrape_dir}/profile.collapsed"), &collapsed).unwrap();

    // Unknown paths get a proper 404 with a JSON body naming the path.
    let (status, body) = http_get(addr, "/definitely-not-here");
    assert!(status.contains("404"), "expected 404, got: {status}");
    assert!(
        body.contains("\"error\":\"not found\"") && body.contains("/definitely-not-here"),
        "404 body: {body}"
    );

    // A malformed request line gets a 400 JSON body and a clean close
    // (read_to_end returns instead of hanging on a dangling socket).
    {
        let mut s = TcpStream::connect(addr).expect("connect admin");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).expect("read 400 response");
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.0 400"), "got: {text}");
        assert!(text.contains("\"error\":\"bad request\""), "got: {text}");
    }

    cluster.shutdown();
}
