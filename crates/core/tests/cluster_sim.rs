//! End-to-end tests of a full Sedna deployment on the deterministic
//! simulator: boot, quorum reads/writes, failure handling, membership
//! churn with data migration, and cluster-wide triggers.

use sedna_common::{Key, NodeId, Value};
use sedna_core::client::{ClientCore, ClientEvent};
use sedna_core::cluster::SimCluster;
use sedna_core::config::ClusterConfig;
use sedna_core::messages::{ClientOp, ClientResult, SednaMsg};
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_net::link::LinkModel;
use sedna_triggers::{FnAction, JobSpec, MonitorScope};

const T_TICK: TimerToken = TimerToken(1);

/// Scripted closed-loop client: issues ops one at a time once routing is
/// ready, recording results.
struct Driver {
    core: ClientCore,
    script: Vec<ClientOp>,
    cursor: usize,
    results: Vec<ClientResult>,
}

impl Driver {
    fn new(cfg: ClusterConfig, origin_index: u32, script: Vec<ClientOp>) -> Self {
        let origin = cfg.client_origin(origin_index);
        Driver {
            core: ClientCore::new(cfg, origin),
            script,
            cursor: 0,
            results: Vec::new(),
        }
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        if self.cursor >= self.script.len() {
            return;
        }
        let op = self.script[self.cursor].clone();
        self.cursor += 1;
        let now = ctx.now();
        let issued = match op {
            ClientOp::WriteLatest { key, value } => self.core.write_latest(&key, value, now),
            ClientOp::WriteAll { key, value } => self.core.write_all(&key, value, now),
            ClientOp::ReadLatest { key } => self.core.read_latest(&key, now),
            ClientOp::ReadAll { key } => self.core.read_all(&key, now),
            ClientOp::ScanTable { dataset, table } => self.core.scan_table(&dataset, &table, now),
            ClientOp::WriteMany { pairs } => self.core.write_many(&pairs, now),
            ClientOp::ReadMany { keys } => self.core.read_many(&keys, now),
        };
        assert!(issued.is_some(), "driver only issues after Ready");
        for (to, m) in issued.unwrap().1 {
            ctx.send(to, m);
        }
    }

    fn pump(&mut self, events: Vec<ClientEvent>, ctx: &mut Ctx<'_, SednaMsg>) {
        for ev in events {
            match ev {
                ClientEvent::Ready => self.issue_next(ctx),
                ClientEvent::Done { result, .. } => {
                    self.results.push(result);
                    self.issue_next(ctx);
                }
            }
        }
    }
}

impl Actor for Driver {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        for (to, m) in self.core.bootstrap() {
            ctx.send(to, m);
        }
        ctx.set_timer(T_TICK, 10_000);
    }

    fn on_message(&mut self, from: ActorId, msg: SednaMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        let (events, out) = self.core.on_message(from, msg, now);
        for (to, m) in out {
            ctx.send(to, m);
        }
        self.pump(events, ctx);
    }

    fn on_timer(&mut self, _t: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        let (events, out) = self.core.on_tick(ctx.now());
        for (to, m) in out {
            ctx.send(to, m);
        }
        self.pump(events, ctx);
        ctx.set_timer(T_TICK, 10_000);
    }
}

fn ready_cluster(cfg: ClusterConfig, seed: u64) -> SimCluster {
    let mut cluster = SimCluster::build(cfg, seed, LinkModel::gigabit_lan());
    cluster.run_until_ready(20_000_000);
    cluster
}

#[test]
fn nine_node_cluster_boots_with_balanced_ring() {
    let cluster = ready_cluster(ClusterConfig::paper(), 1);
    for n in 0..9 {
        let node = cluster.node(NodeId(n));
        let ring = node.ring().expect("ring installed");
        assert_eq!(ring.members().count(), 9);
        assert_eq!(ring.effective_rf(), 3);
        ring.check_invariants();
        // 900 vnodes * 3 / 9 = 300 slots each.
        assert_eq!(ring.load(NodeId(n)), 300);
    }
}

#[test]
fn write_then_read_roundtrip() {
    let mut cluster = ready_cluster(ClusterConfig::small(), 2);
    let driver = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        0,
        vec![
            ClientOp::WriteLatest {
                key: Key::from("alpha"),
                value: Value::from("1"),
            },
            ClientOp::WriteLatest {
                key: Key::from("beta"),
                value: Value::from("2"),
            },
            ClientOp::ReadLatest {
                key: Key::from("alpha"),
            },
            ClientOp::ReadLatest {
                key: Key::from("missing"),
            },
        ],
    )));
    cluster.sim.run_until(cluster.sim.now() + 3_000_000);
    let d = cluster.sim.actor_ref::<Driver>(driver).unwrap();
    assert_eq!(d.results.len(), 4, "{:?}", d.results);
    assert_eq!(d.results[0], ClientResult::Ok);
    assert_eq!(d.results[1], ClientResult::Ok);
    match &d.results[2] {
        ClientResult::Latest(Some(v)) => assert_eq!(v.value, Value::from("1")),
        other => panic!("unexpected: {other:?}"),
    }
    assert_eq!(d.results[3], ClientResult::Latest(None));
    // The value must exist on exactly N=3 replicas.
    let holders = (0..3)
        .filter(|&n| {
            cluster
                .node(NodeId(n))
                .store()
                .contains(&Key::from("alpha"))
        })
        .count();
    assert_eq!(holders, 3);
}

#[test]
fn write_all_from_two_sources_builds_value_list() {
    let mut cluster = ready_cluster(ClusterConfig::small(), 3);
    let key = Key::from("shared");
    let d1 = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        0,
        vec![ClientOp::WriteAll {
            key: key.clone(),
            value: Value::from("from-c0"),
        }],
    )));
    let d2 = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        1,
        vec![ClientOp::WriteAll {
            key: key.clone(),
            value: Value::from("from-c1"),
        }],
    )));
    cluster.sim.run_until(cluster.sim.now() + 2_000_000);
    let reader = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        2,
        vec![ClientOp::ReadAll { key: key.clone() }],
    )));
    cluster.sim.run_until(cluster.sim.now() + 2_000_000);
    for d in [d1, d2] {
        assert_eq!(
            cluster.sim.actor_ref::<Driver>(d).unwrap().results,
            vec![ClientResult::Ok]
        );
    }
    let r = cluster.sim.actor_ref::<Driver>(reader).unwrap();
    match &r.results[0] {
        ClientResult::All(Some(values)) => {
            assert_eq!(values.len(), 2, "one element per source: {values:?}");
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn last_write_wins_across_clients() {
    let mut cluster = ready_cluster(ClusterConfig::small(), 4);
    let key = Key::from("contested");
    // Two writers run sequentially (scripted), second one later in time.
    let _w1 = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        0,
        vec![ClientOp::WriteLatest {
            key: key.clone(),
            value: Value::from("first"),
        }],
    )));
    cluster.sim.run_until(cluster.sim.now() + 1_000_000);
    let _w2 = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        1,
        vec![ClientOp::WriteLatest {
            key: key.clone(),
            value: Value::from("second"),
        }],
    )));
    cluster.sim.run_until(cluster.sim.now() + 1_000_000);
    let reader = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        2,
        vec![ClientOp::ReadLatest { key: key.clone() }],
    )));
    cluster.sim.run_until(cluster.sim.now() + 1_000_000);
    let r = cluster.sim.actor_ref::<Driver>(reader).unwrap();
    match &r.results[0] {
        ClientResult::Latest(Some(v)) => assert_eq!(v.value, Value::from("second")),
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn reads_survive_one_replica_failure() {
    let mut cluster = ready_cluster(ClusterConfig::paper(), 5);
    let key = Key::from("durable");
    let writer = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        0,
        vec![ClientOp::WriteLatest {
            key: key.clone(),
            value: Value::from("v"),
        }],
    )));
    cluster.sim.run_until(cluster.sim.now() + 2_000_000);
    assert_eq!(
        cluster.sim.actor_ref::<Driver>(writer).unwrap().results,
        vec![ClientResult::Ok]
    );
    // Kill one of the key's replicas.
    let vnode = cluster.config.partitioner.locate(&key);
    let victim = cluster.node(NodeId(0)).ring().unwrap().replicas(vnode)[0];
    cluster.crash_node(victim);
    // Read immediately (before any remapping): R=2 of the surviving
    // replicas still answers.
    let reader = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        1,
        vec![ClientOp::ReadLatest { key: key.clone() }],
    )));
    cluster.sim.run_until(cluster.sim.now() + 2_000_000);
    let r = cluster.sim.actor_ref::<Driver>(reader).unwrap();
    match &r.results[0] {
        ClientResult::Latest(Some(v)) => assert_eq!(v.value, Value::from("v")),
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn crash_triggers_remap_and_recovery_restores_replication() {
    let mut cluster = ready_cluster(ClusterConfig::paper(), 6);
    let key = Key::from("recoverable");
    let writer = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        0,
        vec![ClientOp::WriteLatest {
            key: key.clone(),
            value: Value::from("v"),
        }],
    )));
    cluster.sim.run_until(cluster.sim.now() + 2_000_000);
    assert_eq!(
        cluster.sim.actor_ref::<Driver>(writer).unwrap().results,
        vec![ClientResult::Ok]
    );
    let vnode = cluster.config.partitioner.locate(&key);
    let old_replicas: Vec<NodeId> = cluster
        .node(NodeId(0))
        .ring()
        .unwrap()
        .replicas(vnode)
        .to_vec();
    let victim = old_replicas[0];
    cluster.crash_node(victim);
    // Give the ensemble time to expire the session, the manager to remap,
    // and the migration transfers to complete.
    cluster.sim.run_until(cluster.sim.now() + 8_000_000);
    // Some surviving node's ring no longer lists the victim.
    let observer = (0..9).map(NodeId).find(|&n| n != victim).unwrap();
    let ring = cluster.node(observer).ring().unwrap();
    assert!(!ring.is_member(victim), "victim evicted from membership");
    let new_replicas = ring.replicas(vnode).to_vec();
    assert_eq!(new_replicas.len(), 3);
    assert!(!new_replicas.contains(&victim));
    // All three current replicas hold the data (migration or repair).
    for &n in &new_replicas {
        assert!(
            cluster.node(n).store().contains(&key),
            "{n:?} missing data after recovery (replicas {new_replicas:?})"
        );
    }
}

#[test]
fn late_joining_node_receives_migrated_data() {
    // Build a 4-node layout but keep node 3 down during the initial load.
    let cfg = ClusterConfig {
        data_nodes: 4,
        ..ClusterConfig::small()
    };
    let mut cluster = SimCluster::build(cfg.clone(), 7, LinkModel::gigabit_lan());
    let late = NodeId(3);
    cluster.sim.set_down(cfg.node_actor(late), true);
    cluster.run_until_ready(20_000_000);
    // Load data through a driver.
    let script: Vec<ClientOp> = (0..50)
        .map(|i| ClientOp::WriteLatest {
            key: Key::from(format!("k-{i}")),
            value: Value::from("v"),
        })
        .collect();
    let writer = cluster
        .sim
        .add_actor(Box::new(Driver::new(cfg.clone(), 0, script)));
    cluster.sim.run_until(cluster.sim.now() + 4_000_000);
    assert_eq!(
        cluster
            .sim
            .actor_ref::<Driver>(writer)
            .unwrap()
            .results
            .len(),
        50
    );
    // Node 3 joins.
    cluster.sim.restart(cfg.node_actor(late));
    cluster.sim.run_until(cluster.sim.now() + 8_000_000);
    let node3 = cluster.node(late);
    let ring = node3.ring().expect("joined node has routing state");
    assert!(ring.is_member(late));
    assert!(ring.load(late) > 0, "late node owns vnodes");
    // It must hold every key of every vnode it now owns.
    let owned: Vec<_> = ring.vnodes_of(late);
    let mut checked = 0;
    for i in 0..50 {
        let key = Key::from(format!("k-{i}"));
        let vnode = cfg.partitioner.locate(&key);
        if owned.contains(&vnode) {
            checked += 1;
            assert!(
                node3.store().contains(&key),
                "migrated vnode {vnode:?} missing {key:?}"
            );
        }
    }
    assert!(
        checked > 0,
        "late node owns at least one loaded key's vnode"
    );
    assert!(node3.stats().transfers_in > 0, "data arrived via transfers");
}

#[test]
fn cluster_trigger_pipeline_fires_once_per_change() {
    let mut cluster = ready_cluster(ClusterConfig::small(), 8);
    // Job: watch table tweets/messages; emit an index entry per message.
    cluster.register_job_everywhere(|| {
        JobSpec::builder("indexer")
            .input(MonitorScope::Table {
                dataset: "tweets".into(),
                table: "messages".into(),
            })
            .action(FnAction(
                |key: &Key,
                 values: &[sedna_memstore::VersionedValue],
                 out: &mut sedna_triggers::Emits| {
                    let path = sedna_common::KeyPath::decode(key).expect("table key");
                    let index_key = sedna_common::KeyPath::new(
                        "tweets",
                        "index",
                        format!("idx-{}", path.key()),
                    )
                    .unwrap()
                    .encode();
                    out.latest(index_key, values[0].value.clone());
                },
            ))
            .trigger_interval(0)
            .build()
    });
    let msg_key = sedna_common::KeyPath::new("tweets", "messages", "m1")
        .unwrap()
        .encode();
    let writer = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        0,
        vec![ClientOp::WriteLatest {
            key: msg_key,
            value: Value::from("hello world"),
        }],
    )));
    cluster.sim.run_until(cluster.sim.now() + 3_000_000);
    assert_eq!(
        cluster.sim.actor_ref::<Driver>(writer).unwrap().results,
        vec![ClientResult::Ok]
    );
    // The index entry must now be readable through the normal API.
    let idx_key = sedna_common::KeyPath::new("tweets", "index", "idx-m1")
        .unwrap()
        .encode();
    let reader = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        1,
        vec![ClientOp::ReadLatest { key: idx_key }],
    )));
    cluster.sim.run_until(cluster.sim.now() + 3_000_000);
    let r = cluster.sim.actor_ref::<Driver>(reader).unwrap();
    match &r.results[0] {
        ClientResult::Latest(Some(v)) => assert_eq!(v.value, Value::from("hello world")),
        other => panic!("index entry missing: {other:?}"),
    }
    // Exactly one node (the primary) fired the action.
    let total_fired: u64 = (0..3)
        .map(|n| cluster.node(NodeId(n)).trigger_totals().fired)
        .sum();
    assert_eq!(total_fired, 1, "one firing per logical change");
}

#[test]
fn deterministic_replay() {
    let run = |seed: u64| {
        let mut cluster = ready_cluster(ClusterConfig::small(), seed);
        let driver = cluster.sim.add_actor(Box::new(Driver::new(
            cluster.config.clone(),
            0,
            (0..20)
                .map(|i| ClientOp::WriteLatest {
                    key: Key::from(format!("d-{i}")),
                    value: Value::from("v"),
                })
                .collect(),
        )));
        cluster.sim.run_until(cluster.sim.now() + 3_000_000);
        let d = cluster.sim.actor_ref::<Driver>(driver).unwrap();
        (
            format!("{:?}", d.results),
            cluster.sim.stats().messages_delivered,
            cluster.sim.now(),
        )
    };
    assert_eq!(run(42), run(42), "same seed ⇒ identical run");
}

#[test]
fn writes_survive_client_partition_from_one_replica() {
    let mut cluster = ready_cluster(ClusterConfig::paper(), 9);
    let key = Key::from("partitioned-write");
    let vnode = cluster.config.partitioner.locate(&key);
    let replicas = cluster
        .node(NodeId(0))
        .ring()
        .unwrap()
        .replicas(vnode)
        .to_vec();
    let driver = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        0,
        vec![
            ClientOp::WriteLatest {
                key: key.clone(),
                value: Value::from("v"),
            },
            ClientOp::ReadLatest { key: key.clone() },
        ],
    )));
    // Cut the driver off from one of the three replicas: W=2 and R=2 must
    // still be reachable through the other two.
    cluster
        .sim
        .partition_pair(driver, cluster.config.node_actor(replicas[0]));
    cluster.sim.run_until(cluster.sim.now() + 3_000_000);
    let d = cluster.sim.actor_ref::<Driver>(driver).unwrap();
    assert_eq!(d.results.len(), 2, "{:?}", d.results);
    assert_eq!(d.results[0], ClientResult::Ok);
    match &d.results[1] {
        ClientResult::Latest(Some(v)) => assert_eq!(v.value, Value::from("v")),
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn table_scan_returns_each_key_exactly_once() {
    let mut cluster = ready_cluster(ClusterConfig::paper(), 10);
    // 40 rows in the target table, plus decoys in a sibling table.
    let mut script: Vec<ClientOp> = (0..40)
        .map(|i| ClientOp::WriteLatest {
            key: sedna_common::KeyPath::new("ds", "target", format!("row-{i:02}"))
                .unwrap()
                .encode(),
            value: Value::from(format!("v-{i}")),
        })
        .collect();
    script.extend((0..10).map(|i| {
        ClientOp::WriteLatest {
            key: sedna_common::KeyPath::new("ds", "other", format!("row-{i}"))
                .unwrap()
                .encode(),
            value: Value::from("decoy"),
        }
    }));
    script.push(ClientOp::ScanTable {
        dataset: "ds".into(),
        table: "target".into(),
    });
    let driver = cluster
        .sim
        .add_actor(Box::new(Driver::new(cluster.config.clone(), 0, script)));
    cluster.sim.run_until(cluster.sim.now() + 6_000_000);
    let d = cluster.sim.actor_ref::<Driver>(driver).unwrap();
    assert_eq!(d.results.len(), 51, "{:?}", d.results.len());
    match d.results.last().unwrap() {
        ClientResult::Scanned(rows) => {
            assert_eq!(rows.len(), 40, "each target row exactly once");
            // Sorted by key, correct values, no decoys.
            for (i, (key, v)) in rows.iter().enumerate() {
                let path = sedna_common::KeyPath::decode(key).unwrap();
                assert_eq!(path.table(), "target");
                assert_eq!(path.key(), format!("row-{i:02}"));
                assert_eq!(v.value, Value::from(format!("v-{i}")));
            }
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn table_scan_of_empty_table_is_empty() {
    let mut cluster = ready_cluster(ClusterConfig::small(), 11);
    let driver = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        0,
        vec![ClientOp::ScanTable {
            dataset: "nope".into(),
            table: "nothing".into(),
        }],
    )));
    cluster.sim.run_until(cluster.sim.now() + 3_000_000);
    let d = cluster.sim.actor_ref::<Driver>(driver).unwrap();
    assert_eq!(d.results, vec![ClientResult::Scanned(vec![])]);
}

#[test]
fn dataset_scope_trigger_covers_all_tables() {
    let mut cluster = ready_cluster(ClusterConfig::small(), 12);
    // One job watching the whole dataset mirrors any change into an audit
    // table, regardless of which table it lands in.
    cluster.register_job_everywhere(|| {
        JobSpec::builder("auditor")
            .input(sedna_triggers::MonitorScope::Dataset {
                dataset: "app".into(),
            })
            .action(FnAction(
                |key: &Key,
                 _values: &[sedna_memstore::VersionedValue],
                 out: &mut sedna_triggers::Emits| {
                    let path = sedna_common::KeyPath::decode(key).expect("table key");
                    if path.table() == "audit" {
                        return; // don't audit the audit table (self-loop)
                    }
                    let audit = sedna_common::KeyPath::new(
                        "app",
                        "audit",
                        format!("{}-{}", path.table(), path.key()),
                    )
                    .unwrap()
                    .encode();
                    out.latest(audit, Value::from("seen"));
                },
            ))
            .trigger_interval(0)
            .build()
    });
    let mut script = Vec::new();
    for table in ["users", "orders", "events"] {
        script.push(ClientOp::WriteLatest {
            key: sedna_common::KeyPath::new("app", table, "x")
                .unwrap()
                .encode(),
            value: Value::from("1"),
        });
    }
    // A write in a different dataset must NOT fire the auditor.
    script.push(ClientOp::WriteLatest {
        key: sedna_common::KeyPath::new("other", "users", "x")
            .unwrap()
            .encode(),
        value: Value::from("1"),
    });
    let writer = cluster
        .sim
        .add_actor(Box::new(Driver::new(cluster.config.clone(), 0, script)));
    // Let the trigger scanner fire and the audit emits commit.
    cluster.sim.run_until(cluster.sim.now() + 2_000_000);
    assert_eq!(
        cluster
            .sim
            .actor_ref::<Driver>(writer)
            .unwrap()
            .results
            .len(),
        4
    );
    let scanner = cluster.sim.add_actor(Box::new(Driver::new(
        cluster.config.clone(),
        1,
        vec![ClientOp::ScanTable {
            dataset: "app".into(),
            table: "audit".into(),
        }],
    )));
    cluster.sim.run_until(cluster.sim.now() + 2_000_000);
    let d = cluster.sim.actor_ref::<Driver>(scanner).unwrap();
    match d.results.last().unwrap() {
        ClientResult::Scanned(rows) => {
            let names: Vec<String> = rows
                .iter()
                .map(|(k, _)| sedna_common::KeyPath::decode(k).unwrap().key().to_string())
                .collect();
            assert_eq!(
                names,
                vec!["events-x", "orders-x", "users-x"],
                "exactly the in-dataset writes, audited once each"
            );
        }
        other => panic!("unexpected: {other:?}"),
    }
}
