//! The same deployment on real threads: smoke tests for the examples path.

use sedna_common::{Key, KeyPath, Value};
use sedna_core::cluster::ThreadCluster;
use sedna_core::config::ClusterConfig;
use sedna_core::messages::ClientResult;
use sedna_triggers::{FnAction, JobSpec, MonitorScope};

#[test]
fn threaded_write_read_roundtrip() {
    let cluster = ThreadCluster::start(ClusterConfig::small());
    assert_eq!(
        cluster.write_latest(&Key::from("k"), Value::from("v1")),
        ClientResult::Ok
    );
    match cluster.read_latest(&Key::from("k")) {
        ClientResult::Latest(Some(v)) => assert_eq!(v.value, Value::from("v1")),
        other => panic!("unexpected: {other:?}"),
    }
    assert_eq!(
        cluster.read_latest(&Key::from("nope")),
        ClientResult::Latest(None)
    );
    cluster.shutdown();
}

#[test]
fn threaded_write_all_accumulates_sources() {
    let cluster = ThreadCluster::start(ClusterConfig::small());
    // One gateway = one source, so write_all twice keeps one element; the
    // list shape is covered by the sim tests — here we check the API path.
    assert_eq!(
        cluster.write_all(&Key::from("wa"), Value::from("a")),
        ClientResult::Ok
    );
    match cluster.read_all(&Key::from("wa")) {
        ClientResult::All(Some(v)) => assert_eq!(v.len(), 1),
        other => panic!("unexpected: {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn threaded_trigger_pipeline_end_to_end() {
    let cluster = ThreadCluster::start(ClusterConfig::small());
    cluster.register_job_everywhere(|| {
        JobSpec::builder("uppercase")
            .input(MonitorScope::Table {
                dataset: "d".into(),
                table: "in".into(),
            })
            .action(FnAction(
                |key: &Key,
                 values: &[sedna_memstore::VersionedValue],
                 out: &mut sedna_triggers::Emits| {
                    let path = KeyPath::decode(key).expect("table key");
                    let text = String::from_utf8_lossy(values[0].value.as_bytes()).to_uppercase();
                    let out_key = KeyPath::new("d", "out", path.key()).unwrap().encode();
                    out.latest(out_key, Value::from(text));
                },
            ))
            .trigger_interval(0)
            .build()
    });
    let in_key = KeyPath::new("d", "in", "x").unwrap().encode();
    assert_eq!(
        cluster.write_latest(&in_key, Value::from("hello")),
        ClientResult::Ok
    );
    // Poll for the derived row: scanner interval + quorum write.
    let out_key = KeyPath::new("d", "out", "x").unwrap().encode();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match cluster.read_latest(&out_key) {
            ClientResult::Latest(Some(v)) => {
                assert_eq!(v.value, Value::from("HELLO"));
                break;
            }
            _ if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            other => panic!("derived row never appeared: {other:?}"),
        }
    }
    cluster.shutdown();
}
