//! Nemesis run harness: a small Sedna deployment under a recorded
//! client workload, driven through a fault schedule, then healed,
//! quiesced and checked.
//!
//! A run is fully determined by `(seed, HarnessConfig, schedule)` — the
//! simulator, the workload RNGs and the nemesis all derive from the one
//! seed — so any failure reproduces from its seed alone, and the
//! shrinker can re-run subsets of the schedule against identical
//! workload behaviour.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sedna_common::rng::Xoshiro256;
use sedna_common::time::Micros;
use sedna_common::{Key, NodeId, Value};
use sedna_core::client::{ClientCore, ClientEvent};
use sedna_core::cluster::SimCluster;
use sedna_core::config::{ClusterConfig, TablePolicy};
use sedna_core::divergence::DivergenceSnapshot;
use sedna_core::fault::{ClusterFault, RestartKind, ScheduledFault};
use sedna_core::history::{ClientHistory, HistoryEvent};
use sedna_core::messages::SednaMsg;
use sedna_net::actor::{Actor, ActorId, Ctx, TimerToken};
use sedna_net::link::LinkModel;
use sedna_net::sim::SimConfig;
use sedna_obs::flight::{self, FlightKind};
use sedna_obs::{AlertTransition, TailSnapshot};
use sedna_persist::{PersistEngine, PersistMode};
use sedna_replication::QuorumConfig;
use sedna_ring::Partitioner;

use crate::checker::{
    acked_writes, check_alert_crossvalidation, check_lost_concurrent_writes, check_lost_writes,
    check_replica_agreement, check_replica_dot_agreement, check_sessions, final_replica_dots,
    final_replica_state, write_records, Violation,
};
use crate::nemesis::{generate, schedule_end, NemesisConfig};

/// Which fault envelope and which checks a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Safety-preserving faults; full session + durability + agreement
    /// checks. Every seed must pass on a stock configuration.
    Stock,
    /// Membership churn (leave/rebalance windows, empty restarts); only
    /// end-of-run replica agreement is checked — LWW gives no session
    /// guarantees across replica-set changes (DESIGN.md §14).
    Churn,
    /// Stock fault envelope under *heavy* per-node clock skew, with
    /// sibling-retaining resolution, and the full dot-level check set on
    /// top of the stock checks: no-lost-concurrent-write and replica
    /// dot-set agreement (DESIGN.md §18). Every seed must pass under
    /// dotted version vectors; the same profile with
    /// [`HarnessConfig::skewed_legacy`] (timestamp-LWW resolution) is
    /// *expected* to trip the checker — that contrast is the consistency
    /// upgrade's proof.
    Skewed,
}

/// Everything that parameterises a nemesis run except the seed.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Fault envelope / check selection.
    pub profile: Profile,
    /// Deliberately weakened cluster: `R=1, W=1`, read repair off,
    /// anti-entropy off. The mutation-sanity configuration — the checker
    /// must catch it.
    pub broken: bool,
    /// Run the pre-DVV resolution paths (bare timestamp LWW, no causal
    /// contexts server-side). The regression configuration the skewed
    /// profile must catch.
    pub legacy: bool,
    /// Closed-loop workload clients.
    pub clients: u32,
    /// Shared key-space size (`k-0 … k-{keys-1}`).
    pub keys: u64,
    /// Data nodes.
    pub data_nodes: u32,
    /// Total vnodes (smaller = faster anti-entropy coverage).
    pub vnodes: u32,
    /// Anti-entropy period (µs); ignored (forced 0) when `broken`.
    pub sync_interval_micros: Micros,
    /// Max per-node clock skew (µs) applied to observed time.
    pub clock_skew_max_micros: Micros,
}

impl HarnessConfig {
    /// Stock profile on a 5-node cluster.
    pub fn stock() -> Self {
        HarnessConfig {
            profile: Profile::Stock,
            broken: false,
            legacy: false,
            clients: 3,
            keys: 12,
            data_nodes: 5,
            vnodes: 25,
            sync_interval_micros: 200_000,
            clock_skew_max_micros: 2_000,
        }
    }

    /// Churn profile (stock cluster, churn faults, convergence-only
    /// checks).
    pub fn churn() -> Self {
        HarnessConfig {
            profile: Profile::Churn,
            ..Self::stock()
        }
    }

    /// The broken configuration for mutation sanity: stock faults
    /// against `R=1/W=1` with read repair and anti-entropy disabled.
    pub fn broken() -> Self {
        HarnessConfig {
            broken: true,
            ..Self::stock()
        }
    }

    /// Skewed-clock profile under dotted version vectors: stock faults,
    /// node clocks up to ±300 ms apart, sibling-retaining resolution, a
    /// tight key space so concurrent writes to one key are common, and
    /// the dot-level checks armed. Must pass on every seed.
    pub fn skewed() -> Self {
        HarnessConfig {
            profile: Profile::Skewed,
            keys: 6,
            clock_skew_max_micros: 300_000,
            ..Self::stock()
        }
    }

    /// The skewed-clock profile on the *legacy* bare-timestamp resolver:
    /// the regression configuration. Concurrent writes resolve by wall
    /// clock, so a slow-clock client's acknowledged write gets silently
    /// shadowed — the checker must report `LostConcurrentWrite` on some
    /// seeds (the sweep runs it with `--expect-violations`).
    pub fn skewed_legacy() -> Self {
        HarnessConfig {
            legacy: true,
            ..Self::skewed()
        }
    }

    /// The cluster configuration this harness deploys.
    pub fn cluster_config(&self) -> ClusterConfig {
        let cfg = ClusterConfig {
            data_nodes: self.data_nodes as usize,
            partitioner: Partitioner::new(self.vnodes),
            quorum: if self.broken {
                // `QuorumConfig::new` rejects R+W<=N for good reason; the
                // mutation test builds the broken shape directly.
                QuorumConfig { n: 3, r: 1, w: 1 }
            } else {
                QuorumConfig::PAPER
            },
            persist: PersistMode::WriteAhead {
                snapshot_interval_micros: 5_000_000,
            },
            sync_interval_micros: if self.broken {
                0
            } else {
                self.sync_interval_micros
            },
            ..ClusterConfig::small()
        }
        .with_read_repair(!self.broken)
        // The mutation configuration also lies about clean reads: without
        // the session-floor gate, R=1 "agreement" is reported clean no
        // matter how stale — exactly what the checker must catch.
        .with_session_floor_reads(!self.broken)
        .with_legacy_timestamps(self.legacy);
        if self.profile == Profile::Skewed {
            // Retain concurrent siblings so the no-lost-concurrent-write
            // check is sound (LWW legitimately collapses them). The
            // legacy variant ignores the policy — that's the point.
            cfg.with_sibling_resolution(TablePolicy::Siblings)
        } else {
            cfg
        }
    }

    /// The nemesis envelope for this profile.
    pub fn nemesis_config(&self) -> NemesisConfig {
        match self.profile {
            // Skewed keeps the safety-preserving fault envelope — the
            // adversary there is the clock, not the schedule.
            Profile::Stock | Profile::Skewed => NemesisConfig::stock(self.data_nodes),
            Profile::Churn => NemesisConfig::churn(self.data_nodes),
        }
    }
}

/// Outcome of one nemesis run.
#[derive(Debug)]
pub struct RunReport {
    /// The seed that produced it.
    pub seed: u64,
    /// The schedule that was driven (generated or explicitly supplied).
    pub schedule: Vec<ScheduledFault>,
    /// All checker findings, in check order.
    pub violations: Vec<Violation>,
    /// Completed client operations (progress signal).
    pub ops_done: u64,
    /// Recorded history (for artifacts / debugging).
    pub history: Vec<HistoryEvent>,
    /// Cluster-wide metrics (JSON) captured after the post-heal quiesce —
    /// written alongside failure artifacts so a violating run carries its
    /// own observability snapshot.
    pub metrics_json: String,
    /// Aggregated staleness-tracker readings across the workload clients.
    pub staleness: StalenessSummary,
    /// Flight-recorder dump (JSON), captured when the checker found
    /// violations: the black-box recording for this seed. `None` on
    /// passing runs.
    pub flight_json: Option<String>,
    /// The alert engine's full transition log (the run's alert log:
    /// every pending/firing/resolve walk, with burn rates and exemplar
    /// traces).
    pub alert_log: Vec<AlertTransition>,
    /// Alerts still firing after the heal + quiesce tail. Must be empty
    /// on clean profiles — enforced as
    /// [`Violation::AlertStuckFiring`] by the cross-check.
    pub alerts_firing: Vec<&'static str>,
    /// Per-node end-of-run divergence snapshots: the replica root matrix
    /// plus the episode timeline (every Merkle mismatch that opened and
    /// when it converged).
    pub divergence: Vec<(NodeId, DivergenceSnapshot)>,
    /// Tail critical-path attribution merged across the workload clients:
    /// per-segment (queue/lock/apply/net/other) sums for every op and for
    /// the slow tail — "where did this seed's p99 go".
    pub tail_attribution: TailSnapshot,
}

/// End-of-run staleness-lag tracker totals (summed over clients).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StalenessSummary {
    /// Stale replicas detected during quorum reads (samples in the
    /// ts-delta histogram).
    pub lags_recorded: u64,
    /// Repair pushes still awaiting acknowledgement when the run ended.
    pub outstanding_repairs: u64,
    /// Repair round-trips that completed (convergence samples).
    pub repairs_converged: u64,
}

impl RunReport {
    /// True when the run produced no findings.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

const T_TICK: TimerToken = TimerToken(0xC0DE);

/// Closed-loop workload client: one op in flight, random key, mixed
/// reads/writes, retrying idleness from a timer. All history recording
/// happens inside [`ClientCore`] via the attached sink.
struct WorkloadClient {
    core: ClientCore,
    rng: Xoshiro256,
    keys: u64,
    stop_at: Micros,
    in_flight: bool,
    ops_done: u64,
}

impl WorkloadClient {
    fn issue(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        if self.in_flight || ctx.now() >= self.stop_at {
            return;
        }
        let key = Key::from(format!("k-{}", self.rng.next_below(self.keys)));
        let now = ctx.now();
        let dice = self.rng.next_below(100);
        let issued = if dice < 45 {
            self.core
                .write_latest(&key, Value::from(format!("v{now}")), now)
        } else if dice < 55 {
            self.core
                .write_all(&key, Value::from(format!("a{now}")), now)
        } else if dice < 90 {
            self.core.read_latest(&key, now)
        } else {
            self.core.read_all(&key, now)
        };
        if let Some((_, out)) = issued {
            self.in_flight = true;
            for (to, m) in out {
                ctx.send(to, m);
            }
        }
    }

    fn pump(&mut self, events: Vec<ClientEvent>, ctx: &mut Ctx<'_, SednaMsg>) {
        for ev in events {
            match ev {
                ClientEvent::Ready => self.issue(ctx),
                ClientEvent::Done { .. } => {
                    // Paced, not saturating: the next op issues from the
                    // 10 ms tick, keeping runs cheap while still placing
                    // hundreds of ops inside every fault window.
                    self.in_flight = false;
                    self.ops_done += 1;
                }
            }
        }
    }
}

impl Actor for WorkloadClient {
    type Msg = SednaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SednaMsg>) {
        for (to, m) in self.core.bootstrap() {
            ctx.send(to, m);
        }
        ctx.set_timer(T_TICK, 10_000);
    }

    fn on_message(&mut self, from: ActorId, msg: SednaMsg, ctx: &mut Ctx<'_, SednaMsg>) {
        let now = ctx.now();
        let (events, out) = self.core.on_message(from, msg, now);
        for (to, m) in out {
            ctx.send(to, m);
        }
        self.pump(events, ctx);
    }

    fn on_timer(&mut self, _t: TimerToken, ctx: &mut Ctx<'_, SednaMsg>) {
        let (events, out) = self.core.on_tick(ctx.now());
        for (to, m) in out {
            ctx.send(to, m);
        }
        self.pump(events, ctx);
        // Re-arm even while idle: an op that failed to issue (routing
        // lease mid-refresh) is retried here.
        if !self.in_flight && self.core.is_ready() {
            self.issue(ctx);
        }
        ctx.set_timer(T_TICK, 10_000);
    }
}

/// Monotonic run counter, so concurrent runs in one process get
/// distinct WAL directories.
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

fn run_dir(seed: u64) -> PathBuf {
    let n = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sedna-nemesis-{}-{seed}-{n}", std::process::id()))
}

/// Generates the schedule for `seed` and runs it. The standard entry
/// point for sweeps.
pub fn run_nemesis(seed: u64, cfg: &HarnessConfig) -> RunReport {
    let schedule = generate(seed, &cfg.nemesis_config());
    run_with_schedule(seed, cfg, &schedule)
}

/// Runs an explicit schedule under `seed`'s workload — the entry point
/// for replaying a shrunk reproducer.
pub fn run_with_schedule(seed: u64, cfg: &HarnessConfig, schedule: &[ScheduledFault]) -> RunReport {
    let cluster_cfg = cfg.cluster_config();
    let dir = run_dir(seed);
    let persist_root = dir.clone();
    let mode = cluster_cfg.persist;
    let sim_config = SimConfig {
        seed,
        link: LinkModel::gigabit_lan(),
        clock_skew_max_micros: cfg.clock_skew_max_micros,
        ..SimConfig::default()
    };
    let mut cluster =
        SimCluster::build_with_sim_config(cluster_cfg.clone(), sim_config, move |node| {
            Some(
                PersistEngine::new(persist_root.join(format!("node-{}", node.0)), mode)
                    .expect("create persist engine"),
            )
        });
    cluster.run_until_ready(30_000_000);

    // Clients record into one shared history; they stop issuing shortly
    // after the last fault so the cluster can converge undisturbed.
    let history = ClientHistory::shared();
    let stop_at = schedule_end(schedule).max(cluster.sim.now()) + 1_000_000;
    let mut client_actors = Vec::new();
    for i in 0..cfg.clients {
        let mut core = ClientCore::new(cluster_cfg.clone(), cluster_cfg.client_origin(i));
        core.attach_history(Arc::clone(&history));
        // Workload ops feed the cluster-shared SLO engine (latency,
        // staleness, degraded reads) so the run exercises the alerting
        // path the checker cross-validates below.
        core.set_alert_engine(Arc::clone(cluster.alert_engine()));
        let id = cluster.sim.add_actor(Box::new(WorkloadClient {
            core,
            rng: Xoshiro256::seeded(seed ^ (0xC11E_4701 + u64::from(i) * 0x1_0003)),
            keys: cfg.keys,
            stop_at,
            in_flight: false,
            ops_done: 0,
        }));
        client_actors.push(id);
    }

    cluster.run_schedule(schedule);

    // Heal-everything tail: whatever subset of the schedule ran (the
    // shrinker prunes heals and restarts too), end in a fully-connected,
    // all-up, loss-free cluster.
    cluster.sim.run_until(stop_at);
    cluster.apply_fault(&ClusterFault::HealAll);
    cluster.apply_fault(&ClusterFault::SetLinkLossPermille(0));
    for n in 0..cfg.data_nodes {
        if cluster.sim.is_down(cluster_cfg.node_actor(NodeId(n))) {
            cluster.restart_node(NodeId(n), RestartKind::Recover);
        }
    }

    // Quiescence: anti-entropy steps one vnode per node per interval, so
    // two full passes over the vnode space guarantee transitive
    // convergence (A→B in the first pass, B→C in the second).
    let quiesce = if cluster_cfg.sync_interval_micros == 0 {
        2_000_000
    } else {
        cluster_cfg.sync_interval_micros * (2 * u64::from(cfg.vnodes) + 8) + 2_000_000
    };
    cluster.sim.run_until(cluster.sim.now() + quiesce);

    let events = history.events();
    // Merge the workload clients' registries into the cluster snapshot:
    // the staleness-lag tracker lives client-side, and a violating run's
    // artifact should carry those readings too.
    let mut snap = cluster.metrics_snapshot();
    let mut tail_attribution = TailSnapshot::default();
    for &id in &client_actors {
        if let Some(c) = cluster.sim.actor_ref::<WorkloadClient>(id) {
            snap.merge(&c.core.obs().snapshot());
            tail_attribution.merge(&c.core.obs().tail_attribution().snapshot());
        }
    }
    let staleness = StalenessSummary {
        lags_recorded: snap
            .hists
            .get("sedna_staleness_ts_delta_micros")
            .map_or(0, |h| h.count),
        outstanding_repairs: snap.gauge("sedna_client_outstanding_repairs"),
        repairs_converged: snap
            .hists
            .get("sedna_staleness_convergence_micros")
            .map_or(0, |h| h.count),
    };
    let metrics_json = snap.to_json();

    // Read the observability plane *after* the heal + quiesce tail: the
    // quiesce window (≥ two full anti-entropy passes plus slack) is long
    // enough for every legitimately-fired alert to resolve, so whatever
    // still fires here is cross-checked as a finding.
    let end_now = cluster.sim.now();
    let engine = Arc::clone(cluster.alert_engine());
    engine.evaluate(end_now);
    let alert_log = engine.transitions();
    let alerts_firing = engine.firing(end_now);
    let divergence: Vec<(NodeId, DivergenceSnapshot)> = (0..cfg.data_nodes)
        .map(|n| {
            let id = NodeId(n);
            (id, cluster.node(id).divergence_snapshot(end_now))
        })
        .collect();

    let mut violations = Vec::new();
    let final_state = final_replica_state(&cluster);
    match (cfg.profile, cfg.broken) {
        (Profile::Churn, _) => {
            violations.extend(check_replica_agreement(&final_state));
        }
        (Profile::Stock, false) => {
            violations.extend(check_sessions(&events));
            violations.extend(check_lost_writes(&acked_writes(&events), &final_state));
            violations.extend(check_replica_agreement(&final_state));
        }
        (Profile::Stock, true) => {
            // Anti-entropy is off, so end-state divergence is expected;
            // only the session/durability guarantees are meaningful.
            violations.extend(check_sessions(&events));
            violations.extend(check_lost_writes(&acked_writes(&events), &final_state));
        }
        (Profile::Skewed, _) => {
            // Stock checks plus the dot-level consistency upgrade: no
            // acked dot may vanish without causal coverage, and replicas
            // must agree on full sibling sets after quiescence.
            violations.extend(check_sessions(&events));
            violations.extend(check_lost_writes(&acked_writes(&events), &final_state));
            violations.extend(check_replica_agreement(&final_state));
            let final_dots = final_replica_dots(&cluster);
            violations.extend(check_lost_concurrent_writes(
                &write_records(&events),
                &final_dots,
            ));
            violations.extend(check_replica_dot_agreement(&final_dots));
        }
    }

    // Observability-vs-ground-truth cross-validation: lost writes without
    // a fired alert, and stuck-firing alerts on clean runs, are findings
    // in their own right.
    let cross = check_alert_crossvalidation(&violations, &alert_log, &alerts_firing);
    violations.extend(cross);

    let ops_done = client_actors
        .iter()
        .filter_map(|&id| cluster.sim.actor_ref::<WorkloadClient>(id))
        .map(|c| c.ops_done)
        .sum();

    // A checker violation is an anomaly by definition: stamp it into the
    // flight recorder and freeze a capture, bypassing the slow-op rate
    // limiter (a violating seed always deserves its black box), then
    // carry the dump in the report so sweep artifacts include it.
    let flight_json = if violations.is_empty() {
        None
    } else {
        flight::record(FlightKind::Violation, seed);
        flight::reset_anomaly();
        flight::note_anomaly("violation", seed);
        Some(flight::render_json(256))
    };

    let _ = std::fs::remove_dir_all(&dir);
    RunReport {
        seed,
        schedule: schedule.to_vec(),
        violations,
        ops_done,
        history: events,
        metrics_json,
        staleness,
        flight_json,
        alert_log,
        alerts_firing,
        divergence,
        tail_attribution,
    }
}

/// Per-key final replica state of a finished cluster — exposed for
/// tests that drive [`SimCluster`] directly and want the agreement
/// check (e.g. partition-heal convergence bounds).
pub fn replica_state_of(
    cluster: &SimCluster,
) -> BTreeMap<Key, Vec<(NodeId, Option<sedna_common::Timestamp>)>> {
    final_replica_state(cluster)
}
