//! Schedule shrinking: reduce a failing fault schedule to a minimal
//! reproducer, and print it as a copy-pasteable test.
//!
//! Uses delta debugging (ddmin): repeatedly re-run subsets of the
//! schedule against the *same* seed and keep any subset that still
//! fails. Subsets are always valid schedules because the harness heals
//! partitions, clears loss and restarts down nodes after the last event
//! — so dropping a heal or a restart can't wedge a run.

use sedna_core::fault::{ClusterFault, ScheduledFault};

/// ddmin over schedule events. `still_fails` re-runs a candidate subset
/// and reports whether the failure persists; the returned schedule is
/// 1-minimal (removing any single remaining event makes the failure
/// disappear). Cost: O(n²) runs worst case, in practice far fewer.
pub fn shrink(
    schedule: &[ScheduledFault],
    mut still_fails: impl FnMut(&[ScheduledFault]) -> bool,
) -> Vec<ScheduledFault> {
    let mut current: Vec<ScheduledFault> = schedule.to_vec();
    if current.is_empty() {
        return current;
    }
    let mut chunks = 2usize;
    while current.len() >= 2 {
        let chunk_len = current.len().div_ceil(chunks);
        let mut reduced = false;
        // Try removing each chunk (i.e. keeping its complement).
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk_len).min(current.len());
            let candidate: Vec<ScheduledFault> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            if !candidate.is_empty() && still_fails(&candidate) {
                current = candidate;
                chunks = chunks.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunks >= current.len() {
                break; // single-event granularity exhausted: 1-minimal
            }
            chunks = (chunks * 2).min(current.len());
        }
    }
    current
}

fn render_fault(fault: &ClusterFault) -> String {
    fn nodes(list: &[sedna_common::NodeId]) -> String {
        let inner: Vec<String> = list.iter().map(|n| format!("NodeId({})", n.0)).collect();
        format!("vec![{}]", inner.join(", "))
    }
    match fault {
        ClusterFault::Crash { node, torn_wal } => format!(
            "ClusterFault::Crash {{ node: NodeId({}), torn_wal: {torn_wal} }}",
            node.0
        ),
        ClusterFault::Restart { node, kind } => format!(
            "ClusterFault::Restart {{ node: NodeId({}), kind: RestartKind::{kind:?} }}",
            node.0
        ),
        ClusterFault::PartitionPair { a, b } => format!(
            "ClusterFault::PartitionPair {{ a: NodeId({}), b: NodeId({}) }}",
            a.0, b.0
        ),
        ClusterFault::HealPair { a, b } => format!(
            "ClusterFault::HealPair {{ a: NodeId({}), b: NodeId({}) }}",
            a.0, b.0
        ),
        ClusterFault::PartitionHalves { left, right } => format!(
            "ClusterFault::PartitionHalves {{ left: {}, right: {} }}",
            nodes(left),
            nodes(right)
        ),
        ClusterFault::HealAll => "ClusterFault::HealAll".to_string(),
        ClusterFault::SetLinkLossPermille(p) => {
            format!("ClusterFault::SetLinkLossPermille({p})")
        }
    }
}

/// Renders a shrunk schedule as a complete, copy-pasteable `#[test]`.
/// `profile_ctor` names the `HarnessConfig` constructor the failing run
/// used (e.g. `"stock"`).
pub fn render_repro(seed: u64, profile_ctor: &str, schedule: &[ScheduledFault]) -> String {
    let mut out = String::new();
    out.push_str("#[test]\n");
    out.push_str(&format!("fn repro_seed_{seed}() {{\n"));
    out.push_str("    use sedna_check::harness::{run_with_schedule, HarnessConfig};\n");
    out.push_str("    use sedna_core::fault::{ClusterFault, RestartKind, ScheduledFault};\n");
    out.push_str("    use sedna_common::NodeId;\n");
    out.push_str("    let schedule = vec![\n");
    for ev in schedule {
        out.push_str(&format!(
            "        ScheduledFault::new({}, {}),\n",
            ev.at,
            render_fault(&ev.fault)
        ));
    }
    out.push_str("    ];\n");
    out.push_str(&format!(
        "    let report = run_with_schedule({seed}, &HarnessConfig::{profile_ctor}(), &schedule);\n"
    ));
    out.push_str("    assert!(report.violations.is_empty(), \"{:#?}\", report.violations);\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_common::NodeId;
    use sedna_core::fault::RestartKind;

    fn ev(at: u64, node: u32) -> ScheduledFault {
        ScheduledFault::new(
            at,
            ClusterFault::Crash {
                node: NodeId(node),
                torn_wal: false,
            },
        )
    }

    #[test]
    fn shrinks_to_the_two_interacting_events() {
        // Failure requires events at t=300 and t=700 to both be present.
        let schedule: Vec<ScheduledFault> = (0..10).map(|i| ev(i * 100, i as u32)).collect();
        let need = [ev(300, 3), ev(700, 7)];
        let mut probes = 0;
        let min = shrink(&schedule, |cand| {
            probes += 1;
            need.iter().all(|n| cand.contains(n))
        });
        assert_eq!(min, need.to_vec(), "after {probes} probes");
    }

    #[test]
    fn shrinks_single_culprit_to_one_event() {
        let schedule: Vec<ScheduledFault> = (0..16).map(|i| ev(i * 50, i as u32)).collect();
        let culprit = ev(350, 7);
        let min = shrink(&schedule, |cand| cand.contains(&culprit));
        assert_eq!(min, vec![culprit]);
    }

    #[test]
    fn never_fails_shrinks_to_original() {
        let schedule: Vec<ScheduledFault> = (0..4).map(|i| ev(i * 100, i as u32)).collect();
        let min = shrink(&schedule, |_| false);
        assert_eq!(min, schedule);
    }

    #[test]
    fn rendered_repro_is_rust_shaped() {
        let schedule = vec![
            ev(1_000, 2),
            ScheduledFault::new(
                2_000,
                ClusterFault::Restart {
                    node: NodeId(2),
                    kind: RestartKind::Recover,
                },
            ),
            ScheduledFault::new(
                3_000,
                ClusterFault::PartitionHalves {
                    left: vec![NodeId(0)],
                    right: vec![NodeId(1), NodeId(2)],
                },
            ),
        ];
        let s = render_repro(42, "stock", &schedule);
        assert!(s.contains("fn repro_seed_42()"), "{s}");
        assert!(s.contains("RestartKind::Recover"), "{s}");
        assert!(s.contains("vec![NodeId(1), NodeId(2)]"), "{s}");
        assert!(
            s.contains("run_with_schedule(42, &HarnessConfig::stock()"),
            "{s}"
        );
    }
}
