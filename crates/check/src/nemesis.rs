//! Seeded fault-schedule generation.
//!
//! One `u64` seed deterministically expands into a timed
//! [`ScheduledFault`] schedule: a sequence of non-overlapping fault
//! *episodes* (crash→restart, partition→heal, loss→clear), each
//! well-formed on its own, so any *subset* of the schedule is still a
//! runnable schedule — the property the ddmin shrinker relies on. The
//! harness appends its own heal-everything tail after the last event, so
//! even a subset that drops a heal or restart ends in a recovered
//! cluster.
//!
//! Two profiles:
//!
//! * **stock** keeps every fault inside the envelope where Sedna's quorum
//!   intersection argument holds — at most one data node down at a time,
//!   crashes shorter than the coordination session timeout (so membership
//!   never changes), restarts recover from the WAL, partitions only
//!   between data nodes (clients always reach replicas). Under this
//!   profile the history checker's session guarantees must hold on every
//!   seed.
//! * **churn** additionally schedules long crashes (the node's session
//!   expires, the manager rebalances its vnodes away, then back on
//!   rejoin) and empty restarts (the node loses its memory and has no
//!   WAL). Both open windows where LWW-over-changing-replica-sets gives
//!   no session guarantees (see DESIGN.md §14), so churn runs are checked
//!   for end-state convergence only.

use sedna_common::rng::Xoshiro256;
use sedna_common::time::Micros;
use sedna_common::NodeId;
use sedna_core::fault::{ClusterFault, RestartKind, ScheduledFault};

/// Knobs for schedule generation.
#[derive(Clone, Debug)]
pub struct NemesisConfig {
    /// Number of data nodes faults may target.
    pub data_nodes: u32,
    /// Virtual time of the first fault (µs) — leave room for the cluster
    /// to assemble and the workload to build some history first.
    pub start_micros: Micros,
    /// Number of fault episodes (each expands to 1–2 events).
    pub episodes: usize,
    /// Crash outage duration range (µs). Stock keeps the upper bound
    /// under the 1 s coordination session timeout so membership is
    /// stable; churn crosses it.
    pub crash_micros: (Micros, Micros),
    /// Partition / loss episode duration range (µs).
    pub partition_micros: (Micros, Micros),
    /// Gap between consecutive episodes (µs).
    pub gap_micros: (Micros, Micros),
    /// Ceiling for lossy-link episodes, in ‰ of frames dropped.
    pub max_loss_permille: u32,
    /// Whether crash episodes may tear the victim's WAL tail.
    pub allow_torn_wal: bool,
    /// Whether restarts may be [`RestartKind::Empty`] (memory and WAL
    /// both gone). Safety-breaking; churn only.
    pub allow_empty_restart: bool,
    /// Whether crashes may outlast the coordination session timeout,
    /// forcing a manager-driven leave/rebalance and a rejoin on restart.
    /// Safety-breaking; churn only.
    pub allow_leave_windows: bool,
}

impl NemesisConfig {
    /// The safety-preserving profile (see module docs).
    pub fn stock(data_nodes: u32) -> Self {
        NemesisConfig {
            data_nodes,
            start_micros: 2_000_000,
            episodes: 7,
            crash_micros: (300_000, 700_000),
            partition_micros: (300_000, 900_000),
            gap_micros: (200_000, 800_000),
            max_loss_permille: 80,
            allow_torn_wal: true,
            allow_empty_restart: false,
            allow_leave_windows: false,
        }
    }

    /// The membership-churn profile: stock plus long crashes and empty
    /// restarts.
    pub fn churn(data_nodes: u32) -> Self {
        NemesisConfig {
            crash_micros: (300_000, 2_500_000),
            allow_empty_restart: true,
            allow_leave_windows: true,
            ..Self::stock(data_nodes)
        }
    }
}

fn pick(rng: &mut Xoshiro256, (lo, hi): (Micros, Micros)) -> Micros {
    lo + rng.next_below(hi.saturating_sub(lo).max(1))
}

/// Expands `seed` into a fault schedule under `cfg`. Same seed, same
/// config, same schedule — always.
pub fn generate(seed: u64, cfg: &NemesisConfig) -> Vec<ScheduledFault> {
    // Decorrelate from the simulator, which consumes the raw seed.
    let mut rng = Xoshiro256::seeded(seed ^ 0x4E45_4D45_5349_5321);
    let mut out = Vec::new();
    let mut t = cfg.start_micros;
    let nodes = cfg.data_nodes.max(2);
    for _ in 0..cfg.episodes {
        // 0–1: crash, 2: pair partition, 3: group partition, 4: loss.
        match rng.next_below(5) {
            kind @ (0 | 1) => {
                let node = NodeId(rng.next_below(u64::from(nodes)) as u32);
                let long = cfg.allow_leave_windows && rng.chance(0.5);
                let outage = if long {
                    // Past the 1 s session timeout plus the manager's
                    // leave debounce: the node will be rebalanced away.
                    1_800_000 + rng.next_below(1_000_000)
                } else {
                    pick(&mut rng, cfg.crash_micros)
                };
                let torn = cfg.allow_torn_wal && kind == 1;
                out.push(ScheduledFault::new(
                    t,
                    ClusterFault::Crash {
                        node,
                        torn_wal: torn,
                    },
                ));
                let restart_kind = if cfg.allow_empty_restart && rng.chance(0.33) {
                    RestartKind::Empty
                } else {
                    RestartKind::Recover
                };
                t += outage;
                out.push(ScheduledFault::new(
                    t,
                    ClusterFault::Restart {
                        node,
                        kind: restart_kind,
                    },
                ));
            }
            2 => {
                let a = rng.next_below(u64::from(nodes)) as u32;
                let b = (a + 1 + rng.next_below(u64::from(nodes) - 1) as u32) % nodes;
                out.push(ScheduledFault::new(
                    t,
                    ClusterFault::PartitionPair {
                        a: NodeId(a),
                        b: NodeId(b),
                    },
                ));
                t += pick(&mut rng, cfg.partition_micros);
                out.push(ScheduledFault::new(
                    t,
                    ClusterFault::HealPair {
                        a: NodeId(a),
                        b: NodeId(b),
                    },
                ));
            }
            3 => {
                // Split the data nodes in two at a random cut point.
                let cut = 1 + rng.next_below(u64::from(nodes) - 1) as u32;
                let left: Vec<NodeId> = (0..cut).map(NodeId).collect();
                let right: Vec<NodeId> = (cut..nodes).map(NodeId).collect();
                out.push(ScheduledFault::new(
                    t,
                    ClusterFault::PartitionHalves { left, right },
                ));
                t += pick(&mut rng, cfg.partition_micros);
                out.push(ScheduledFault::new(t, ClusterFault::HealAll));
            }
            _ => {
                let permille = 10 + rng.next_below(u64::from(cfg.max_loss_permille.max(11)) - 10);
                out.push(ScheduledFault::new(
                    t,
                    ClusterFault::SetLinkLossPermille(permille as u32),
                ));
                t += pick(&mut rng, cfg.partition_micros);
                out.push(ScheduledFault::new(t, ClusterFault::SetLinkLossPermille(0)));
            }
        }
        t += pick(&mut rng, cfg.gap_micros);
    }
    out
}

/// Virtual time of the last event in a schedule (`0` when empty).
pub fn schedule_end(schedule: &[ScheduledFault]) -> Micros {
    schedule.iter().map(|f| f.at).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = NemesisConfig::stock(5);
        assert_eq!(generate(42, &cfg), generate(42, &cfg));
        assert_ne!(generate(42, &cfg), generate(43, &cfg));
    }

    #[test]
    fn stock_profile_keeps_at_most_one_node_down() {
        let cfg = NemesisConfig::stock(5);
        for seed in 0..50 {
            let schedule = generate(seed, &cfg);
            let mut down: Option<NodeId> = None;
            for ev in &schedule {
                match &ev.fault {
                    ClusterFault::Crash { node, .. } => {
                        assert!(down.is_none(), "seed {seed}: two nodes down at once");
                        down = Some(*node);
                    }
                    ClusterFault::Restart { node, kind } => {
                        assert_eq!(down, Some(*node), "seed {seed}: restart without crash");
                        assert_eq!(*kind, RestartKind::Recover, "seed {seed}: stock restart");
                        down = None;
                    }
                    _ => {}
                }
            }
            assert!(
                down.is_none(),
                "seed {seed}: schedule ends with a node down"
            );
        }
    }

    #[test]
    fn stock_crashes_stay_under_session_timeout() {
        let cfg = NemesisConfig::stock(5);
        for seed in 0..50 {
            let schedule = generate(seed, &cfg);
            let mut crash_at = None;
            for ev in &schedule {
                match &ev.fault {
                    ClusterFault::Crash { .. } => crash_at = Some(ev.at),
                    ClusterFault::Restart { .. } => {
                        let outage = ev.at - crash_at.take().unwrap();
                        assert!(outage < 1_000_000, "seed {seed}: outage {outage}µs");
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn churn_profile_reaches_leave_windows_and_empty_restarts() {
        let cfg = NemesisConfig::churn(5);
        let (mut saw_long, mut saw_empty) = (false, false);
        for seed in 0..50 {
            let schedule = generate(seed, &cfg);
            let mut crash_at = None;
            for ev in &schedule {
                match &ev.fault {
                    ClusterFault::Crash { .. } => crash_at = Some(ev.at),
                    ClusterFault::Restart { kind, .. } => {
                        if ev.at - crash_at.take().unwrap() > 1_500_000 {
                            saw_long = true;
                        }
                        if *kind == RestartKind::Empty {
                            saw_empty = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_long, "no session-expiring crash in 50 churn seeds");
        assert!(saw_empty, "no empty restart in 50 churn seeds");
    }
}
