//! Seed-sweep driver for CI and local soak runs.
//!
//! ```text
//! nemesis_sweep [--seeds N] [--start S]
//!               [--profile stock|churn|broken|skewed|skewed-legacy]
//!               [--out DIR] [--expect-violations] [--shrink]
//!               [--min-alert-detection PCT]
//! ```
//!
//! Runs `N` consecutive seeds through the nemesis harness. For every
//! failing seed it writes an artifact file to `--out` (default
//! `nemesis-artifacts/`) containing the violations, the (optionally
//! shrunk) schedule rendered as a copy-pasteable test, the alert log,
//! the per-node divergence timeline, and the tail of the recorded
//! history. Exit status: `0` when the outcome matches expectation — no
//! violations normally, at least one violation under
//! `--expect-violations` (the mutation-sanity sweep on the broken
//! configuration) — `1` otherwise.
//!
//! `--min-alert-detection PCT` additionally requires the divergence or
//! lost-write alert to have *fired* on at least `PCT`% of seeds — the
//! observability acceptance gate for the skewed-legacy sweep, where
//! every seed's ground truth loses acked writes and the observatory
//! must notice.

use std::io::Write;
use std::path::PathBuf;

use sedna_check::harness::{run_with_schedule, HarnessConfig};
use sedna_check::shrink::{render_repro, shrink};
use sedna_check::{run_nemesis, RunReport};
use sedna_obs::AlertPhase;

struct Args {
    seeds: u64,
    start: u64,
    profile: String,
    out: PathBuf,
    expect_violations: bool,
    do_shrink: bool,
    min_alert_detection: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 200,
        start: 1,
        profile: "stock".to_string(),
        out: PathBuf::from("nemesis-artifacts"),
        expect_violations: false,
        do_shrink: true,
        min_alert_detection: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds").parse().expect("--seeds"),
            "--start" => args.start = value("--start").parse().expect("--start"),
            "--profile" => args.profile = value("--profile"),
            "--out" => args.out = PathBuf::from(value("--out")),
            "--expect-violations" => args.expect_violations = true,
            "--no-shrink" => args.do_shrink = false,
            "--min-alert-detection" => {
                args.min_alert_detection = value("--min-alert-detection")
                    .parse()
                    .expect("--min-alert-detection");
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// True when the run's alert log shows the divergence observatory
/// noticing the incident class the skewed-legacy profile manufactures.
fn alert_detected(report: &RunReport) -> bool {
    report.alert_log.iter().any(|t| {
        t.to == AlertPhase::Firing && (t.slo == "lost_writes" || t.slo == "divergence_age")
    })
}

fn config_for(profile: &str) -> (HarnessConfig, &'static str) {
    match profile {
        "stock" => (HarnessConfig::stock(), "stock"),
        "churn" => (HarnessConfig::churn(), "churn"),
        "broken" => (HarnessConfig::broken(), "broken"),
        // Heavy clock skew under dotted version vectors: must stay clean.
        "skewed" => (HarnessConfig::skewed(), "skewed"),
        // Same skew on the legacy timestamp resolver: run with
        // `--expect-violations` — LWW must demonstrably lose a
        // concurrent acked write on some seed.
        "skewed-legacy" => (HarnessConfig::skewed_legacy(), "skewed_legacy"),
        other => panic!("unknown profile {other} (stock|churn|broken|skewed|skewed-legacy)"),
    }
}

fn write_artifact(
    dir: &PathBuf,
    cfg: &HarnessConfig,
    ctor: &str,
    report: &RunReport,
    do_shrink: bool,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("seed-{}.txt", report.seed));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "seed: {}", report.seed)?;
    writeln!(f, "profile: {ctor}")?;
    writeln!(f, "ops completed: {}", report.ops_done)?;
    writeln!(f, "violations ({}):", report.violations.len())?;
    for v in &report.violations {
        writeln!(f, "  {v:?}")?;
    }
    writeln!(f, "\nalert log ({} transitions):", report.alert_log.len())?;
    for t in &report.alert_log {
        writeln!(
            f,
            "  [{:>10}µs] {} {}->{} short={:.3} long={:.3} value={:.1} trace={:#x}",
            t.at, t.slo, t.from, t.to, t.short_burn, t.long_burn, t.last_value, t.trace
        )?;
    }
    if !report.alerts_firing.is_empty() {
        writeln!(f, "still firing at end: {:?}", report.alerts_firing)?;
    }
    writeln!(f, "\ndivergence timeline (per node):")?;
    for (node, snap) in &report.divergence {
        writeln!(
            f,
            "  node {}: {} episodes total, {} open (max age {}µs)",
            node.0, snap.episodes_total, snap.open, snap.max_age_micros
        )?;
        for ep in &snap.episodes {
            writeln!(
                f,
                "    vnode {} peer {}: {}µs -> {}µs ({}µs to converge)",
                ep.vnode.0,
                ep.peer.0,
                ep.started,
                ep.resolved,
                ep.duration()
            )?;
        }
    }
    // Where this seed's latency went: per-segment critical-path sums for
    // all ops vs. the slow tail, merged across the workload clients.
    writeln!(f, "\ntail critical-path attribution:")?;
    writeln!(f, "  {}", report.tail_attribution.to_json())?;
    let (q, l, a, n, o) = report.tail_attribution.tail.shares();
    writeln!(
        f,
        "  tail shares: queue={q:.2} lock={l:.2} apply={a:.2} net={n:.2} other={o:.2}"
    )?;
    let schedule = if do_shrink {
        eprintln!(
            "  shrinking seed {} ({} events)...",
            report.seed,
            report.schedule.len()
        );
        let shrunk = shrink(&report.schedule, |cand| {
            !run_with_schedule(report.seed, cfg, cand).passed()
        });
        writeln!(
            f,
            "\nschedule shrunk {} -> {} events",
            report.schedule.len(),
            shrunk.len()
        )?;
        shrunk
    } else {
        report.schedule.clone()
    };
    writeln!(f, "\n--- minimal reproducer ---\n")?;
    writeln!(f, "{}", render_repro(report.seed, ctor, &schedule))?;
    writeln!(f, "--- history tail (last 60 events) ---")?;
    let tail_from = report.history.len().saturating_sub(60);
    for ev in &report.history[tail_from..] {
        writeln!(f, "  {ev:?}")?;
    }
    // The violating run's own observability snapshot (staleness lags,
    // repair counters, journal gauges) as a sidecar for debugging.
    let metrics_path = dir.join(format!("seed-{}-metrics.json", report.seed));
    std::fs::write(&metrics_path, &report.metrics_json)?;
    writeln!(f, "\nmetrics snapshot: {}", metrics_path.display())?;
    // Black-box flight recording frozen at the moment the violation was
    // detected: the last ~256 engine/epoch events per thread.
    if let Some(flight) = &report.flight_json {
        let flight_path = dir.join(format!("seed-{}-flight.json", report.seed));
        std::fs::write(&flight_path, flight)?;
        writeln!(f, "flight recording: {}", flight_path.display())?;
    }
    Ok(path)
}

fn main() {
    let args = parse_args();
    let (cfg, ctor) = config_for(&args.profile);
    let mut failing: Vec<u64> = Vec::new();
    let mut total_ops: u64 = 0;
    let mut detected: u64 = 0;
    let mut tail_merged = sedna_obs::TailSnapshot::default();
    for seed in args.start..args.start + args.seeds {
        let report = run_nemesis(seed, &cfg);
        total_ops += report.ops_done;
        tail_merged.merge(&report.tail_attribution);
        if alert_detected(&report) {
            detected += 1;
        }
        if report.passed() {
            eprintln!("seed {seed}: ok ({} ops)", report.ops_done);
            continue;
        }
        eprintln!(
            "seed {seed}: {} violation(s), first: {:?}",
            report.violations.len(),
            report.violations.first()
        );
        failing.push(seed);
        // Shrinking re-runs the harness many times; only pay for it when
        // a violation is unexpected (CI wants the minimal reproducer).
        let shrink_this = args.do_shrink && !args.expect_violations;
        match write_artifact(&args.out, &cfg, ctor, &report, shrink_this) {
            Ok(path) => eprintln!("  artifact: {}", path.display()),
            Err(e) => eprintln!("  artifact write failed: {e}"),
        }
    }
    // Sweep-wide critical-path attribution — written on passing sweeps
    // too, so every CI run carries "where the tail latency went" for its
    // whole fault population, not just violating seeds.
    if std::fs::create_dir_all(&args.out).is_ok() {
        let tail_path = args.out.join("tail-attribution.json");
        let body = format!(
            "{{\"profile\":\"{ctor}\",\"seeds\":{},\"attribution\":{}}}",
            args.seeds,
            tail_merged.to_json()
        );
        if std::fs::write(&tail_path, body).is_ok() {
            eprintln!("tail attribution: {}", tail_path.display());
        }
    }
    println!(
        "nemesis-sweep profile={} seeds={}..{} failing={} total_ops={} alert_detected={}/{}",
        ctor,
        args.start,
        args.start + args.seeds - 1,
        failing.len(),
        total_ops,
        detected,
        args.seeds
    );
    if !failing.is_empty() {
        println!("failing seeds: {failing:?}");
    }
    let mut ok = if args.expect_violations {
        !failing.is_empty()
    } else {
        failing.is_empty()
    };
    if args.min_alert_detection > 0 && detected * 100 < args.min_alert_detection * args.seeds {
        eprintln!(
            "alert detection below the {}% gate: divergence/lost-write alerts fired on \
             {detected}/{} seeds",
            args.min_alert_detection, args.seeds
        );
        ok = false;
    }
    if !ok {
        if args.expect_violations && failing.is_empty() {
            eprintln!(
                "expected the weakened configuration to trip the checker, but every seed passed"
            );
        }
        std::process::exit(1);
    }
}
