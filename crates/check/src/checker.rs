//! Eventual-consistency history checker.
//!
//! Consumes the per-client op history ([`HistoryEvent`]s recorded by
//! `ClientCore`) plus the cluster's end-of-run replica state, and checks
//! the guarantees Sedna's quorum argument (`R+W>N`, durable-before-ack)
//! actually gives under stable membership:
//!
//! * **Session guarantees** (per client, per key): a *clean* quorum read
//!   — one where R replicas agreed and nothing was degraded — never
//!   returns a version older than (a) anything the same client already
//!   cleanly read (monotonic reads) or (b) the client's own latest
//!   acknowledged write (read-your-writes). Degraded reads are merged
//!   best-effort answers and are exempt by design.
//! * **No lost acknowledged writes**: after the harness heals everything
//!   and lets anti-entropy converge, every key's surviving version is at
//!   least as new as the newest acknowledged write to it.
//! * **Replica agreement**: at end of run the replicas of every key
//!   (under the final ring) hold the same freshest timestamp.
//!
//! Since PR-8 the history also carries dotted-version-vector evidence:
//! every write records its *dot* (its unique `ts`) and the causal
//! context it attached, and every read records the sibling dots it
//! returned. On top of the timestamp checks this enables:
//!
//! * **Session write guarantees** (checked inside [`check_sessions`]):
//!   per client and key, write timestamps are strictly monotonic
//!   (monotonic writes) and strictly above every dot the client
//!   previously read cleanly (writes follow reads). Both hold even under
//!   heavy clock skew because the client HLC observes every dot it sees;
//!   a client that stopped folding observed dots into its clock trips
//!   these immediately.
//! * **No lost concurrent write** ([`check_lost_concurrent_writes`]): an
//!   acknowledged dot must either still be live on some replica at end
//!   of run, or be *causally* superseded — covered by the context of an
//!   issued write whose own dot is (transitively) safe. Timestamp LWW
//!   under skew fails exactly this: it silently drops an acked
//!   concurrent write that carried a smaller timestamp, which the
//!   per-key newest-timestamp check ([`check_lost_writes`]) can never
//!   see. The `skewed_legacy` harness profile demonstrates the trip.
//! * **Replica dot agreement** ([`check_replica_dot_agreement`]): after
//!   quiescence, replicas must agree on entire sibling *sets*, not
//!   merely on the freshest timestamp.

use std::collections::{BTreeMap, BTreeSet};

use sedna_common::{CausalContext, Key, NodeId, Timestamp, TraceId};
use sedna_core::cluster::SimCluster;
use sedna_core::history::{HistoryEvent, HistoryOp, HistoryOutcome};
use sedna_core::manager::ClusterManager;
use sedna_obs::{AlertPhase, AlertTransition};

/// One checker finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A clean quorum read travelled backwards past the client's floor
    /// (its own acked writes and previous clean reads of the key).
    StaleRead {
        /// The reading client (timestamp origin).
        client: NodeId,
        /// Key read.
        key: Key,
        /// Client-local op id of the offending read.
        op_id: u64,
        /// Trace of the offending read (joins with the journal).
        trace: TraceId,
        /// What the read returned (`None` = not found).
        got: Option<Timestamp>,
        /// What the session floor required.
        floor: Timestamp,
    },
    /// After quiescence, no replica of `key` holds a version at least as
    /// new as its newest acknowledged write.
    LostAckedWrite {
        /// Key whose write was lost.
        key: Key,
        /// Newest acknowledged write timestamp.
        acked: Timestamp,
        /// Best surviving version on any replica (`None` = gone).
        survivor: Option<Timestamp>,
    },
    /// Replicas of `key` disagree on its freshest version at end of run.
    ReplicaDisagreement {
        /// Key in disagreement.
        key: Key,
        /// Freshest version per replica (`None` = replica lacks the key).
        replicas: Vec<(NodeId, Option<Timestamp>)>,
    },
    /// An acknowledged write's dot is gone from every replica and no
    /// surviving write causally covers it: a concurrent write shadowed
    /// it without having observed it. The anomaly timestamp LWW commits
    /// under clock skew and dotted version vectors rule out.
    LostConcurrentWrite {
        /// The client whose acked write vanished (dot origin).
        client: NodeId,
        /// Key written.
        key: Key,
        /// The acknowledged dot that is neither live nor covered.
        dot: Timestamp,
        /// Trace of the lost write (joins with the journal).
        trace: TraceId,
    },
    /// A client issued two writes to one key with non-increasing
    /// timestamps — its HLC went backwards (monotonic-writes breach).
    MonotonicWrites {
        /// The writing client.
        client: NodeId,
        /// Key written.
        key: Key,
        /// Client-local op id of the offending write.
        op_id: u64,
        /// The earlier write's timestamp.
        prev: Timestamp,
        /// The offending (non-increasing) timestamp.
        got: Timestamp,
    },
    /// A client issued a write whose timestamp does not exceed a dot it
    /// had already read — the write could sort *before* state it has
    /// seen (writes-follow-reads breach; the HLC failed to observe a
    /// read dot).
    WritesFollowReads {
        /// The writing client.
        client: NodeId,
        /// Key written.
        key: Key,
        /// Client-local op id of the offending write.
        op_id: u64,
        /// The largest dot the client had cleanly read for the key.
        read: Timestamp,
        /// The offending write timestamp.
        got: Timestamp,
    },
    /// Replicas of `key` hold different sibling sets at end of run —
    /// anti-entropy failed to converge the full dot state.
    ReplicaDotDisagreement {
        /// Key in disagreement.
        key: Key,
        /// Sorted sibling dots per replica.
        replicas: Vec<(NodeId, Vec<Timestamp>)>,
    },
    /// Observability cross-check: the run's ground truth showed
    /// lost-write anomalies, but neither the `lost_writes` nor the
    /// `divergence_age` alert ever fired — the observatory slept through
    /// a real incident.
    AlertMissed {
        /// The alert family that was expected to fire.
        expected: &'static str,
    },
    /// Observability cross-check: an alert was still firing after the
    /// heal + quiesce tail of a run whose ground truth was clean —
    /// either a false positive or a stuck resolver.
    AlertStuckFiring {
        /// The alert that failed to resolve.
        slo: &'static str,
    },
}

impl Violation {
    /// True for the session-guarantee / durability classes the mutation
    /// test requires the broken config to trip.
    pub fn is_session_or_durability(&self) -> bool {
        matches!(
            self,
            Violation::StaleRead { .. }
                | Violation::LostAckedWrite { .. }
                | Violation::LostConcurrentWrite { .. }
                | Violation::MonotonicWrites { .. }
                | Violation::WritesFollowReads { .. }
        )
    }
}

/// Checks the per-client session guarantees over a recorded history.
///
/// Events must be in record order (which is per-client program order —
/// each simulated client is single-threaded). Completes without a
/// matching Invoke (multi-key group children) are ignored.
///
/// Besides the read-side guarantees (monotonic reads, read-your-writes
/// on clean quorum reads) this also enforces the write-side session
/// guarantees at invoke time: **monotonic writes** (a client's write
/// timestamps to a key strictly increase) and **writes follow reads** (a
/// write's timestamp strictly exceeds every dot the client previously
/// read cleanly for that key). Both must hold regardless of clock skew,
/// because the client HLC folds in every timestamp it observes.
pub fn check_sessions(events: &[HistoryEvent]) -> Vec<Violation> {
    // Open invokes: (client, op_id) → op.
    let mut open: BTreeMap<(NodeId, u64), HistoryOp> = BTreeMap::new();
    // Session floor: (client, key) → minimum timestamp the next clean
    // read of `key` by `client` may return.
    let mut floor: BTreeMap<(NodeId, Key), Timestamp> = BTreeMap::new();
    // Last *issued* write timestamp per (client, key) — monotonic writes.
    let mut last_write: BTreeMap<(NodeId, Key), Timestamp> = BTreeMap::new();
    // Largest dot cleanly read per (client, key) — writes follow reads.
    let mut read_high: BTreeMap<(NodeId, Key), Timestamp> = BTreeMap::new();
    let mut violations = Vec::new();
    // Trace ids of open invokes, for reporting.
    let mut traces: BTreeMap<(NodeId, u64), TraceId> = BTreeMap::new();

    for ev in events {
        match ev {
            HistoryEvent::Invoke {
                client,
                op_id,
                trace,
                op,
                ..
            } => {
                if let HistoryOp::Write { key, ts, .. } = op {
                    if let Some(prev) = last_write.insert((*client, key.clone()), *ts) {
                        if *ts <= prev {
                            violations.push(Violation::MonotonicWrites {
                                client: *client,
                                key: key.clone(),
                                op_id: *op_id,
                                prev,
                                got: *ts,
                            });
                        }
                    }
                    if let Some(&read) = read_high.get(&(*client, key.clone())) {
                        if *ts <= read {
                            violations.push(Violation::WritesFollowReads {
                                client: *client,
                                key: key.clone(),
                                op_id: *op_id,
                                read,
                                got: *ts,
                            });
                        }
                    }
                }
                open.insert((*client, *op_id), op.clone());
                traces.insert((*client, *op_id), *trace);
            }
            HistoryEvent::Complete {
                client,
                op_id,
                outcome,
                ..
            } => {
                let Some(op) = open.remove(&(*client, *op_id)) else {
                    continue; // group child or replayed completion
                };
                let trace = traces.remove(&(*client, *op_id)).unwrap_or_default();
                match (op, outcome) {
                    (HistoryOp::Write { key, ts, .. }, HistoryOutcome::WriteOk) => {
                        // Acknowledged: read-your-writes owes this much.
                        let f = floor.entry((*client, key)).or_insert(Timestamp::ZERO);
                        *f = (*f).max(ts);
                    }
                    (HistoryOp::Write { .. }, _) => {} // no promise made
                    (
                        HistoryOp::Read { key },
                        HistoryOutcome::Read {
                            latest,
                            dots,
                            degraded: false,
                        },
                    ) => {
                        let f = floor
                            .entry((*client, key.clone()))
                            .or_insert(Timestamp::ZERO);
                        if latest.unwrap_or(Timestamp::ZERO) < *f {
                            violations.push(Violation::StaleRead {
                                client: *client,
                                key: key.clone(),
                                op_id: *op_id,
                                trace,
                                got: *latest,
                                floor: *f,
                            });
                        } else if let Some(ts) = latest {
                            // Monotonic reads: never below this again.
                            *f = (*f).max(*ts);
                        }
                        // Every sibling dot seen raises the
                        // writes-follow-reads bar, not just the freshest.
                        if let Some(&max_dot) = dots.iter().max() {
                            let rh = read_high.entry((*client, key)).or_insert(Timestamp::ZERO);
                            *rh = (*rh).max(max_dot);
                        }
                    }
                    (HistoryOp::Read { .. }, _) => {} // degraded/failed: exempt
                }
            }
        }
    }
    violations
}

/// Newest acknowledged write per key across all clients.
pub fn acked_writes(events: &[HistoryEvent]) -> BTreeMap<Key, Timestamp> {
    let mut open: BTreeMap<(NodeId, u64), HistoryOp> = BTreeMap::new();
    let mut acked: BTreeMap<Key, Timestamp> = BTreeMap::new();
    for ev in events {
        match ev {
            HistoryEvent::Invoke {
                client, op_id, op, ..
            } => {
                open.insert((*client, *op_id), op.clone());
            }
            HistoryEvent::Complete {
                client,
                op_id,
                outcome: HistoryOutcome::WriteOk,
                ..
            } => {
                if let Some(HistoryOp::Write { key, ts, .. }) = open.remove(&(*client, *op_id)) {
                    let f = acked.entry(key).or_insert(Timestamp::ZERO);
                    *f = (*f).max(ts);
                }
            }
            HistoryEvent::Complete { client, op_id, .. } => {
                open.remove(&(*client, *op_id));
            }
        }
    }
    acked
}

/// One write observed in the history, with its dot-level evidence.
#[derive(Clone, Debug)]
pub struct WriteRecord {
    /// The issuing client (dot origin).
    pub client: NodeId,
    /// Key written.
    pub key: Key,
    /// The write's dot (its issue timestamp — globally unique).
    pub dot: Timestamp,
    /// Causal context the write carried.
    pub ctx: CausalContext,
    /// True when a full W-quorum acknowledged it.
    pub acked: bool,
    /// Trace id (joins with the journal).
    pub trace: TraceId,
}

/// Every write the history issued, acked or not, with its dot and
/// context. Unacked writes matter too: one that landed on a single
/// replica can still causally supersede older dots, and the
/// lost-concurrent-write fixpoint must honour that.
pub fn write_records(events: &[HistoryEvent]) -> Vec<WriteRecord> {
    let mut pending: BTreeMap<(NodeId, u64), usize> = BTreeMap::new();
    let mut out: Vec<WriteRecord> = Vec::new();
    for ev in events {
        match ev {
            HistoryEvent::Invoke {
                client,
                op_id,
                trace,
                op: HistoryOp::Write { key, ts, ctx },
                ..
            } => {
                pending.insert((*client, *op_id), out.len());
                out.push(WriteRecord {
                    client: *client,
                    key: key.clone(),
                    dot: *ts,
                    ctx: ctx.clone(),
                    acked: false,
                    trace: *trace,
                });
            }
            HistoryEvent::Complete {
                client,
                op_id,
                outcome,
                ..
            } => {
                if let Some(i) = pending.remove(&(*client, *op_id)) {
                    out[i].acked = *outcome == HistoryOutcome::WriteOk;
                }
            }
            HistoryEvent::Invoke { .. } => {}
        }
    }
    out
}

/// Checks that no *acknowledged* write was dropped without causal
/// justification. A dot is **safe** when it is still live on some final
/// replica, or when it is covered by the causal context of an issued
/// write whose own dot is safe (computed to a fixpoint — chains of
/// causal overwrites terminate at a live dot). Every acked dot left
/// unsafe was shadowed by a write that had never observed it: the
/// concurrent-overwrite data loss LWW commits under clock skew.
///
/// Only sound when the store retains siblings (`TablePolicy::Siblings`);
/// under LWW resolution a concurrent larger-timestamp write legitimately
/// collapses the row.
pub fn check_lost_concurrent_writes(
    records: &[WriteRecord],
    state: &BTreeMap<Key, Vec<(NodeId, Vec<Timestamp>)>>,
) -> Vec<Violation> {
    let mut by_key: BTreeMap<&Key, Vec<&WriteRecord>> = BTreeMap::new();
    for r in records {
        by_key.entry(&r.key).or_default().push(r);
    }
    let mut violations = Vec::new();
    for (key, recs) in by_key {
        let live: BTreeSet<Timestamp> = state
            .get(key)
            .map(|rows| {
                rows.iter()
                    .flat_map(|(_, dots)| dots.iter().copied())
                    .collect()
            })
            .unwrap_or_default();
        let mut safe: BTreeSet<Timestamp> = recs
            .iter()
            .map(|r| r.dot)
            .filter(|d| live.contains(d))
            .collect();
        // Expand: a dot covered by a safe write's context is safe.
        loop {
            let mut grew = false;
            for r in &recs {
                if safe.contains(&r.dot) {
                    continue;
                }
                if recs
                    .iter()
                    .any(|w| safe.contains(&w.dot) && w.ctx.covers(&r.dot))
                {
                    safe.insert(r.dot);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        for r in recs {
            if r.acked && !safe.contains(&r.dot) {
                violations.push(Violation::LostConcurrentWrite {
                    client: r.client,
                    key: r.key.clone(),
                    dot: r.dot,
                    trace: r.trace,
                });
            }
        }
    }
    violations
}

/// End-of-run replica state: key → freshest version per *current
/// replica* of that key (under the manager's final ring).
pub fn final_replica_state(
    cluster: &SimCluster,
) -> BTreeMap<Key, Vec<(NodeId, Option<Timestamp>)>> {
    let mgr = cluster
        .sim
        .actor_ref::<ClusterManager>(cluster.config.manager_actor())
        .expect("cluster manager actor");
    let map = mgr.map();
    let partitioner = &cluster.config.partitioner;

    // Freshest version per node per key.
    let mut per_node: BTreeMap<Key, BTreeMap<NodeId, Timestamp>> = BTreeMap::new();
    for n in 0..cluster.config.data_nodes as u32 {
        let node = NodeId(n);
        cluster.node(node).store().for_each(|key, versions| {
            if let Some(freshest) = versions.iter().map(|v| v.ts).max() {
                per_node
                    .entry(key.clone())
                    .or_default()
                    .insert(node, freshest);
            }
        });
    }

    let mut out = BTreeMap::new();
    for (key, holders) in per_node {
        let replicas = map.replicas(partitioner.locate(&key));
        let row: Vec<(NodeId, Option<Timestamp>)> = replicas
            .iter()
            .map(|r| (*r, holders.get(r).copied()))
            .collect();
        out.insert(key, row);
    }
    out
}

/// End-of-run replica state at dot granularity: key → the *sorted* list
/// of sibling dots each current replica holds. The evidence base for
/// [`check_lost_concurrent_writes`] (which dots are still live) and
/// [`check_replica_dot_agreement`] (do the replicas agree on full
/// sibling sets).
pub fn final_replica_dots(cluster: &SimCluster) -> BTreeMap<Key, Vec<(NodeId, Vec<Timestamp>)>> {
    let mgr = cluster
        .sim
        .actor_ref::<ClusterManager>(cluster.config.manager_actor())
        .expect("cluster manager actor");
    let map = mgr.map();
    let partitioner = &cluster.config.partitioner;

    let mut per_node: BTreeMap<Key, BTreeMap<NodeId, Vec<Timestamp>>> = BTreeMap::new();
    for n in 0..cluster.config.data_nodes as u32 {
        let node = NodeId(n);
        cluster.node(node).store().for_each_row(|key, snap| {
            let mut dots: Vec<Timestamp> = snap.as_slice().iter().map(|v| v.ts).collect();
            dots.sort();
            per_node.entry(key.clone()).or_default().insert(node, dots);
        });
    }

    let mut out = BTreeMap::new();
    for (key, holders) in per_node {
        let replicas = map.replicas(partitioner.locate(&key));
        let row: Vec<(NodeId, Vec<Timestamp>)> = replicas
            .iter()
            .map(|r| (*r, holders.get(r).cloned().unwrap_or_default()))
            .collect();
        out.insert(key, row);
    }
    out
}

/// Checks sibling-set agreement at end of run: every replica of every
/// key must hold the identical sorted dot list. Strictly stronger than
/// [`check_replica_agreement`]'s freshest-timestamp comparison — two
/// replicas can agree on the winner yet disagree on retained siblings.
pub fn check_replica_dot_agreement(
    state: &BTreeMap<Key, Vec<(NodeId, Vec<Timestamp>)>>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (key, replicas) in state {
        let mut sets = replicas.iter().map(|(_, dots)| dots);
        let first = sets.next();
        if sets.any(|dots| Some(dots) != first) {
            violations.push(Violation::ReplicaDotDisagreement {
                key: key.clone(),
                replicas: replicas.clone(),
            });
        }
    }
    violations
}

/// Checks all-replica agreement at end of run: every replica of every
/// key must hold the same freshest timestamp (and hold the key at all).
pub fn check_replica_agreement(
    state: &BTreeMap<Key, Vec<(NodeId, Option<Timestamp>)>>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (key, replicas) in state {
        let mut versions = replicas.iter().map(|(_, ts)| *ts);
        let first = versions.next().unwrap_or(None);
        if versions.any(|ts| ts != first) {
            violations.push(Violation::ReplicaDisagreement {
                key: key.clone(),
                replicas: replicas.clone(),
            });
        }
    }
    violations
}

/// Checks that no acknowledged write is lost: for every key with an
/// acked write, some replica must survive with a version at least that
/// new. (A *newer* survivor is fine — last-writer-wins may legitimately
/// shadow an acked write with a concurrent larger-timestamp write.)
pub fn check_lost_writes(
    acked: &BTreeMap<Key, Timestamp>,
    state: &BTreeMap<Key, Vec<(NodeId, Option<Timestamp>)>>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (key, &acked_ts) in acked {
        let survivor = state
            .get(key)
            .and_then(|row| row.iter().filter_map(|(_, ts)| *ts).max());
        if survivor.unwrap_or(Timestamp::ZERO) < acked_ts {
            violations.push(Violation::LostAckedWrite {
                key: key.clone(),
                acked: acked_ts,
                survivor,
            });
        }
    }
    violations
}

/// Cross-validates the alert engine against the checker's ground truth —
/// the observability plane is itself under test:
///
/// * a run whose history shows lost writes ([`Violation::LostAckedWrite`]
///   or [`Violation::LostConcurrentWrite`]) must have fired the
///   `lost_writes` or `divergence_age` alert at some point — silence is
///   an [`Violation::AlertMissed`];
/// * a run whose ground truth is *clean* must end with no alert still
///   firing after the heal + quiesce tail — a leftover is an
///   [`Violation::AlertStuckFiring`] (false positive or stuck resolver).
///
/// Transient fires on clean runs are fine by design: a partition really
/// did delay convergence; what matters is that the alert resolved once
/// the signal recovered.
pub fn check_alert_crossvalidation(
    ground_truth: &[Violation],
    transitions: &[AlertTransition],
    firing: &[&'static str],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let lost_write_truth = ground_truth.iter().any(|v| {
        matches!(
            v,
            Violation::LostAckedWrite { .. } | Violation::LostConcurrentWrite { .. }
        )
    });
    let fired = |slo: &str| {
        transitions
            .iter()
            .any(|t| t.slo == slo && t.to == AlertPhase::Firing)
    };
    if lost_write_truth && !fired("lost_writes") && !fired("divergence_age") {
        violations.push(Violation::AlertMissed {
            expected: "lost_writes|divergence_age",
        });
    }
    if ground_truth.is_empty() {
        for slo in firing {
            violations.push(Violation::AlertStuckFiring { slo });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_common::time::Micros;

    fn ts(micros: Micros) -> Timestamp {
        Timestamp {
            micros,
            counter: 0,
            origin: NodeId(1_000),
        }
    }

    fn invoke(client: u32, op_id: u64, op: HistoryOp) -> HistoryEvent {
        HistoryEvent::Invoke {
            client: NodeId(client),
            op_id,
            trace: TraceId::default(),
            op,
            at: 0,
        }
    }

    fn complete(client: u32, op_id: u64, outcome: HistoryOutcome) -> HistoryEvent {
        HistoryEvent::Complete {
            client: NodeId(client),
            op_id,
            outcome,
            at: 0,
        }
    }

    fn write(key: &str, t: Micros) -> HistoryOp {
        HistoryOp::Write {
            key: Key::from(key),
            ts: ts(t),
            ctx: CausalContext::EMPTY,
        }
    }

    fn write_ctx(key: &str, t: Micros, covered: &[Micros]) -> HistoryOp {
        let dots: Vec<Timestamp> = covered.iter().map(|&m| ts(m)).collect();
        HistoryOp::Write {
            key: Key::from(key),
            ts: ts(t),
            ctx: CausalContext::from_dots(dots.iter()),
        }
    }

    fn read(key: &str) -> HistoryOp {
        HistoryOp::Read {
            key: Key::from(key),
        }
    }

    fn read_ok(latest: Option<Micros>) -> HistoryOutcome {
        HistoryOutcome::Read {
            latest: latest.map(ts),
            dots: latest.map(ts).into_iter().collect(),
            degraded: false,
        }
    }

    #[test]
    fn clean_read_below_own_acked_write_is_flagged() {
        let events = vec![
            invoke(1, 1, write("k", 100)),
            complete(1, 1, HistoryOutcome::WriteOk),
            invoke(1, 2, read("k")),
            complete(1, 2, read_ok(Some(50))),
        ];
        let v = check_sessions(&events);
        assert_eq!(v.len(), 1);
        assert!(matches!(&v[0], Violation::StaleRead { got: Some(g), .. } if g.micros == 50));
    }

    #[test]
    fn vanished_value_after_ack_is_flagged() {
        let events = vec![
            invoke(1, 1, write("k", 100)),
            complete(1, 1, HistoryOutcome::WriteOk),
            invoke(1, 2, read("k")),
            complete(1, 2, read_ok(None)),
        ];
        assert_eq!(check_sessions(&events).len(), 1);
    }

    #[test]
    fn non_monotonic_read_pair_is_flagged() {
        let events = vec![
            invoke(1, 1, read("k")),
            complete(1, 1, read_ok(Some(90))),
            invoke(1, 2, read("k")),
            complete(1, 2, read_ok(Some(40))),
        ];
        assert_eq!(check_sessions(&events).len(), 1);
    }

    #[test]
    fn degraded_and_failed_ops_make_no_promises() {
        let events = vec![
            invoke(1, 1, write("k", 100)),
            complete(1, 1, HistoryOutcome::WriteFailed),
            invoke(1, 2, read("k")),
            complete(
                1,
                2,
                HistoryOutcome::Read {
                    latest: None,
                    dots: Vec::new(),
                    degraded: true,
                },
            ),
            invoke(1, 3, read("k")),
            complete(1, 3, read_ok(None)),
        ];
        assert!(check_sessions(&events).is_empty());
    }

    #[test]
    fn floors_are_per_client_and_per_key() {
        let events = vec![
            invoke(1, 1, write("a", 100)),
            complete(1, 1, HistoryOutcome::WriteOk),
            // Different key: no floor.
            invoke(1, 2, read("b")),
            complete(1, 2, read_ok(None)),
            // Different client: no floor either.
            invoke(2, 1, read("a")),
            complete(2, 1, read_ok(None)),
        ];
        assert!(check_sessions(&events).is_empty());
    }

    #[test]
    fn orphan_completes_are_ignored() {
        let events = vec![complete(1, 7, HistoryOutcome::WriteOk)];
        assert!(check_sessions(&events).is_empty());
        assert!(acked_writes(&events).is_empty());
    }

    #[test]
    fn lost_write_detected_and_newer_survivor_accepted() {
        let mut acked = BTreeMap::new();
        acked.insert(Key::from("k"), ts(100));
        let mut state = BTreeMap::new();
        state.insert(
            Key::from("k"),
            vec![(NodeId(0), Some(ts(40))), (NodeId(1), None)],
        );
        assert_eq!(check_lost_writes(&acked, &state).len(), 1);
        state.insert(
            Key::from("k"),
            vec![(NodeId(0), Some(ts(120))), (NodeId(1), Some(ts(120)))],
        );
        assert!(check_lost_writes(&acked, &state).is_empty());
    }

    #[test]
    fn replica_disagreement_detected() {
        let mut state = BTreeMap::new();
        state.insert(
            Key::from("k"),
            vec![(NodeId(0), Some(ts(100))), (NodeId(1), Some(ts(90)))],
        );
        assert_eq!(check_replica_agreement(&state).len(), 1);
        state.insert(
            Key::from("k"),
            vec![(NodeId(0), Some(ts(100))), (NodeId(1), Some(ts(100)))],
        );
        assert!(check_replica_agreement(&state).is_empty());
    }

    #[test]
    fn write_timestamp_regression_is_flagged() {
        let events = vec![
            invoke(1, 1, write("k", 100)),
            complete(1, 1, HistoryOutcome::WriteOk),
            invoke(1, 2, write("k", 90)),
            complete(1, 2, HistoryOutcome::WriteOk),
        ];
        let v = check_sessions(&events);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(matches!(
            &v[0],
            Violation::MonotonicWrites { prev, got, .. }
                if prev.micros == 100 && got.micros == 90
        ));
        // Different keys or different clients: independent write clocks
        // are fine as long as each client's HLC is monotone per key —
        // but the client HLC is global, so same-client cross-key
        // regressions are legal only in histories that never interleave;
        // the check is deliberately per-key.
        let ok = vec![
            invoke(1, 1, write("a", 100)),
            complete(1, 1, HistoryOutcome::WriteOk),
            invoke(2, 2, write("a", 90)),
            complete(2, 2, HistoryOutcome::WriteOk),
        ];
        assert!(check_sessions(&ok).is_empty());
    }

    #[test]
    fn write_at_or_below_a_read_dot_is_flagged() {
        let events = vec![
            invoke(1, 1, read("k")),
            complete(1, 1, read_ok(Some(100))),
            // The client saw dot 100 but issued a write at 80: its HLC
            // failed to observe the read.
            invoke(1, 2, write("k", 80)),
            complete(1, 2, HistoryOutcome::WriteOk),
        ];
        let v = check_sessions(&events);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(matches!(
            &v[0],
            Violation::WritesFollowReads { read, got, .. }
                if read.micros == 100 && got.micros == 80
        ));
        // A write strictly above every read dot passes.
        let ok = vec![
            invoke(1, 1, read("k")),
            complete(1, 1, read_ok(Some(100))),
            invoke(1, 2, write("k", 101)),
            complete(1, 2, HistoryOutcome::WriteOk),
        ];
        assert!(check_sessions(&ok).is_empty());
    }

    fn dot_state(key: &str, live: &[Micros]) -> BTreeMap<Key, Vec<(NodeId, Vec<Timestamp>)>> {
        let dots: Vec<Timestamp> = live.iter().map(|&m| ts(m)).collect();
        let mut state = BTreeMap::new();
        state.insert(
            Key::from(key),
            vec![(NodeId(0), dots.clone()), (NodeId(1), dots)],
        );
        state
    }

    #[test]
    fn shadowed_acked_dot_without_coverage_is_lost() {
        // Two concurrent acked writes; only the larger-ts one survives
        // and its context never observed the smaller. LWW data loss.
        let events = vec![
            invoke(1, 1, write("k", 100)),
            complete(1, 1, HistoryOutcome::WriteOk),
            invoke(2, 1, write("k", 500)),
            complete(2, 1, HistoryOutcome::WriteOk),
        ];
        let records = write_records(&events);
        let v = check_lost_concurrent_writes(&records, &dot_state("k", &[500]));
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(matches!(
            &v[0],
            Violation::LostConcurrentWrite { dot, .. } if dot.micros == 100
        ));
    }

    #[test]
    fn causally_covered_dot_is_safe() {
        // The surviving write *observed* dot 100 (read it, then wrote):
        // a legitimate causal overwrite, not a loss.
        let events = vec![
            invoke(1, 1, write("k", 100)),
            complete(1, 1, HistoryOutcome::WriteOk),
            invoke(2, 1, write_ctx("k", 500, &[100])),
            complete(2, 1, HistoryOutcome::WriteOk),
        ];
        let records = write_records(&events);
        assert!(check_lost_concurrent_writes(&records, &dot_state("k", &[500])).is_empty());
    }

    #[test]
    fn coverage_chains_resolve_to_a_fixpoint() {
        // w1 (acked) covered by w2 (unacked!), w2 covered by w3 which is
        // live: the whole chain is safe — an unacked write that landed
        // on one replica still causally supersedes what it observed.
        let events = vec![
            invoke(1, 1, write("k", 100)),
            complete(1, 1, HistoryOutcome::WriteOk),
            invoke(2, 1, write_ctx("k", 200, &[100])),
            complete(2, 1, HistoryOutcome::WriteFailed),
            invoke(3, 1, write_ctx("k", 300, &[100, 200])),
            complete(3, 1, HistoryOutcome::WriteOk),
        ];
        let records = write_records(&events);
        assert!(check_lost_concurrent_writes(&records, &dot_state("k", &[300])).is_empty());
        // Break the chain: nothing live covers 100 any more.
        let broken = vec![
            invoke(1, 1, write("k", 100)),
            complete(1, 1, HistoryOutcome::WriteOk),
            invoke(3, 1, write("k", 300)),
            complete(3, 1, HistoryOutcome::WriteOk),
        ];
        let records = write_records(&broken);
        assert_eq!(
            check_lost_concurrent_writes(&records, &dot_state("k", &[300])).len(),
            1
        );
    }

    #[test]
    fn surviving_siblings_of_concurrent_acked_writes_both_pass() {
        // Sibling retention: both concurrent acked dots stay live, so
        // neither is lost — the DVV resolution the skewed profile runs.
        let events = vec![
            invoke(1, 1, write("k", 100)),
            complete(1, 1, HistoryOutcome::WriteOk),
            invoke(2, 1, write("k", 500)),
            complete(2, 1, HistoryOutcome::WriteOk),
        ];
        let records = write_records(&events);
        assert!(check_lost_concurrent_writes(&records, &dot_state("k", &[100, 500])).is_empty());
    }

    #[test]
    fn replica_dot_sets_must_match_exactly() {
        let mut state = BTreeMap::new();
        // Same freshest dot, different sibling sets: the timestamp-level
        // agreement check would pass this; the dot-level one must not.
        state.insert(
            Key::from("k"),
            vec![
                (NodeId(0), vec![ts(100), ts(500)]),
                (NodeId(1), vec![ts(500)]),
            ],
        );
        assert_eq!(check_replica_dot_agreement(&state).len(), 1);
        state.insert(
            Key::from("k"),
            vec![
                (NodeId(0), vec![ts(100), ts(500)]),
                (NodeId(1), vec![ts(100), ts(500)]),
            ],
        );
        assert!(check_replica_dot_agreement(&state).is_empty());
    }
}
