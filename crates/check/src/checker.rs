//! Eventual-consistency history checker.
//!
//! Consumes the per-client op history ([`HistoryEvent`]s recorded by
//! `ClientCore`) plus the cluster's end-of-run replica state, and checks
//! the guarantees Sedna's quorum argument (`R+W>N`, durable-before-ack)
//! actually gives under stable membership:
//!
//! * **Session guarantees** (per client, per key): a *clean* quorum read
//!   — one where R replicas agreed and nothing was degraded — never
//!   returns a version older than (a) anything the same client already
//!   cleanly read (monotonic reads) or (b) the client's own latest
//!   acknowledged write (read-your-writes). Degraded reads are merged
//!   best-effort answers and are exempt by design.
//! * **No lost acknowledged writes**: after the harness heals everything
//!   and lets anti-entropy converge, every key's surviving version is at
//!   least as new as the newest acknowledged write to it.
//! * **Replica agreement**: at end of run the replicas of every key
//!   (under the final ring) hold the same freshest timestamp.
//!
//! What this deliberately does **not** check — because timestamp-based
//! last-writer-wins cannot give it — is inter-client real-time ordering:
//! an acknowledged write may be shadowed by a *concurrent* write that
//! carried a larger timestamp, and under clock skew "larger timestamp"
//! need not mean "later in real time". DESIGN.md §14 discusses what a
//! dotted-version-vector design would add.

use std::collections::BTreeMap;

use sedna_common::{Key, NodeId, Timestamp, TraceId};
use sedna_core::cluster::SimCluster;
use sedna_core::history::{HistoryEvent, HistoryOp, HistoryOutcome};
use sedna_core::manager::ClusterManager;

/// One checker finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A clean quorum read travelled backwards past the client's floor
    /// (its own acked writes and previous clean reads of the key).
    StaleRead {
        /// The reading client (timestamp origin).
        client: NodeId,
        /// Key read.
        key: Key,
        /// Client-local op id of the offending read.
        op_id: u64,
        /// Trace of the offending read (joins with the journal).
        trace: TraceId,
        /// What the read returned (`None` = not found).
        got: Option<Timestamp>,
        /// What the session floor required.
        floor: Timestamp,
    },
    /// After quiescence, no replica of `key` holds a version at least as
    /// new as its newest acknowledged write.
    LostAckedWrite {
        /// Key whose write was lost.
        key: Key,
        /// Newest acknowledged write timestamp.
        acked: Timestamp,
        /// Best surviving version on any replica (`None` = gone).
        survivor: Option<Timestamp>,
    },
    /// Replicas of `key` disagree on its freshest version at end of run.
    ReplicaDisagreement {
        /// Key in disagreement.
        key: Key,
        /// Freshest version per replica (`None` = replica lacks the key).
        replicas: Vec<(NodeId, Option<Timestamp>)>,
    },
}

impl Violation {
    /// True for the session-guarantee / durability classes the mutation
    /// test requires the broken config to trip.
    pub fn is_session_or_durability(&self) -> bool {
        matches!(
            self,
            Violation::StaleRead { .. } | Violation::LostAckedWrite { .. }
        )
    }
}

/// Checks the per-client session guarantees over a recorded history.
///
/// Events must be in record order (which is per-client program order —
/// each simulated client is single-threaded). Completes without a
/// matching Invoke (multi-key group children) are ignored.
pub fn check_sessions(events: &[HistoryEvent]) -> Vec<Violation> {
    // Open invokes: (client, op_id) → op.
    let mut open: BTreeMap<(NodeId, u64), HistoryOp> = BTreeMap::new();
    // Session floor: (client, key) → minimum timestamp the next clean
    // read of `key` by `client` may return.
    let mut floor: BTreeMap<(NodeId, Key), Timestamp> = BTreeMap::new();
    let mut violations = Vec::new();
    // Trace ids of open invokes, for reporting.
    let mut traces: BTreeMap<(NodeId, u64), TraceId> = BTreeMap::new();

    for ev in events {
        match ev {
            HistoryEvent::Invoke {
                client,
                op_id,
                trace,
                op,
                ..
            } => {
                open.insert((*client, *op_id), op.clone());
                traces.insert((*client, *op_id), *trace);
            }
            HistoryEvent::Complete {
                client,
                op_id,
                outcome,
                ..
            } => {
                let Some(op) = open.remove(&(*client, *op_id)) else {
                    continue; // group child or replayed completion
                };
                let trace = traces.remove(&(*client, *op_id)).unwrap_or_default();
                match (op, outcome) {
                    (HistoryOp::Write { key, ts }, HistoryOutcome::WriteOk) => {
                        // Acknowledged: read-your-writes owes this much.
                        let f = floor.entry((*client, key)).or_insert(Timestamp::ZERO);
                        *f = (*f).max(ts);
                    }
                    (HistoryOp::Write { .. }, _) => {} // no promise made
                    (
                        HistoryOp::Read { key },
                        HistoryOutcome::Read {
                            latest,
                            degraded: false,
                        },
                    ) => {
                        let f = floor
                            .entry((*client, key.clone()))
                            .or_insert(Timestamp::ZERO);
                        if latest.unwrap_or(Timestamp::ZERO) < *f {
                            violations.push(Violation::StaleRead {
                                client: *client,
                                key,
                                op_id: *op_id,
                                trace,
                                got: *latest,
                                floor: *f,
                            });
                        } else if let Some(ts) = latest {
                            // Monotonic reads: never below this again.
                            *f = (*f).max(*ts);
                        }
                    }
                    (HistoryOp::Read { .. }, _) => {} // degraded/failed: exempt
                }
            }
        }
    }
    violations
}

/// Newest acknowledged write per key across all clients.
pub fn acked_writes(events: &[HistoryEvent]) -> BTreeMap<Key, Timestamp> {
    let mut open: BTreeMap<(NodeId, u64), HistoryOp> = BTreeMap::new();
    let mut acked: BTreeMap<Key, Timestamp> = BTreeMap::new();
    for ev in events {
        match ev {
            HistoryEvent::Invoke {
                client, op_id, op, ..
            } => {
                open.insert((*client, *op_id), op.clone());
            }
            HistoryEvent::Complete {
                client,
                op_id,
                outcome: HistoryOutcome::WriteOk,
                ..
            } => {
                if let Some(HistoryOp::Write { key, ts }) = open.remove(&(*client, *op_id)) {
                    let f = acked.entry(key).or_insert(Timestamp::ZERO);
                    *f = (*f).max(ts);
                }
            }
            HistoryEvent::Complete { client, op_id, .. } => {
                open.remove(&(*client, *op_id));
            }
        }
    }
    acked
}

/// End-of-run replica state: key → freshest version per *current
/// replica* of that key (under the manager's final ring).
pub fn final_replica_state(
    cluster: &SimCluster,
) -> BTreeMap<Key, Vec<(NodeId, Option<Timestamp>)>> {
    let mgr = cluster
        .sim
        .actor_ref::<ClusterManager>(cluster.config.manager_actor())
        .expect("cluster manager actor");
    let map = mgr.map();
    let partitioner = &cluster.config.partitioner;

    // Freshest version per node per key.
    let mut per_node: BTreeMap<Key, BTreeMap<NodeId, Timestamp>> = BTreeMap::new();
    for n in 0..cluster.config.data_nodes as u32 {
        let node = NodeId(n);
        cluster.node(node).store().for_each(|key, versions| {
            if let Some(freshest) = versions.iter().map(|v| v.ts).max() {
                per_node
                    .entry(key.clone())
                    .or_default()
                    .insert(node, freshest);
            }
        });
    }

    let mut out = BTreeMap::new();
    for (key, holders) in per_node {
        let replicas = map.replicas(partitioner.locate(&key));
        let row: Vec<(NodeId, Option<Timestamp>)> = replicas
            .iter()
            .map(|r| (*r, holders.get(r).copied()))
            .collect();
        out.insert(key, row);
    }
    out
}

/// Checks all-replica agreement at end of run: every replica of every
/// key must hold the same freshest timestamp (and hold the key at all).
pub fn check_replica_agreement(
    state: &BTreeMap<Key, Vec<(NodeId, Option<Timestamp>)>>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (key, replicas) in state {
        let mut versions = replicas.iter().map(|(_, ts)| *ts);
        let first = versions.next().unwrap_or(None);
        if versions.any(|ts| ts != first) {
            violations.push(Violation::ReplicaDisagreement {
                key: key.clone(),
                replicas: replicas.clone(),
            });
        }
    }
    violations
}

/// Checks that no acknowledged write is lost: for every key with an
/// acked write, some replica must survive with a version at least that
/// new. (A *newer* survivor is fine — last-writer-wins may legitimately
/// shadow an acked write with a concurrent larger-timestamp write.)
pub fn check_lost_writes(
    acked: &BTreeMap<Key, Timestamp>,
    state: &BTreeMap<Key, Vec<(NodeId, Option<Timestamp>)>>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (key, &acked_ts) in acked {
        let survivor = state
            .get(key)
            .and_then(|row| row.iter().filter_map(|(_, ts)| *ts).max());
        if survivor.unwrap_or(Timestamp::ZERO) < acked_ts {
            violations.push(Violation::LostAckedWrite {
                key: key.clone(),
                acked: acked_ts,
                survivor,
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_common::time::Micros;

    fn ts(micros: Micros) -> Timestamp {
        Timestamp {
            micros,
            counter: 0,
            origin: NodeId(1_000),
        }
    }

    fn invoke(client: u32, op_id: u64, op: HistoryOp) -> HistoryEvent {
        HistoryEvent::Invoke {
            client: NodeId(client),
            op_id,
            trace: TraceId::default(),
            op,
            at: 0,
        }
    }

    fn complete(client: u32, op_id: u64, outcome: HistoryOutcome) -> HistoryEvent {
        HistoryEvent::Complete {
            client: NodeId(client),
            op_id,
            outcome,
            at: 0,
        }
    }

    fn write(key: &str, t: Micros) -> HistoryOp {
        HistoryOp::Write {
            key: Key::from(key),
            ts: ts(t),
        }
    }

    fn read(key: &str) -> HistoryOp {
        HistoryOp::Read {
            key: Key::from(key),
        }
    }

    fn read_ok(latest: Option<Micros>) -> HistoryOutcome {
        HistoryOutcome::Read {
            latest: latest.map(ts),
            degraded: false,
        }
    }

    #[test]
    fn clean_read_below_own_acked_write_is_flagged() {
        let events = vec![
            invoke(1, 1, write("k", 100)),
            complete(1, 1, HistoryOutcome::WriteOk),
            invoke(1, 2, read("k")),
            complete(1, 2, read_ok(Some(50))),
        ];
        let v = check_sessions(&events);
        assert_eq!(v.len(), 1);
        assert!(matches!(&v[0], Violation::StaleRead { got: Some(g), .. } if g.micros == 50));
    }

    #[test]
    fn vanished_value_after_ack_is_flagged() {
        let events = vec![
            invoke(1, 1, write("k", 100)),
            complete(1, 1, HistoryOutcome::WriteOk),
            invoke(1, 2, read("k")),
            complete(1, 2, read_ok(None)),
        ];
        assert_eq!(check_sessions(&events).len(), 1);
    }

    #[test]
    fn non_monotonic_read_pair_is_flagged() {
        let events = vec![
            invoke(1, 1, read("k")),
            complete(1, 1, read_ok(Some(90))),
            invoke(1, 2, read("k")),
            complete(1, 2, read_ok(Some(40))),
        ];
        assert_eq!(check_sessions(&events).len(), 1);
    }

    #[test]
    fn degraded_and_failed_ops_make_no_promises() {
        let events = vec![
            invoke(1, 1, write("k", 100)),
            complete(1, 1, HistoryOutcome::WriteFailed),
            invoke(1, 2, read("k")),
            complete(
                1,
                2,
                HistoryOutcome::Read {
                    latest: None,
                    degraded: true,
                },
            ),
            invoke(1, 3, read("k")),
            complete(1, 3, read_ok(None)),
        ];
        assert!(check_sessions(&events).is_empty());
    }

    #[test]
    fn floors_are_per_client_and_per_key() {
        let events = vec![
            invoke(1, 1, write("a", 100)),
            complete(1, 1, HistoryOutcome::WriteOk),
            // Different key: no floor.
            invoke(1, 2, read("b")),
            complete(1, 2, read_ok(None)),
            // Different client: no floor either.
            invoke(2, 1, read("a")),
            complete(2, 1, read_ok(None)),
        ];
        assert!(check_sessions(&events).is_empty());
    }

    #[test]
    fn orphan_completes_are_ignored() {
        let events = vec![complete(1, 7, HistoryOutcome::WriteOk)];
        assert!(check_sessions(&events).is_empty());
        assert!(acked_writes(&events).is_empty());
    }

    #[test]
    fn lost_write_detected_and_newer_survivor_accepted() {
        let mut acked = BTreeMap::new();
        acked.insert(Key::from("k"), ts(100));
        let mut state = BTreeMap::new();
        state.insert(
            Key::from("k"),
            vec![(NodeId(0), Some(ts(40))), (NodeId(1), None)],
        );
        assert_eq!(check_lost_writes(&acked, &state).len(), 1);
        state.insert(
            Key::from("k"),
            vec![(NodeId(0), Some(ts(120))), (NodeId(1), Some(ts(120)))],
        );
        assert!(check_lost_writes(&acked, &state).is_empty());
    }

    #[test]
    fn replica_disagreement_detected() {
        let mut state = BTreeMap::new();
        state.insert(
            Key::from("k"),
            vec![(NodeId(0), Some(ts(100))), (NodeId(1), Some(ts(90)))],
        );
        assert_eq!(check_replica_agreement(&state).len(), 1);
        state.insert(
            Key::from("k"),
            vec![(NodeId(0), Some(ts(100))), (NodeId(1), Some(ts(100)))],
        );
        assert!(check_replica_agreement(&state).is_empty());
    }
}
