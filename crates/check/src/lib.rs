//! Deterministic nemesis harness and eventual-consistency checker for
//! the Sedna reproduction.
//!
//! Three pieces, designed to be used together (and wired together by
//! [`harness::run_nemesis`]):
//!
//! * [`nemesis`] — expands a single `u64` seed into a reproducible fault
//!   schedule: crashes with WAL-recovering / empty restarts, torn-WAL
//!   tails at the crash instant, pairwise and group partitions with
//!   heals, lossy-link episodes, and (in the churn profile)
//!   session-expiring outages that force manager-driven rebalances.
//! * [`checker`] — consumes the per-client operation history recorded by
//!   `ClientCore` (invoke/complete events carrying `TraceId`s) and the
//!   cluster's end-of-run replica state, and verifies the guarantees the
//!   quorum argument actually gives: per-key monotonic reads and
//!   read-your-writes on clean quorum reads, no lost acknowledged writes
//!   after convergence, and all-replica timestamp agreement at end of
//!   run. Since PR-8 it also checks the dotted-version-vector
//!   guarantees: monotonic writes, writes-follow-reads, sibling-set
//!   agreement, and — the headline — *no lost concurrent write*: an
//!   acked dot may only disappear when a surviving write causally
//!   covers it (see the `skewed` / `skewed_legacy` harness profiles).
//!   Since PR-9 it also cross-validates the *observability plane* against
//!   that ground truth: a run that provably lost writes must have fired
//!   the `lost_writes`/`divergence_age` alert, and a clean run must end
//!   with no alert still firing (`AlertMissed` / `AlertStuckFiring`).
//! * [`shrink`] — ddmin over a failing schedule: re-runs subsets under
//!   the same seed until 1-minimal, then renders the reproducer as a
//!   copy-pasteable `#[test]`.
//!
//! The `nemesis_sweep` binary sweeps seed ranges (CI runs ~200 per PR)
//! and emits shrunk schedules plus run journals for any failing seed.

pub mod checker;
pub mod harness;
pub mod nemesis;
pub mod shrink;

pub use checker::{
    acked_writes, check_alert_crossvalidation, check_lost_concurrent_writes, check_lost_writes,
    check_replica_agreement, check_replica_dot_agreement, check_sessions, final_replica_dots,
    write_records, Violation, WriteRecord,
};
pub use harness::{
    run_nemesis, run_with_schedule, HarnessConfig, Profile, RunReport, StalenessSummary,
};
pub use nemesis::{generate, schedule_end, NemesisConfig};
pub use shrink::{render_repro, shrink};
