//! End-to-end nemesis harness tests: a debug-friendly slice of the CI
//! seed sweep, the mutation-sanity check (a deliberately weakened
//! configuration must trip the checker), shrinker behaviour on a real
//! failure, and the partition-heal convergence bound.

use sedna_check::harness::{run_nemesis, run_with_schedule, HarnessConfig};
use sedna_check::nemesis::generate;
use sedna_check::shrink::{render_repro, shrink};
use sedna_common::NodeId;
use sedna_core::fault::{ClusterFault, ScheduledFault};

/// A small in-tree slice of the CI sweep (CI runs ~200 seeds in release
/// mode; this keeps debug `cargo test` honest without the wall-clock
/// bill). Every stock seed must pass every check: session guarantees,
/// no lost acked writes, end-of-run replica agreement.
#[test]
fn stock_sweep_slice_has_no_violations() {
    let cfg = HarnessConfig::stock();
    for seed in 1..=20u64 {
        let report = run_nemesis(seed, &cfg);
        assert!(
            report.violations.is_empty(),
            "seed {seed}: {:#?}",
            report.violations
        );
        assert!(
            report.ops_done > 300,
            "seed {seed}: workload made no progress ({} ops)",
            report.ops_done
        );
        assert!(
            report.flight_json.is_none(),
            "seed {seed}: passing run should not freeze a flight dump"
        );
    }
}

/// Churn seeds open membership-transfer windows where LWW makes no
/// session promises, but the cluster must still converge once healed.
#[test]
fn churn_seeds_still_converge() {
    let cfg = HarnessConfig::churn();
    for seed in 1..=5u64 {
        let report = run_nemesis(seed, &cfg);
        assert!(
            report.violations.is_empty(),
            "seed {seed}: replicas diverged after churn: {:#?}",
            report.violations
        );
    }
}

/// Mutation sanity: against `R=1, W=1` with read repair and
/// anti-entropy disabled, the checker must *report* a session violation
/// — if it stays quiet on a configuration that provably cannot give the
/// guarantees, the 200 green stock seeds mean nothing.
#[test]
fn broken_quorum_config_is_caught_and_shrinks_small() {
    let cfg = HarnessConfig::broken();
    let mut caught = None;
    for seed in 1..=5u64 {
        let report = run_nemesis(seed, &cfg);
        if report
            .violations
            .iter()
            .any(|v| v.is_session_or_durability())
        {
            caught = Some((seed, report));
            break;
        }
    }
    let (seed, report) = caught.expect(
        "5 broken-config seeds produced no monotonic-read / lost-write violation — \
         the checker is not actually checking",
    );

    // A violating run freezes a flight-recorder dump into the report so
    // the black box rides along with the reproducer artifact.
    let flight = report
        .flight_json
        .as_deref()
        .expect("violating run carries no flight recording");
    assert!(flight.contains("\"threads\":["), "{flight}");
    assert!(
        flight.contains("\"reason\":\"violation\""),
        "anomaly capture missing from flight dump: {flight}"
    );

    // The shrinker must cut the schedule down to a handful of events
    // that still reproduce the failure under the same seed.
    let minimal = shrink(&report.schedule, |cand| {
        !run_with_schedule(seed, &cfg, cand).passed()
    });
    assert!(
        minimal.len() <= 6,
        "shrunk schedule still has {} events: {minimal:#?}",
        minimal.len()
    );
    assert!(
        !run_with_schedule(seed, &cfg, &minimal).passed(),
        "shrunk schedule no longer reproduces"
    );

    // And the reproducer must render as a paste-able test.
    let repro = render_repro(seed, "broken", &minimal);
    assert!(
        repro.contains(&format!("fn repro_seed_{seed}()")),
        "{repro}"
    );
    assert!(repro.contains("run_with_schedule"), "{repro}");
}

/// Satellite: a replica partitioned away while writes land, then
/// healed, must reach digest agreement with its peers within
/// `k × sync_interval_micros` — `k = 2·vnodes + 8` plus a 2 s margin,
/// exactly the quiescence the harness grants before the end-of-run
/// replica-agreement check. One anti-entropy tick exchanges one vnode,
/// so two passes bound transitive convergence.
#[test]
fn partitioned_then_healed_replica_reaches_digest_agreement() {
    let cfg = HarnessConfig::stock();
    // Cut node 0 off from every peer while the workload keeps writing
    // (clients still reach all replicas — only replica↔replica
    // anti-entropy and repair traffic is severed), then heal.
    let schedule = vec![
        ScheduledFault::new(
            2_500_000,
            ClusterFault::PartitionHalves {
                left: vec![NodeId(0)],
                right: vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)],
            },
        ),
        ScheduledFault::new(5_000_000, ClusterFault::HealAll),
    ];
    let report = run_with_schedule(7, &cfg, &schedule);
    assert!(
        report.violations.is_empty(),
        "replicas failed to agree within the convergence bound: {:#?}",
        report.violations
    );
    assert!(report.ops_done > 300, "workload stalled");

    // The divergence observatory saw the incident: post-heal probes of
    // the cut-off replica opened Merkle mismatch episodes, and by end of
    // quiescence every one of them has converged again.
    let episodes_total: u64 = report
        .divergence
        .iter()
        .map(|(_, snap)| snap.episodes_total)
        .sum();
    let open: u64 = report.divergence.iter().map(|(_, snap)| snap.open).sum();
    assert!(
        episodes_total > 0,
        "a 2.5s full partition of node 0 never produced an observed \
         divergence episode: {:#?}",
        report.divergence
    );
    assert_eq!(
        open, 0,
        "Merkle root mismatches still open after heal + quiescence"
    );
}

/// Tentpole acceptance: under a lossy-link schedule the staleness-lag
/// tracker must actually see stale replicas (nonzero lag histograms),
/// and after the heal-everything tail plus quiescence every repair push
/// must be accounted for — the outstanding-repair gauge drains to zero.
#[test]
fn lossy_link_staleness_lags_drain_after_heal() {
    let cfg = HarnessConfig::stock();
    let schedule = vec![
        ScheduledFault::new(500_000, ClusterFault::SetLinkLossPermille(150)),
        ScheduledFault::new(4_500_000, ClusterFault::SetLinkLossPermille(0)),
    ];
    let mut lags = 0u64;
    let mut converged = 0u64;
    for seed in 1..=3u64 {
        let report = run_with_schedule(seed, &cfg, &schedule);
        assert!(
            report.violations.is_empty(),
            "seed {seed}: {:#?}",
            report.violations
        );
        assert_eq!(
            report.staleness.outstanding_repairs, 0,
            "seed {seed}: repairs still outstanding after quiescence: {:?}",
            report.staleness
        );
        assert!(
            report
                .metrics_json
                .contains("sedna_staleness_ts_delta_micros"),
            "seed {seed}: staleness series missing from the metrics artifact"
        );
        lags += report.staleness.lags_recorded;
        converged += report.staleness.repairs_converged;
    }
    assert!(
        lags > 0,
        "150‰ loss over three seeds never produced a detected stale replica"
    );
    assert!(
        converged > 0,
        "no repair push ever completed its round trip"
    );
}

/// The generated schedule for a seed is a pure function of the seed —
/// re-running a sweep seed elsewhere replays the identical fault
/// sequence.
#[test]
fn reports_carry_the_exact_generated_schedule() {
    let cfg = HarnessConfig::stock();
    let report = run_nemesis(11, &cfg);
    assert_eq!(report.schedule, generate(11, &cfg.nemesis_config()));
}
