//! Skewed-clock regression (PR-8 satellite): the same workload, faults
//! and ±300 ms node clock skew is driven through both resolvers.
//!
//! * Under the **legacy** bare-timestamp scheme a fast-clock client's
//!   concurrent write silently shadows a slow-clock client's *acked*
//!   write — the checker must report `LostConcurrentWrite`, and the
//!   failure must be ddmin-shrinkable to a minimal reproducer.
//! * Under **dotted version vectors** with sibling retention the same
//!   seeds pass every check: the concurrent write survives as a sibling
//!   until something that actually observed it overwrites it.

use sedna_check::checker::Violation;
use sedna_check::harness::{run_nemesis, run_with_schedule, HarnessConfig};
use sedna_check::shrink::{render_repro, shrink};
use sedna_obs::AlertPhase;

/// The headline contrast: legacy loses an acked concurrent write, DVV
/// keeps it — same seed, same skew, same faults.
#[test]
fn skewed_clocks_trip_legacy_lww_but_not_dvv() {
    let legacy = HarnessConfig::skewed_legacy();
    let mut caught = None;
    for seed in 1..=3u64 {
        let report = run_nemesis(seed, &legacy);
        if report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::LostConcurrentWrite { .. }))
        {
            caught = Some((seed, report));
            break;
        }
    }
    let (seed, report) = caught.expect(
        "3 skewed-clock seeds on the legacy timestamp resolver produced no \
         LostConcurrentWrite — either the nemesis stopped skewing clocks or \
         the checker stopped looking",
    );

    // Observability cross-check, incident side: the run that provably
    // lost an acked write must also have *fired* the matching alert —
    // the timestamp-shadowed-write burn rate (or, failing that, a
    // sustained divergence-age breach). The harness encodes this as
    // `AlertMissed`, so `passed()` alone would hide a silent observatory;
    // assert the positive signal directly.
    assert!(
        report.alert_log.iter().any(|t| {
            t.to == AlertPhase::Firing && (t.slo == "lost_writes" || t.slo == "divergence_age")
        }),
        "legacy seed {seed} lost an acked write but no divergence/lost-write \
         alert ever fired; alert log: {:#?}",
        report.alert_log
    );

    // The identical seed under dotted version vectors must be clean on
    // the *full* check set — sibling retention keeps the acked dot alive
    // (or lets a covering write causally supersede it).
    let dvv = run_nemesis(seed, &HarnessConfig::skewed());
    assert!(
        dvv.passed(),
        "seed {seed} clean under legacy-tripping skew was expected to pass \
         under DVV: {:#?}",
        dvv.violations
    );
    // …and its observatory must agree that nothing is wrong: no alert
    // still firing after the heal + quiesce tail.
    assert!(
        dvv.alerts_firing.is_empty(),
        "seed {seed} under DVV ended with firing alerts: {:?}",
        dvv.alerts_firing
    );

    // The legacy failure must shrink: clock skew (not the fault
    // schedule) is the culprit, so ddmin should cut the schedule to
    // almost nothing while the violation persists.
    let minimal = shrink(&report.schedule, |cand| {
        !run_with_schedule(seed, &legacy, cand).passed()
    });
    assert!(
        minimal.len() < report.schedule.len(),
        "shrinker removed nothing from {} events",
        report.schedule.len()
    );
    assert!(
        !run_with_schedule(seed, &legacy, &minimal).passed(),
        "shrunk schedule no longer reproduces"
    );

    // And the reproducer renders against the right constructor.
    let repro = render_repro(seed, "skewed_legacy", &minimal);
    assert!(
        repro.contains(&format!("fn repro_seed_{seed}()")),
        "{repro}"
    );
    assert!(repro.contains("HarnessConfig::skewed_legacy()"), "{repro}");
}

/// In-tree slice of the CI 200-seed skewed sweep: every seed must pass
/// every check under DVV, including the dot-level ones.
#[test]
fn skewed_dvv_sweep_slice_has_no_violations() {
    let cfg = HarnessConfig::skewed();
    for seed in 1..=5u64 {
        let report = run_nemesis(seed, &cfg);
        assert!(
            report.violations.is_empty(),
            "seed {seed}: {:#?}",
            report.violations
        );
        assert!(
            report.ops_done > 300,
            "seed {seed}: workload made no progress ({} ops)",
            report.ops_done
        );
    }
}
